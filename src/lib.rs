//! # ssr — self-stabilising ranking & leader election population protocols
//!
//! A full reproduction of *"Improving Efficiency in Near-State and
//! State-Optimal Self-Stabilising Leader Election Population Protocols"*
//! (Gąsieniec, Grodzicki, Stachowiak — PODC 2025).
//!
//! The **ranking problem**: `n` anonymous agents with `n` rank states plus
//! `x` extra states must, from an *arbitrary* initial configuration and
//! under uniformly random pairwise interactions, silently stabilise with
//! every agent in a distinct rank state. Ranking yields self-stabilising
//! leader election (rank 0 = leader) with the minimum possible number of
//! states.
//!
//! This crate re-exports the whole workspace:
//!
//! * [`engine`] — the population-protocol model behind the unified
//!   [`Engine`](engine::Engine) trait: the naive per-agent simulator, the
//!   exact jump-chain simulator, and the count-based batched simulator
//!   (O(#states) memory, scales to populations of 10⁷+), all driven by the
//!   declarative [`InteractionSchema`](engine::InteractionSchema);
//!   configuration generators; the [`Scenario`](engine::Scenario) trial
//!   runner; the adversary subsystem (timed [`FaultPlan`](engine::FaultPlan)s
//!   with churn and Byzantine agents, graceful non-convergence reporting);
//! * [`topology`] — perfectly balanced binary trees, the cubic routing
//!   graph `G`, trap layouts;
//! * [`protocols`] — the four protocols: `Θ(n²)` baseline `A_G`,
//!   state-optimal ring of traps (`O(min(k·n^{3/2}, n² log² n))`),
//!   one-extra-state lines of traps (`O(n^{7/4} log² n)`), and the
//!   `O(log n)`-extra-state tree protocol (`O(n log n)`);
//! * [`analysis`] — summary statistics, power-law fits, sweeps, tables.
//!
//! ## Quickstart
//!
//! ```
//! use ssr::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 100;
//! let protocol = TreeRanking::new(n);
//!
//! // Adversarial start: every agent stacked in the same state.
//! let mut sim = JumpSimulation::new(&protocol, vec![0; n], 42)?;
//! let report = sim.run_until_silent(u64::MAX)?;
//!
//! assert!(sim.is_silent());
//! println!("ranked {n} agents in parallel time {:.1}", report.parallel_time);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for leader election with fault injection, protocol
//! comparisons, and k-distant recovery scenarios; `crates/bench` hosts the
//! experiment binaries that regenerate the paper's complexity tables.

// `unsafe_code = "forbid"` comes from [workspace.lints] in the root manifest.
#![warn(missing_docs)]

pub use ssr_analysis as analysis;
pub use ssr_core as protocols;
pub use ssr_engine as engine;
pub use ssr_topology as topology;

/// Convenient glob-import surface covering the common workflow:
/// pick a protocol, build a start configuration, simulate, analyse.
pub mod prelude {
    pub use ssr_analysis::{
        fit_power_law, stats::Summary, sweep::sweep, sweep::SweepOptions, Table,
    };
    pub use ssr_analysis::{verify_stability, Ecdf, StabilityCertificate};
    pub use ssr_core::{
        elect_leader, GenericRanking, LineOfTraps, LooseLeaderElection, RingOfTraps,
        TreeRanking, LEADER_RANK,
    };
    pub use ssr_engine::{
        init, make_engine, make_engine_from_counts, make_engine_threaded,
        recovery_after_faults, rng::Xoshiro256, run_trials, run_with_plan,
        validate_interaction_schema, BurstRecord, ClassSpec, ClusteredScheduler,
        CountSimulation, CrossDirection, Engine, EngineKind, FaultPlan, Init,
        InteractionClass, InteractionSchema, JumpSimulation, Protocol, RunOutcome, Scenario,
        Scheduler, Simulation, State, TrialConfig, UniformScheduler, ZipfScheduler,
    };
    pub use ssr_topology::{BalancedTree, CubicGraph, TrapChain};
}
