//! Power-law regression for complexity-shape checks.
//!
//! The experiments verify claims like "`A_G` stabilises in `Θ(n²)`" or
//! "the tree protocol runs in `O(n log n)`" by fitting
//! `T(n) ≈ c · n^α` on log–log axes and comparing the estimated exponent
//! `α` with the theory. A polylog-corrected variant fits
//! `T(n) ≈ c · n^α · log^β n` for bounds that carry explicit log factors.
//!
//! # Examples
//!
//! ```
//! use ssr_analysis::regression::fit_power_law;
//!
//! let ns = [32.0, 64.0, 128.0, 256.0];
//! let ts: Vec<f64> = ns.iter().map(|n| 3.0 * n * n).collect();
//! let fit = fit_power_law(&ns, &ts);
//! assert!((fit.exponent - 2.0).abs() < 1e-9);
//! assert!(fit.r_squared > 0.999);
//! ```

/// Result of a least-squares fit `y = c · x^α` on log–log axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Estimated exponent `α`.
    pub exponent: f64,
    /// Estimated constant `c`.
    pub constant: f64,
    /// Coefficient of determination of the log–log fit.
    pub r_squared: f64,
}

impl PowerLawFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.constant * x.powf(self.exponent)
    }
}

/// Fit `y = c·x^α` by ordinary least squares on `(ln x, ln y)`.
///
/// # Panics
///
/// Panics if fewer than two points are given, lengths differ, or any value
/// is non-positive (logarithms must exist).
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> PowerLawFit {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(xs.len() >= 2, "need at least two points to fit");
    assert!(
        xs.iter().chain(ys.iter()).all(|&v| v > 0.0),
        "power-law fit requires positive data"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let (slope, intercept, r2) = linear_fit(&lx, &ly);
    PowerLawFit {
        exponent: slope,
        constant: intercept.exp(),
        r_squared: r2,
    }
}

/// Fit `y = c · x^α · (ln x)^β` with `β` fixed, by fitting a power law to
/// `y / (ln x)^β`. Useful to check, e.g., `O(n^{7/4} log² n)` shapes with
/// `β = 2`.
///
/// # Panics
///
/// As [`fit_power_law`]; additionally every `x` must exceed 1 so that
/// `ln x > 0`.
pub fn fit_power_law_with_polylog(xs: &[f64], ys: &[f64], beta: f64) -> PowerLawFit {
    assert!(
        xs.iter().all(|&x| x > 1.0),
        "polylog correction needs x > 1"
    );
    let adjusted: Vec<f64> = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| y / x.ln().powf(beta))
        .collect();
    fit_power_law(xs, &adjusted)
}

/// Ordinary least squares `y = a·x + b`; returns `(a, b, R²)`.
fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| {
                let e = y - (slope * x + intercept);
                e * e
            })
            .sum();
        1.0 - ss_res / syy
    };
    (slope, intercept, r2)
}

/// Ratio table helper: successive `y[i+1]/y[i]` vs the ratio implied by a
/// target exponent — a quick "does doubling `n` quadruple `T`?" check.
pub fn doubling_ratios(xs: &[f64], ys: &[f64]) -> Vec<f64> {
    xs.windows(2)
        .zip(ys.windows(2))
        .map(|(xw, yw)| (yw[1] / yw[0]) / (xw[1] / xw[0]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        let xs: [f64; 4] = [10.0, 20.0, 40.0, 80.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 0.5 * x.powf(1.75)).collect();
        let fit = fit_power_law(&xs, &ys);
        assert!((fit.exponent - 1.75).abs() < 1e-9);
        assert!((fit.constant - 0.5).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(100.0) - 0.5 * 100f64.powf(1.75)).abs() < 1e-6);
    }

    #[test]
    fn noisy_fit_reasonable() {
        let xs: Vec<f64> = (1..=8).map(|i| (i * 50) as f64).collect();
        let noise = [1.05, 0.93, 1.02, 0.97, 1.08, 0.95, 1.01, 0.99];
        let ys: Vec<f64> = xs
            .iter()
            .zip(noise)
            .map(|(x, w)| 2.0 * x * x * w)
            .collect();
        let fit = fit_power_law(&xs, &ys);
        assert!((fit.exponent - 2.0).abs() < 0.1, "{}", fit.exponent);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn polylog_correction_removes_log_factor() {
        let xs: [f64; 5] = [64.0, 128.0, 256.0, 512.0, 1024.0];
        let ys: Vec<f64> = xs.iter().map(|&x| x * x.ln() * x.ln() * 7.0).collect();
        let plain = fit_power_law(&xs, &ys);
        let corrected = fit_power_law_with_polylog(&xs, &ys, 2.0);
        assert!(plain.exponent > 1.1, "log factors inflate the raw exponent");
        assert!((corrected.exponent - 1.0).abs() < 1e-9);
    }

    #[test]
    fn doubling_ratio_flat_for_matching_exponent() {
        let xs = [16.0, 32.0, 64.0];
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let r = doubling_ratios(&xs, &ys);
        assert_eq!(r.len(), 2);
        // y ratio 4 per x ratio 2 → normalised 2 (one factor of x left).
        assert!(r.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "positive data")]
    fn non_positive_rejected() {
        fit_power_law(&[1.0, 2.0], &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_rejected() {
        fit_power_law(&[1.0], &[1.0]);
    }
}
