//! Parameter-sweep driver: protocol × grid × trials → summary rows.
//!
//! Each experiment in the paper reduces to "measure parallel stabilisation
//! time while one parameter (population `n`, distance `k`, …) varies".
//! [`sweep`] runs the trials (in parallel, deterministic seeds), summarises
//! each grid point, and the result converts directly into tables and
//! power-law fits.
//!
//! # Examples
//!
//! ```
//! use ssr_analysis::sweep::{sweep, SweepOptions};
//! use ssr_core::generic::GenericRanking;
//!
//! let res = sweep(
//!     &[16.0, 32.0],
//!     |x| GenericRanking::new(x as usize),
//!     |p, _seed| vec![0; ssr_engine::Protocol::population_size(p)],
//!     &SweepOptions::new(4).with_base_seed(1),
//! );
//! assert_eq!(res.rows.len(), 2);
//! assert!(res.rows[1].mean > res.rows[0].mean);
//! ```

use crate::regression::{fit_power_law, PowerLawFit};
use crate::stats::Summary;
use crate::table::{fmt_f64, Table};
use ssr_engine::protocol::{InteractionSchema, State};
use ssr_engine::rng::derive_seed;
use ssr_engine::runner::{Init, Scenario};
use ssr_engine::EngineKind;

/// Options for a sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Trials per grid point.
    pub trials: usize,
    /// Base seed (grid point `i` runs under `derive_seed(base_seed, i)`).
    pub base_seed: u64,
    /// Per-trial interaction cap.
    pub max_interactions: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
    /// Engine per grid point (`Auto` = count at large `n`, jump below, so
    /// heterogeneous grids get the right engine at every point).
    pub engine: EngineKind,
}

impl SweepOptions {
    /// Options with the given trial count and permissive defaults.
    pub fn new(trials: usize) -> Self {
        SweepOptions {
            trials,
            base_seed: 0,
            max_interactions: u64::MAX,
            threads: 0,
            engine: EngineKind::Auto,
        }
    }

    /// Select the engine backing every grid point.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Set the base seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Set the per-trial interaction cap.
    pub fn with_max_interactions(mut self, max: u64) -> Self {
        self.max_interactions = max;
        self
    }

    /// Set the core budget (0 = one per available core). Each grid point
    /// splits it across concurrent trials and the count engine's batch
    /// splits via `Scenario::thread_split` — many trials run
    /// trial-parallel, single-trial points hand the whole budget to the
    /// engine's persistent worker pool, and in between both levels get a
    /// share. Results are deterministic in the base seed regardless.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// One grid point's measurements.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The grid value (population size, distance `k`, …).
    pub x: f64,
    /// Mean parallel stabilisation time.
    pub mean: f64,
    /// Median parallel time.
    pub median: f64,
    /// Maximum parallel time (the "whp" proxy over the batch).
    pub max: f64,
    /// 95th percentile parallel time.
    pub p95: f64,
    /// Fraction of trials that stabilised within the cap.
    pub success_rate: f64,
    /// Trials at this point.
    pub trials: usize,
}

/// All grid points of a sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Per-point rows, in grid order.
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// Grid values.
    pub fn xs(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.x).collect()
    }

    /// Median parallel times per point.
    pub fn medians(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.median).collect()
    }

    /// Mean parallel times per point.
    pub fn means(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.mean).collect()
    }

    /// Power-law fit `median(x) ≈ c·x^α` over the grid.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points or non-positive medians.
    pub fn fit_median(&self) -> PowerLawFit {
        fit_power_law(&self.xs(), &self.medians())
    }

    /// Serialise all rows as a JSON array (hand-rolled: the workspace is
    /// dependency-free, so there is no serde).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "  {{\"x\": {}, \"mean\": {}, \"median\": {}, \"max\": {}, \
                     \"p95\": {}, \"success_rate\": {}, \"trials\": {}}}",
                    json_f64(r.x),
                    json_f64(r.mean),
                    json_f64(r.median),
                    json_f64(r.max),
                    json_f64(r.p95),
                    json_f64(r.success_rate),
                    r.trials
                )
            })
            .collect();
        format!("[\n{}\n]\n", rows.join(",\n"))
    }

    /// Render as an aligned table with the given grid-column name.
    pub fn to_table(&self, x_name: &str) -> Table {
        let mut t = Table::new(vec![
            x_name.to_string(),
            "mean".into(),
            "median".into(),
            "p95".into(),
            "max".into(),
            "ok".into(),
        ]);
        for r in &self.rows {
            t.add_row(vec![
                fmt_f64(r.x),
                fmt_f64(r.mean),
                fmt_f64(r.median),
                fmt_f64(r.p95),
                fmt_f64(r.max),
                format!("{:.0}%", r.success_rate * 100.0),
            ]);
        }
        t
    }
}

/// Format an `f64` as a JSON number (finite values only; non-finite maps
/// to `null`).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Run a sweep: for each grid value `x`, build a protocol, run
/// `opts.trials` independent trials from `make_config(&protocol, seed)`
/// starts, and summarise parallel stabilisation times.
///
/// Grid points with **zero** successful trials still produce a row (with
/// zeroed statistics and `success_rate = 0`).
pub fn sweep<P, FP, FC>(
    grid: &[f64],
    make_protocol: FP,
    make_config: FC,
    opts: &SweepOptions,
) -> SweepResult
where
    P: InteractionSchema + Sync,
    FP: Fn(f64) -> P,
    FC: Fn(&P, u64) -> Vec<State> + Sync,
{
    let mut rows = Vec::with_capacity(grid.len());
    for (i, &x) in grid.iter().enumerate() {
        let protocol = make_protocol(x);
        let make = |seed| make_config(&protocol, seed);
        let results = Scenario::new(&protocol)
            .engine(opts.engine)
            .init(Init::Custom(&make))
            .trials(opts.trials)
            .base_seed(derive_seed(opts.base_seed, i as u64))
            .max_interactions(opts.max_interactions)
            .threads(opts.threads)
            .run();
        let times = results.parallel_times();
        let (mean, median, max, p95) = if times.is_empty() {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            let s = Summary::of(&times);
            (s.mean, s.median, s.max, s.p95)
        };
        rows.push(SweepRow {
            x,
            mean,
            median,
            max,
            p95,
            success_rate: results.success_rate(),
            trials: opts.trials,
        });
    }
    SweepResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::generic::GenericRanking;
    use ssr_engine::Protocol;

    fn stacked(p: &GenericRanking, _seed: u64) -> Vec<State> {
        vec![0; p.population_size()]
    }

    #[test]
    fn sweep_produces_monotone_times_for_ag() {
        let res = sweep(
            &[8.0, 16.0, 32.0],
            |x| GenericRanking::new(x as usize),
            stacked,
            &SweepOptions::new(6).with_base_seed(11),
        );
        assert_eq!(res.rows.len(), 3);
        assert!(res.rows.iter().all(|r| r.success_rate == 1.0));
        assert!(res.rows[2].median > res.rows[0].median);
    }

    #[test]
    fn fit_recovers_roughly_quadratic_ag() {
        let res = sweep(
            &[16.0, 32.0, 64.0, 128.0],
            |x| GenericRanking::new(x as usize),
            stacked,
            &SweepOptions::new(8).with_base_seed(3),
        );
        let fit = res.fit_median();
        assert!(
            (1.3..2.7).contains(&fit.exponent),
            "A_G exponent estimate {:.2} far from 2",
            fit.exponent
        );
    }

    #[test]
    fn timeout_zeroes_rows() {
        let res = sweep(
            &[16.0],
            |x| GenericRanking::new(x as usize),
            stacked,
            &SweepOptions::new(3).with_max_interactions(1),
        );
        assert_eq!(res.rows[0].success_rate, 0.0);
        assert_eq!(res.rows[0].mean, 0.0);
    }

    #[test]
    fn table_renders_all_rows() {
        let res = sweep(
            &[8.0, 16.0],
            |x| GenericRanking::new(x as usize),
            stacked,
            &SweepOptions::new(2),
        );
        let t = res.to_table("n");
        assert_eq!(t.num_rows(), 2);
        assert!(t.render().contains("median"));
    }

    #[test]
    fn serialises_to_json() {
        let res = sweep(
            &[8.0],
            |x| GenericRanking::new(x as usize),
            stacked,
            &SweepOptions::new(2),
        );
        let json = res.to_json();
        assert!(json.contains("\"success_rate\""));
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }
}
