//! # ssr-analysis — experiment analysis toolkit
//!
//! Turns raw trial measurements from [`ssr_engine`] runs into the
//! paper-style artefacts the experiment binaries print:
//!
//! * [`stats`] — distributional summaries (mean/median/p95/max, Wilson
//!   "whp" bounds);
//! * [`regression`] — power-law fits `T(n) ≈ c·n^α(·logᵝn)` for
//!   complexity-shape verification;
//! * [`sweep`] — the parameter-sweep driver (grid × trials → rows);
//! * [`table`] — aligned plain-text / Markdown table rendering.
//!
//! ```
//! use ssr_analysis::{sweep::{sweep, SweepOptions}, regression::fit_power_law};
//! use ssr_core::generic::GenericRanking;
//!
//! let res = sweep(
//!     &[16.0, 32.0, 64.0],
//!     |x| GenericRanking::new(x as usize),
//!     |p, _| vec![0; ssr_engine::Protocol::population_size(p)],
//!     &SweepOptions::new(4),
//! );
//! let fit = res.fit_median();
//! println!("A_G exponent ≈ {:.2}", fit.exponent); // ≈ 2
//! ```

// `unsafe_code = "forbid"` comes from [workspace.lints] in the root manifest.
// Truncation-cast audit (workspace denies `cast_possible_truncation`):
// statistics code narrows f64 ranks/quantile indices and u64 trial
// counts to usize; all are bounded by in-memory sample sizes.
#![allow(clippy::cast_possible_truncation)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod ecdf;
pub mod exact;
pub mod ks;
pub mod modelcheck;
pub mod regression;
pub mod stats;
pub mod sweep;
pub mod table;

pub use bootstrap::{bootstrap_ci, median_ci, BootstrapOptions, ConfidenceInterval};
pub use ecdf::{Ecdf, Histogram};
pub use exact::expected_interactions;
pub use ks::ks_two_sample;
pub use modelcheck::{verify_stability, ModelCheckError, StabilityCertificate};
pub use regression::{fit_power_law, fit_power_law_with_polylog, PowerLawFit};
pub use stats::Summary;
pub use sweep::{sweep, SweepOptions, SweepResult, SweepRow};
pub use table::Table;
