//! Plain-text and Markdown table rendering for experiment output.
//!
//! The experiment binaries print paper-style tables; this renderer keeps
//! columns aligned in terminals and emits pipe-tables for EXPERIMENTS.md.
//!
//! # Examples
//!
//! ```
//! use ssr_analysis::table::Table;
//!
//! let mut t = Table::new(vec!["n".into(), "time".into()]);
//! t.add_row(vec!["64".into(), "123.4".into()]);
//! t.add_row(vec!["128".into(), "512.9".into()]);
//! let text = t.render();
//! assert!(text.contains("n"));
//! assert!(text.lines().count() >= 4);
//! ```

/// A simple column-aligned table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) -> &mut Self {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    /// Render as an aligned plain-text table (right-aligned cells).
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| -> String {
            cells
                .iter()
                .zip(w)
                .map(|(c, &width)| format!("{c:>width$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &w));
        out.push('\n');
        out.push_str(
            &w.iter()
                .map(|&width| "-".repeat(width))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &w));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavoured Markdown pipe table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

/// Format a float compactly for tables (3 significant-ish digits).
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_pads_to_widest() {
        let mut t = Table::new(vec!["a".into(), "long-header".into()]);
        t.add_row(vec!["12345".into(), "x".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{r}");
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(vec!["n".into(), "t".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.starts_with("| n | t |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        Table::new(vec!["a".into()]).add_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(5.43219), "5.432");
        assert_eq!(fmt_f64(42.42), "42.4");
        assert_eq!(fmt_f64(12345.6), "12346");
    }

    #[test]
    fn num_rows_tracks() {
        let mut t = Table::new(vec!["x".into()]);
        assert_eq!(t.num_rows(), 0);
        t.add_row(vec!["1".into()]);
        assert_eq!(t.num_rows(), 1);
    }
}
