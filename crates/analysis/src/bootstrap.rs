//! Bootstrap confidence intervals for medians and quantiles.
//!
//! The experiment tables report medians over a modest number of trials.
//! Normal-approximation intervals (as in
//! [`crate::stats::Summary::ci95_half_width`]) are fine for means but not
//! for medians of skewed stabilisation-time distributions; the percentile
//! bootstrap makes no shape assumption and is the standard tool. All
//! resampling is driven by the workspace RNG, so intervals are
//! reproducible per seed.
//!
//! # Examples
//!
//! ```
//! use ssr_analysis::bootstrap::{bootstrap_ci, BootstrapOptions};
//!
//! let sample: Vec<f64> = (1..=100).map(f64::from).collect();
//! let ci = bootstrap_ci(
//!     &sample,
//!     |xs| ssr_analysis::stats::Summary::of(xs).median,
//!     &BootstrapOptions::default(),
//! );
//! assert!(ci.lower <= ci.point && ci.point <= ci.upper);
//! ```

use ssr_engine::rng::Xoshiro256;

/// Tuning knobs for the percentile bootstrap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapOptions {
    /// Number of bootstrap resamples (default 1000).
    pub resamples: usize,
    /// Two-sided confidence level in `(0, 1)` (default 0.95).
    pub confidence: f64,
    /// RNG seed (default 0x0b00_75fa9).
    pub seed: u64,
}

impl Default for BootstrapOptions {
    fn default() -> Self {
        BootstrapOptions {
            resamples: 1000,
            confidence: 0.95,
            seed: 0x0b00_75fa9,
        }
    }
}

/// A point estimate with a two-sided bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The statistic evaluated on the full sample.
    pub point: f64,
    /// Lower confidence bound.
    pub lower: f64,
    /// Upper confidence bound.
    pub upper: f64,
    /// The confidence level the bounds were computed for.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Half the interval width.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Whether `x` falls inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lower <= x && x <= self.upper
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} [{:.3}, {:.3}] @ {:.0}%",
            self.point,
            self.lower,
            self.upper,
            self.confidence * 100.0
        )
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// Draws `resamples` with-replacement resamples of `sample`, evaluates
/// `statistic` on each, and returns the empirical
/// `(1±confidence)/2`-quantiles of those evaluations around the full-sample
/// point estimate.
///
/// # Panics
///
/// Panics if `sample` is empty, `resamples == 0`, or `confidence` is not
/// in `(0, 1)`.
pub fn bootstrap_ci<F>(sample: &[f64], statistic: F, opts: &BootstrapOptions) -> ConfidenceInterval
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!sample.is_empty(), "cannot bootstrap an empty sample");
    assert!(opts.resamples > 0, "need at least one resample");
    assert!(
        opts.confidence > 0.0 && opts.confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let point = statistic(sample);
    let n = sample.len();
    let mut rng = Xoshiro256::seed_from_u64(opts.seed);
    let mut resample = vec![0.0; n];
    let mut stats = Vec::with_capacity(opts.resamples);
    for _ in 0..opts.resamples {
        for slot in resample.iter_mut() {
            *slot = sample[rng.below_usize(n)];
        }
        stats.push(statistic(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("statistic returned NaN"));
    let alpha = (1.0 - opts.confidence) / 2.0;
    let lo_idx = ((alpha * opts.resamples as f64) as usize).min(opts.resamples - 1);
    let hi_idx = (((1.0 - alpha) * opts.resamples as f64) as usize).min(opts.resamples - 1);
    ConfidenceInterval {
        point,
        lower: stats[lo_idx],
        upper: stats[hi_idx],
        confidence: opts.confidence,
    }
}

/// Convenience wrapper: percentile-bootstrap CI for the sample median.
pub fn median_ci(sample: &[f64], opts: &BootstrapOptions) -> ConfidenceInterval {
    bootstrap_ci(sample, |xs| crate::stats::Summary::of(xs).median, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_sample(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn interval_brackets_point_estimate() {
        let ci = median_ci(&uniform_sample(101), &BootstrapOptions::default());
        assert!(ci.lower <= ci.point);
        assert!(ci.point <= ci.upper);
        assert!(ci.contains(ci.point));
        assert_eq!(ci.point, 50.0);
    }

    #[test]
    fn interval_shrinks_with_sample_size() {
        let small = median_ci(&uniform_sample(20), &BootstrapOptions::default());
        // Same spread per element (values scaled to match range).
        let big: Vec<f64> = (0..2000).map(|i| i as f64 / 100.0).collect();
        let big = median_ci(&big, &BootstrapOptions::default());
        assert!(
            big.half_width() < small.half_width(),
            "big {:.3} vs small {:.3}",
            big.half_width(),
            small.half_width()
        );
    }

    #[test]
    fn higher_confidence_widens_interval() {
        let sample = uniform_sample(50);
        let narrow = median_ci(
            &sample,
            &BootstrapOptions {
                confidence: 0.5,
                ..Default::default()
            },
        );
        let wide = median_ci(
            &sample,
            &BootstrapOptions {
                confidence: 0.99,
                ..Default::default()
            },
        );
        assert!(wide.half_width() >= narrow.half_width());
    }

    #[test]
    fn deterministic_given_seed() {
        let sample = uniform_sample(30);
        let a = median_ci(&sample, &BootstrapOptions::default());
        let b = median_ci(&sample, &BootstrapOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn constant_sample_gives_degenerate_interval() {
        let ci = median_ci(&[7.0; 25], &BootstrapOptions::default());
        assert_eq!(ci.point, 7.0);
        assert_eq!(ci.lower, 7.0);
        assert_eq!(ci.upper, 7.0);
        assert_eq!(ci.half_width(), 0.0);
    }

    #[test]
    fn works_for_other_statistics() {
        let sample = uniform_sample(64);
        let ci = bootstrap_ci(
            &sample,
            |xs| xs.iter().sum::<f64>() / xs.len() as f64,
            &BootstrapOptions::default(),
        );
        assert!((ci.point - 31.5).abs() < 1e-12);
        assert!(ci.contains(31.5));
    }

    #[test]
    fn display_mentions_confidence() {
        let ci = median_ci(&uniform_sample(10), &BootstrapOptions::default());
        assert!(ci.to_string().contains("95%"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_rejected() {
        median_ci(&[], &BootstrapOptions::default());
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bad_confidence_rejected() {
        median_ci(
            &[1.0],
            &BootstrapOptions {
                confidence: 1.0,
                ..Default::default()
            },
        );
    }
}
