//! Exhaustive model checking of the self-stabilisation claims.
//!
//! The paper's protocols are *stable* (correct with probability 1) and
//! *silent* from **every** initial configuration — not merely from the
//! configurations a particular experiment happens to sample. For small
//! instances this is mechanically verifiable: the configuration space of a
//! population protocol is the set of multisets of `n` states drawn from the
//! `num_states`-element state space, which has size `C(n + S − 1, n)` and
//! is fully enumerable.
//!
//! [`verify_stability`] enumerates the **entire** configuration space and
//! checks three properties that together are equivalent to "stable, silent,
//! and correct" in the finite-Markov-chain sense:
//!
//! 1. **silent ⇒ ranked** — every configuration with no productive ordered
//!    pair is a perfect ranking (each rank state occupied exactly once);
//! 2. **ranked ⇒ silent** — the perfect ranking is a fixed point;
//! 3. **silence reachable from everywhere** — from every configuration
//!    there is a path of productive interactions to a silent configuration.
//!    In a finite chain whose every transition has positive probability,
//!    this is equivalent to almost-sure absorption in the silent set.
//!
//! Because *every* configuration is inspected (not just those reachable
//! from one start), this also covers all `k`-distant configurations of §3
//! and all red/green buffer arrangements of §5 at once.
//!
//! # Examples
//!
//! ```
//! use ssr_analysis::modelcheck::verify_stability;
//! use ssr_core::generic::GenericRanking;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cert = verify_stability(&GenericRanking::new(5), 1_000_000)?;
//! assert_eq!(cert.silent_configurations, 1); // only the perfect ranking
//! println!(
//!     "checked {} configurations, {} transitions",
//!     cert.configurations, cert.transitions
//! );
//! # Ok(())
//! # }
//! ```

use ssr_engine::protocol::{Protocol, State};
use std::collections::HashMap;

/// Proof object returned by a successful [`verify_stability`] run.
///
/// The certificate records the size of the exhaustively verified space so
/// that test logs and EXPERIMENTS.md can state exactly what was proved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilityCertificate {
    /// Number of configurations enumerated (the full multiset space).
    pub configurations: usize,
    /// How many of them are silent (for a correct ranking protocol: 1).
    pub silent_configurations: usize,
    /// Total productive configuration-graph edges explored.
    pub transitions: u64,
}

impl std::fmt::Display for StabilityCertificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stable: {} configurations, {} silent, {} transitions",
            self.configurations, self.silent_configurations, self.transitions
        )
    }
}

/// A violation of the stability contract found by [`verify_stability`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelCheckError {
    /// The configuration space `C(n+S−1, n)` exceeds the caller's cap.
    StateSpaceTooLarge {
        /// Number of configurations that would have to be enumerated.
        needed: u128,
        /// The cap that was exceeded.
        limit: usize,
    },
    /// A configuration without productive pairs is not a perfect ranking:
    /// the protocol can die in a wrong configuration.
    SilentNotRanked {
        /// Occupancy counts of the offending configuration.
        counts: Vec<u16>,
    },
    /// The perfect ranking admits a productive pair — the protocol would
    /// never be silent.
    PerfectRankingNotSilent,
    /// Some configuration cannot reach any silent configuration, so the
    /// protocol is not stable (stabilises with probability 0 from there).
    SilenceUnreachable {
        /// Occupancy counts of a configuration trapped outside the basin.
        counts: Vec<u16>,
    },
}

impl std::fmt::Display for ModelCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelCheckError::StateSpaceTooLarge { needed, limit } => write!(
                f,
                "configuration space has {needed} configurations, exceeding limit {limit}"
            ),
            ModelCheckError::SilentNotRanked { counts } => {
                write!(f, "silent configuration is not a ranking: {counts:?}")
            }
            ModelCheckError::PerfectRankingNotSilent => {
                write!(f, "the perfect ranking configuration is not silent")
            }
            ModelCheckError::SilenceUnreachable { counts } => {
                write!(f, "no silent configuration reachable from {counts:?}")
            }
        }
    }
}

impl std::error::Error for ModelCheckError {}

type Counts = Vec<u16>;

/// Number of multisets of size `n` over `s` states, `C(n+s−1, n)`,
/// saturating at `u128::MAX`.
fn multiset_count(n: usize, s: usize) -> u128 {
    // C(n+s-1, s-1) computed incrementally; saturate on overflow.
    let k = (s - 1) as u128;
    let mut acc: u128 = 1;
    for i in 1..=k {
        let num = n as u128 + i;
        acc = match acc.checked_mul(num) {
            Some(v) => v / i,
            None => return u128::MAX,
        };
    }
    acc
}

/// Enumerate every composition of `n` into `s` non-negative parts
/// (equivalently: every multiset configuration), invoking `f` on each.
fn for_each_configuration(n: usize, s: usize, f: &mut impl FnMut(&[u16])) {
    let mut counts = vec![0u16; s];
    fill(&mut counts, 0, n as u16, f);
}

fn fill(counts: &mut [u16], idx: usize, remaining: u16, f: &mut impl FnMut(&[u16])) {
    if idx == counts.len() - 1 {
        counts[idx] = remaining;
        f(counts);
        return;
    }
    for v in 0..=remaining {
        counts[idx] = v;
        fill(counts, idx + 1, remaining - v, f);
    }
    counts[idx] = 0;
}

/// Distinct successor configurations of `c` under one productive
/// interaction (deduplicated; multiplicities are irrelevant for
/// reachability).
fn successors<P: Protocol + ?Sized>(p: &P, c: &Counts) -> Vec<Counts> {
    let mut out: Vec<Counts> = Vec::new();
    let occupied: Vec<usize> = (0..c.len()).filter(|&s| c[s] > 0).collect();
    for &a in &occupied {
        for &b in &occupied {
            if a == b && c[a] < 2 {
                continue;
            }
            if let Some((a2, b2)) = p.transition(a as State, b as State) {
                let mut next = c.clone();
                next[a] -= 1;
                next[b] -= 1;
                next[a2 as usize] += 1;
                next[b2 as usize] += 1;
                if !out.contains(&next) {
                    out.push(next);
                }
            }
        }
    }
    out
}

fn is_perfect_ranking_counts(c: &Counts, num_ranks: usize) -> bool {
    c[..num_ranks].iter().all(|&v| v == 1) && c[num_ranks..].iter().all(|&v| v == 0)
}

/// Exhaustively verify the stability contract over the **entire**
/// configuration space of `p` (see module docs for the three properties).
///
/// Cost is `Θ(C(n+S−1, n) · S²)` time and `Θ(C(n+S−1, n))` memory, so this
/// is a tool for small instances (typically `n ≤ 8`); `limit` caps the
/// number of configurations enumerated.
///
/// # Errors
///
/// * [`ModelCheckError::StateSpaceTooLarge`] if the space exceeds `limit`;
/// * [`ModelCheckError::SilentNotRanked`], [`PerfectRankingNotSilent`] or
///   [`SilenceUnreachable`] for genuine protocol violations, each carrying
///   a concrete counterexample configuration.
///
/// [`PerfectRankingNotSilent`]: ModelCheckError::PerfectRankingNotSilent
/// [`SilenceUnreachable`]: ModelCheckError::SilenceUnreachable
pub fn verify_stability<P: Protocol + ?Sized>(
    p: &P,
    limit: usize,
) -> Result<StabilityCertificate, ModelCheckError> {
    let n = p.population_size();
    let s = p.num_states();
    let needed = multiset_count(n, s);
    if needed > limit as u128 {
        return Err(ModelCheckError::StateSpaceTooLarge { needed, limit });
    }

    // Pass 1: index every configuration.
    let mut index: HashMap<Counts, usize> = HashMap::with_capacity(needed as usize);
    let mut configs: Vec<Counts> = Vec::with_capacity(needed as usize);
    for_each_configuration(n, s, &mut |c| {
        index.insert(c.to_vec(), configs.len());
        configs.push(c.to_vec());
    });
    debug_assert_eq!(configs.len() as u128, needed);

    // Pass 2: successor edges, silence flags, local silent-shape checks.
    let m = configs.len();
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut silent = vec![false; m];
    let mut transitions: u64 = 0;
    let num_ranks = p.num_rank_states();
    for (i, c) in configs.iter().enumerate() {
        let succ = successors(p, c);
        let ranked = is_perfect_ranking_counts(c, num_ranks);
        if succ.is_empty() {
            if !ranked {
                return Err(ModelCheckError::SilentNotRanked { counts: c.clone() });
            }
            silent[i] = true;
        } else if ranked {
            return Err(ModelCheckError::PerfectRankingNotSilent);
        }
        transitions += succ.len() as u64;
        for t in succ {
            let j = index[&t];
            reverse[j].push(i);
        }
    }

    // Pass 3: reverse BFS from the silent set must cover everything.
    let mut reached = silent.clone();
    let mut queue: std::collections::VecDeque<usize> = (0..m).filter(|&i| silent[i]).collect();
    while let Some(i) = queue.pop_front() {
        for &j in &reverse[i] {
            if !reached[j] {
                reached[j] = true;
                queue.push_back(j);
            }
        }
    }
    if let Some(i) = (0..m).find(|&i| !reached[i]) {
        return Err(ModelCheckError::SilenceUnreachable {
            counts: configs[i].clone(),
        });
    }

    Ok(StabilityCertificate {
        configurations: m,
        silent_configurations: silent.iter().filter(|&&b| b).count(),
        transitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::generic::GenericRanking;
    use ssr_core::line::LineOfTraps;
    use ssr_core::ring::RingOfTraps;
    use ssr_core::tree::TreeRanking;

    #[test]
    fn multiset_count_matches_binomials() {
        assert_eq!(multiset_count(2, 2), 3); // {00,01,11}
        assert_eq!(multiset_count(3, 3), 10);
        assert_eq!(multiset_count(5, 5), 126);
        assert_eq!(multiset_count(6, 12), 12376);
    }

    #[test]
    fn enumeration_is_complete_and_duplicate_free() {
        let mut seen = std::collections::HashSet::new();
        for_each_configuration(4, 3, &mut |c| {
            assert_eq!(c.iter().sum::<u16>(), 4);
            assert!(seen.insert(c.to_vec()), "duplicate {c:?}");
        });
        assert_eq!(seen.len() as u128, multiset_count(4, 3));
    }

    #[test]
    fn generic_protocol_is_stable_for_all_configurations() {
        for n in 2..=7 {
            let cert = verify_stability(&GenericRanking::new(n), 2_000_000).unwrap();
            assert_eq!(cert.silent_configurations, 1, "n = {n}");
        }
    }

    #[test]
    fn ring_of_traps_is_stable_for_all_configurations() {
        for n in [2, 4, 6, 8] {
            let cert = verify_stability(&RingOfTraps::new(n), 2_000_000).unwrap();
            assert_eq!(cert.silent_configurations, 1, "n = {n}");
        }
    }

    #[test]
    fn line_of_traps_is_stable_for_all_configurations() {
        for n in [3, 5, 6] {
            let cert = verify_stability(&LineOfTraps::new(n), 2_000_000).unwrap();
            assert_eq!(cert.silent_configurations, 1, "n = {n}");
        }
    }

    #[test]
    fn tree_ranking_is_stable_for_all_configurations() {
        for n in [3, 4, 5] {
            let p = TreeRanking::with_buffer(n, 2);
            let cert = verify_stability(&p, 2_000_000).unwrap();
            assert_eq!(cert.silent_configurations, 1, "n = {n}");
        }
    }

    #[test]
    fn space_cap_is_enforced() {
        let err = verify_stability(&GenericRanking::new(20), 100).unwrap_err();
        match err {
            ModelCheckError::StateSpaceTooLarge { needed, limit } => {
                assert_eq!(limit, 100);
                assert!(needed > 100);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// A protocol with no rules at all: every configuration is silent,
    /// including non-rankings.
    struct Dead;
    impl Protocol for Dead {
        fn name(&self) -> &str {
            "dead"
        }
        fn population_size(&self) -> usize {
            3
        }
        fn num_states(&self) -> usize {
            3
        }
        fn num_rank_states(&self) -> usize {
            3
        }
        fn transition(&self, _i: State, _r: State) -> Option<(State, State)> {
            None
        }
    }

    #[test]
    fn dead_protocol_rejected_as_silent_not_ranked() {
        let err = verify_stability(&Dead, 1_000).unwrap_err();
        assert!(matches!(err, ModelCheckError::SilentNotRanked { .. }));
        assert!(err.to_string().contains("not a ranking"));
    }

    /// A protocol that keeps churning even on the perfect ranking.
    struct Restless;
    impl Protocol for Restless {
        fn name(&self) -> &str {
            "restless"
        }
        fn population_size(&self) -> usize {
            2
        }
        fn num_states(&self) -> usize {
            2
        }
        fn num_rank_states(&self) -> usize {
            2
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            // 0+1 swaps forever; 0+0/1+1 fix duplicates.
            if i == r {
                Some((i, 1 - r))
            } else {
                Some((r, i))
            }
        }
    }

    #[test]
    fn restless_protocol_rejected() {
        let err = verify_stability(&Restless, 1_000).unwrap_err();
        assert_eq!(err, ModelCheckError::PerfectRankingNotSilent);
    }

    /// Correct on rank duplicates but with an unreachable-silence trap:
    /// agents in the extra states 2/3 churn forever (every configuration
    /// touching them is productive yet none ever drains back to a rank).
    struct Trapped;
    impl Protocol for Trapped {
        fn name(&self) -> &str {
            "trapped"
        }
        fn population_size(&self) -> usize {
            2
        }
        fn num_states(&self) -> usize {
            4
        }
        fn num_rank_states(&self) -> usize {
            2
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            let flip = |s: State| if s == 2 { 3 } else { 2 };
            match (i, r) {
                (0, 0) => Some((0, 1)),
                (1, 1) => Some((1, 0)),
                (0, 1) | (1, 0) => None,
                // Any agent in {2, 3} keeps toggling between 2 and 3,
                // never re-entering a rank state.
                (a, b) if a >= 2 && b >= 2 => Some((flip(a), flip(b))),
                (a, b) if b >= 2 => Some((a, flip(b))),
                (a, b) => Some((flip(a), b)),
            }
        }
    }

    #[test]
    fn unreachable_silence_detected_with_counterexample() {
        let err = verify_stability(&Trapped, 1_000).unwrap_err();
        match err {
            ModelCheckError::SilenceUnreachable { counts } => {
                assert!(
                    counts[2] > 0 || counts[3] > 0,
                    "counterexample must involve the churning extra states: {counts:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn certificate_display_is_informative() {
        let cert = verify_stability(&GenericRanking::new(3), 1_000).unwrap();
        let s = cert.to_string();
        assert!(s.contains("stable"));
        assert!(s.contains("silent"));
    }
}
