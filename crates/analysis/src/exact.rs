//! Exact expected stabilisation times via the full Markov chain.
//!
//! For small populations the protocol's configuration space (multisets of
//! states) is small enough to enumerate. This module builds the embedded
//! Markov chain over all configurations reachable from a start, and solves
//! the first-step linear system for the **exact expected number of
//! interactions** to reach a silent configuration:
//!
//! ```text
//! E[c] = P / W(c) + Σ_{c'} (w(c→c') / W(c)) · E[c']        (silent: E = 0)
//! ```
//!
//! where `P = n(n−1)` counts ordered agent pairs and `w(c→c')` the
//! productive ordered pairs leading from `c` to `c'`. The result is the
//! ground truth both simulators are validated against (their trial means
//! must converge to it) — the strongest correctness check in the suite.
//!
//! # Examples
//!
//! ```
//! use ssr_analysis::exact::expected_interactions;
//! use ssr_core::generic::GenericRanking;
//!
//! // Two agents stacked in state 0: the very first interaction is the
//! // rule 0+0 → 0+1, so the exact expected time is 1 interaction.
//! let p = GenericRanking::new(2);
//! let e = expected_interactions(&p, &[0, 0], 10_000).unwrap();
//! assert!((e - 1.0).abs() < 1e-12);
//! ```

use ssr_engine::protocol::{Protocol, State};
use std::collections::HashMap;

/// Errors from the exact solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactError {
    /// The reachable configuration space exceeded the caller's cap.
    StateSpaceTooLarge {
        /// The cap that was exceeded.
        limit: usize,
    },
    /// A configuration was found from which no silent configuration is
    /// reachable (the protocol would not be stable).
    SilenceUnreachable,
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::StateSpaceTooLarge { limit } => {
                write!(f, "reachable configuration space exceeds {limit} states")
            }
            ExactError::SilenceUnreachable => {
                write!(f, "no silent configuration reachable — protocol unstable")
            }
        }
    }
}

impl std::error::Error for ExactError {}

type Counts = Vec<u16>;

fn counts_of(config: &[State], num_states: usize) -> Counts {
    let mut c = vec![0u16; num_states];
    for &s in config {
        c[s as usize] += 1;
    }
    c
}

/// All productive transitions out of a configuration, grouped by target:
/// `(target counts, number of ordered agent pairs realising it)`.
fn transitions<P: Protocol + ?Sized>(p: &P, c: &Counts) -> Vec<(Counts, u64)> {
    let mut out: HashMap<Counts, u64> = HashMap::new();
    let occupied: Vec<usize> = (0..c.len()).filter(|&s| c[s] > 0).collect();
    for &a in &occupied {
        for &b in &occupied {
            let pairs = if a == b {
                c[a] as u64 * (c[a] as u64 - 1)
            } else {
                c[a] as u64 * c[b] as u64
            };
            if pairs == 0 {
                continue;
            }
            if let Some((a2, b2)) = p.transition(a as State, b as State) {
                let mut next = c.clone();
                next[a] -= 1;
                next[b] -= 1;
                next[a2 as usize] += 1;
                next[b2 as usize] += 1;
                *out.entry(next).or_insert(0) += pairs;
            }
        }
    }
    out.into_iter().collect()
}

/// Exact expected number of interactions to silence from `start`, by
/// enumerating the reachable configuration space (capped at `limit`
/// configurations) and solving the first-step equations with Gaussian
/// elimination.
///
/// # Errors
///
/// [`ExactError::StateSpaceTooLarge`] if more than `limit` configurations
/// are reachable; [`ExactError::SilenceUnreachable`] if the chain has a
/// recurrent class without silent configurations.
///
/// # Panics
///
/// Panics if `start` length differs from the protocol population or
/// references out-of-range states.
pub fn expected_interactions<P: Protocol + ?Sized>(
    p: &P,
    start: &[State],
    limit: usize,
) -> Result<f64, ExactError> {
    assert_eq!(start.len(), p.population_size(), "population mismatch");
    assert!(
        start.iter().all(|&s| (s as usize) < p.num_states()),
        "state out of range"
    );
    let n = p.population_size() as u64;
    let ordered_pairs = (n * n.saturating_sub(1)) as f64;

    // BFS over reachable configurations.
    let start_counts = counts_of(start, p.num_states());
    let mut index: HashMap<Counts, usize> = HashMap::new();
    let mut configs: Vec<Counts> = Vec::new();
    let mut edges: Vec<Vec<(usize, u64)>> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    index.insert(start_counts.clone(), 0);
    configs.push(start_counts);
    edges.push(Vec::new());
    queue.push_back(0usize);
    while let Some(i) = queue.pop_front() {
        let outs = transitions(p, &configs[i].clone());
        let mut row = Vec::with_capacity(outs.len());
        for (target, w) in outs {
            let next_id = configs.len();
            let j = *index.entry(target.clone()).or_insert_with(|| {
                configs.push(target);
                edges.push(Vec::new());
                queue.push_back(next_id);
                next_id
            });
            row.push((j, w));
        }
        edges[i] = row;
        if configs.len() > limit {
            return Err(ExactError::StateSpaceTooLarge { limit });
        }
    }
    let m = configs.len();
    debug_assert_eq!(edges.len(), m);

    // Silent configurations have no productive transitions.
    let silent: Vec<bool> = edges.iter().map(|row| row.is_empty()).collect();
    if silent[0] {
        return Ok(0.0);
    }
    if !silent.iter().any(|&s| s) {
        return Err(ExactError::SilenceUnreachable);
    }

    // Unknowns: non-silent configs. Build the dense system
    //   E[i] − Σ (w/W) E[j] = P / W(i).
    let unknowns: Vec<usize> = (0..m).filter(|&i| !silent[i]).collect();
    let pos: HashMap<usize, usize> = unknowns
        .iter()
        .enumerate()
        .map(|(k, &i)| (i, k))
        .collect();
    let u = unknowns.len();
    let mut a = vec![0.0f64; u * u];
    let mut b = vec![0.0f64; u];
    for (k, &i) in unknowns.iter().enumerate() {
        let w_total: u64 = edges[i].iter().map(|&(_, w)| w).sum();
        let w_total_f = w_total as f64;
        a[k * u + k] = 1.0;
        b[k] = ordered_pairs / w_total_f;
        for &(j, w) in &edges[i] {
            if !silent[j] {
                let kj = pos[&j];
                a[k * u + kj] -= w as f64 / w_total_f;
            }
        }
    }

    let e = solve_dense(&mut a, &mut b, u).ok_or(ExactError::SilenceUnreachable)?;
    Ok(e[pos[&0]])
}

/// Exact expected interactions, returned even when the start is already
/// silent (then 0).
///
/// # Errors
///
/// As [`expected_interactions`].
pub fn expected_interactions_or_zero<P: Protocol + ?Sized>(
    p: &P,
    start: &[State],
    limit: usize,
) -> Result<f64, ExactError> {
    let start_counts = counts_of(start, p.num_states());
    if transitions(p, &start_counts).is_empty() {
        return Ok(0.0);
    }
    expected_interactions(p, start, limit)
}

/// Gaussian elimination with partial pivoting on a row-major dense matrix.
/// Returns `None` for (numerically) singular systems.
fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Option<Vec<f64>> {
    for col in 0..n {
        // Pivot.
        let mut best = col;
        let mut best_abs = a[col * n + col].abs();
        for row in col + 1..n {
            let v = a[row * n + col].abs();
            if v > best_abs {
                best = row;
                best_abs = v;
            }
        }
        if best_abs < 1e-300 {
            return None;
        }
        if best != col {
            for k in 0..n {
                a.swap(col * n + k, best * n + k);
            }
            b.swap(col, best);
        }
        // Eliminate.
        let pivot = a[col * n + col];
        for row in col + 1..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::generic::GenericRanking;
    use ssr_core::ring::RingOfTraps;
    use ssr_core::tree::TreeRanking;
    use ssr_engine::JumpSimulation;

    fn simulated_mean<P: ssr_engine::InteractionSchema>(
        p: &P,
        start: &[State],
        trials: u64,
    ) -> f64 {
        let total: u64 = (0..trials)
            .map(|t| {
                let mut s = JumpSimulation::new(p, start.to_vec(), 31_000 + t).unwrap();
                s.run_until_silent(u64::MAX).unwrap().interactions
            })
            .sum();
        total as f64 / trials as f64
    }

    #[test]
    fn two_agents_one_rule() {
        let p = GenericRanking::new(2);
        let e = expected_interactions(&p, &[0, 0], 100).unwrap();
        assert!((e - 1.0).abs() < 1e-12, "every interaction is productive");
    }

    #[test]
    fn already_silent_is_zero() {
        let p = GenericRanking::new(3);
        let e = expected_interactions_or_zero(&p, &[0, 1, 2], 100).unwrap();
        assert_eq!(e, 0.0);
    }

    #[test]
    fn generic_n3_matches_hand_computation() {
        // n = 3 from (0,0,0): chain (3,0,0) → (2,1,0) → silent or (1,2,0)…
        // Instead of deriving the closed form, verify the solver against a
        // very large simulation with tight tolerance.
        let p = GenericRanking::new(3);
        let exact = expected_interactions(&p, &[0, 0, 0], 10_000).unwrap();
        let sim = simulated_mean(&p, &[0, 0, 0], 60_000);
        let rel = (exact - sim).abs() / exact;
        assert!(rel < 0.02, "exact {exact:.3} vs sim {sim:.3}");
    }

    #[test]
    fn generic_n5_matches_simulation() {
        let p = GenericRanking::new(5);
        let exact = expected_interactions(&p, &[0; 5], 100_000).unwrap();
        let sim = simulated_mean(&p, &[0; 5], 40_000);
        let rel = (exact - sim).abs() / exact;
        assert!(rel < 0.02, "exact {exact:.2} vs sim {sim:.2}");
    }

    #[test]
    fn ring_n6_matches_simulation() {
        let p = RingOfTraps::new(6);
        let exact = expected_interactions(&p, &[0; 6], 200_000).unwrap();
        let sim = simulated_mean(&p, &[0; 6], 30_000);
        let rel = (exact - sim).abs() / exact;
        assert!(rel < 0.03, "exact {exact:.2} vs sim {sim:.2}");
    }

    #[test]
    fn tree_n4_matches_simulation() {
        let p = TreeRanking::with_buffer(4, 1);
        let exact = expected_interactions(&p, &[0; 4], 200_000).unwrap();
        let sim = simulated_mean(&p, &[0; 4], 30_000);
        let rel = (exact - sim).abs() / exact;
        assert!(rel < 0.03, "exact {exact:.2} vs sim {sim:.2}");
    }

    #[test]
    fn state_space_cap_enforced() {
        let p = GenericRanking::new(12);
        let err = expected_interactions(&p, &[0; 12], 5).unwrap_err();
        assert!(matches!(err, ExactError::StateSpaceTooLarge { .. }));
        assert!(err.to_string().contains('5'));
    }

    #[test]
    fn unstable_protocol_detected() {
        /// Two states that swap forever: never silent.
        struct Spinner;
        impl Protocol for Spinner {
            fn name(&self) -> &str {
                "spinner"
            }
            fn population_size(&self) -> usize {
                2
            }
            fn num_states(&self) -> usize {
                2
            }
            fn num_rank_states(&self) -> usize {
                2
            }
            fn transition(&self, i: State, r: State) -> Option<(State, State)> {
                Some((1 - i, 1 - r))
            }
        }
        let err = expected_interactions(&Spinner, &[0, 1], 100).unwrap_err();
        assert_eq!(err, ExactError::SilenceUnreachable);
    }
}
