//! Empirical distribution functions and histograms.
//!
//! The paper's "whp" statements are statements about the *upper tail* of
//! the stabilisation-time distribution, not about its mean. [`Ecdf`] keeps
//! the whole empirical distribution of a trial batch so tails, quantiles
//! and exceedance probabilities can be read off directly, and
//! [`Histogram`] renders a compact fixed-width ASCII view for the
//! experiment binaries' convergence sections.
//!
//! # Examples
//!
//! ```
//! use ssr_analysis::ecdf::Ecdf;
//!
//! let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
//! assert_eq!(e.eval(2.5), 0.5);      // half the sample is ≤ 2.5
//! assert_eq!(e.exceedance(3.5), 0.25);
//! assert_eq!(e.quantile(0.0), 1.0);
//! ```

/// An empirical cumulative distribution function over a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build the ECDF of a sample (sorted internally).
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(!sample.is_empty(), "cannot build an ECDF of an empty sample");
        assert!(sample.iter().all(|x| !x.is_nan()), "sample contains NaN");
        sample.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Ecdf { sorted: sample }
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true by construction; provided
    /// for `len`/`is_empty` symmetry).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample values.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// `F̂(x)` — the fraction of the sample that is `≤ x`.
    pub fn eval(&self, x: f64) -> f64 {
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// `P̂(X > x)` — the empirical exceedance (tail) probability, the
    /// quantity a "whp" bound caps.
    pub fn exceedance(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }

    /// The empirical `q`-quantile (inverse CDF, lower interpolation):
    /// the smallest sample value `v` with `F̂(v) ≥ q`; `q = 0` returns the
    /// minimum.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let k = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[k - 1]
    }

    /// Maximum absolute difference to another ECDF evaluated over the
    /// union of sample points (the two-sample Kolmogorov–Smirnov
    /// statistic; see [`crate::ks`] for the significance test).
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

/// A fixed-width histogram with an ASCII rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    width: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Histogram of `sample` over `bins` equal-width bins spanning the
    /// sample range (degenerate samples get a single-point bin).
    ///
    /// # Panics
    ///
    /// Panics if `sample` is empty, contains NaN, or `bins == 0`.
    pub fn of(sample: &[f64], bins: usize) -> Self {
        assert!(!sample.is_empty(), "cannot bin an empty sample");
        assert!(bins > 0, "need at least one bin");
        assert!(sample.iter().all(|x| !x.is_nan()), "sample contains NaN");
        let lo = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let width = if hi > lo { (hi - lo) / bins as f64 } else { 1.0 };
        let mut counts = vec![0u64; bins];
        for &x in sample {
            let idx = (((x - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Histogram {
            lo,
            width,
            bins: counts,
            total: sample.len() as u64,
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// The `[lo, hi)` range of bin `i` (the last bin is closed).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin index out of range");
        let lo = self.lo + self.width * i as f64;
        (lo, lo + self.width)
    }

    /// Render as fixed-width ASCII rows `lo..hi | ####### count`.
    pub fn render(&self, bar_width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar = "#".repeat(((c as f64 / max as f64) * bar_width as f64).round() as usize);
            out.push_str(&format!("{lo:>12.1} .. {hi:>12.1} | {bar:<bar_width$} {c}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_step_values() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 5.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    fn exceedance_complements_cdf() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        for x in [0.0, 1.5, 2.0, 9.0] {
            assert!((e.eval(x) + e.exceedance(x) - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn quantiles_hit_order_statistics() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.quantile(0.75), 30.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    fn ks_distance_zero_on_self_one_on_disjoint() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]);
        let b = Ecdf::new(vec![100.0, 200.0]);
        assert_eq!(a.ks_distance(&a), 0.0);
        assert_eq!(a.ks_distance(&b), 1.0);
        assert_eq!(b.ks_distance(&a), 1.0);
    }

    #[test]
    fn histogram_counts_sum_to_sample_size() {
        let sample: Vec<f64> = (0..97).map(|i| i as f64).collect();
        let h = Histogram::of(&sample, 10);
        assert_eq!(h.counts().iter().sum::<u64>(), 97);
        assert_eq!(h.counts().len(), 10);
    }

    #[test]
    fn histogram_degenerate_sample() {
        let h = Histogram::of(&[5.0, 5.0, 5.0], 4);
        assert_eq!(h.counts()[0], 3);
        let (lo, hi) = h.bin_range(0);
        assert!(lo <= 5.0 && hi > 5.0);
    }

    #[test]
    fn histogram_renders_all_bins() {
        let h = Histogram::of(&[1.0, 2.0, 3.0, 3.0], 3);
        let s = h.render(20);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn ecdf_rejects_empty() {
        Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn histogram_rejects_nan() {
        Histogram::of(&[1.0, f64::NAN], 2);
    }
}
