//! Two-sample Kolmogorov–Smirnov test.
//!
//! Used to certify that the naive and jump-chain simulators produce the
//! *same distribution* of stabilisation times — a much stronger statement
//! than comparing means. The p-value uses the asymptotic Kolmogorov
//! distribution `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}` with the
//! standard finite-sample correction.
//!
//! # Examples
//!
//! ```
//! use ssr_analysis::ks::ks_two_sample;
//!
//! let a: Vec<f64> = (0..500).map(|i| i as f64).collect();
//! let b: Vec<f64> = (0..500).map(|i| i as f64 + 0.5).collect();
//! let r = ks_two_sample(&a, &b);
//! assert!(r.p_value > 0.9, "nearly identical samples");
//! ```

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// Maximum distance between the two empirical CDFs.
    pub statistic: f64,
    /// Asymptotic p-value for the null "same distribution".
    pub p_value: f64,
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// # Panics
///
/// Panics if either sample is empty or contains NaN.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    assert!(
        a.iter().chain(b.iter()).all(|x| !x.is_nan()),
        "samples contain NaN"
    );
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    let (na, nb) = (sa.len(), sb.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while ia < na && ib < nb {
        let xa = sa[ia];
        let xb = sb[ib];
        let x = xa.min(xb);
        while ia < na && sa[ia] <= x {
            ia += 1;
        }
        while ib < nb && sb[ib] <= x {
            ib += 1;
        }
        let fa = ia as f64 / na as f64;
        let fb = ib as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    let ne = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// Complementary CDF of the Kolmogorov distribution.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = sign * (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += term;
        sign = -sign;
        if term.abs() < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_engine::rng::Xoshiro256;

    fn uniform_sample(n: usize, seed: u64, shift: f64) -> Vec<f64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n).map(|_| rng.unit_f64() + shift).collect()
    }

    #[test]
    fn same_distribution_accepted() {
        let a = uniform_sample(800, 1, 0.0);
        let b = uniform_sample(800, 2, 0.0);
        let r = ks_two_sample(&a, &b);
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
        assert!(r.statistic < 0.1);
    }

    #[test]
    fn shifted_distribution_rejected() {
        let a = uniform_sample(800, 3, 0.0);
        let b = uniform_sample(800, 4, 0.3);
        let r = ks_two_sample(&a, &b);
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        assert!(r.statistic > 0.2);
    }

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = vec![1.0, 2.0, 3.0];
        let r = ks_two_sample(&a, &a);
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unequal_sizes_work() {
        let a = uniform_sample(200, 5, 0.0);
        let b = uniform_sample(1000, 6, 0.0);
        let r = ks_two_sample(&a, &b);
        assert!(r.p_value > 0.01);
    }

    #[test]
    fn kolmogorov_q_limits() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.3) > 0.99);
        assert!(kolmogorov_q(2.0) < 0.001);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rejected() {
        ks_two_sample(&[], &[1.0]);
    }
}
