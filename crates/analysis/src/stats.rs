//! Summary statistics for trial measurements.
//!
//! The paper's guarantees are "with high probability" bounds; experiments
//! therefore report distributional summaries (median, p95, max) over many
//! independent trials rather than single runs.
//!
//! # Examples
//!
//! ```
//! use ssr_analysis::stats::Summary;
//!
//! let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.mean, 2.5);
//! assert_eq!(s.min, 1.0);
//! assert_eq!(s.max, 4.0);
//! assert_eq!(s.median, 2.5);
//! ```

/// Distributional summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (midpoint-interpolated).
    pub median: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
}

impl Summary {
    /// Summarise a sample.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains NaN.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "cannot summarise an empty sample");
        assert!(xs.iter().all(|x| !x.is_nan()), "sample contains NaN");
        let count = xs.len();
        let mean = xs.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: quantile_sorted(&sorted, 0.5),
            p95: quantile_sorted(&sorted, 0.95),
        }
    }

    /// Arbitrary quantile `q ∈ [0, 1]` of the same sample distribution.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(xs: &[f64], q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        assert!(!xs.is_empty());
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        quantile_sorted(&sorted, q)
    }

    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }
}

/// Linear-interpolated quantile of a pre-sorted slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Empirical success probability with a Wilson-score 95% lower bound —
/// used to certify "whp" claims from trial batches.
///
/// # Examples
///
/// ```
/// let (p, lower) = ssr_analysis::stats::success_probability(98, 100);
/// assert!(p > 0.97 && lower > 0.9);
/// ```
pub fn success_probability(successes: usize, trials: usize) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 0.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = 1.96f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let margin = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt();
    (p, ((centre - margin) / denom).max(0.0))
}

/// The paper's §7 Chernoff corollary: randomly distributing `s` tokens
/// among `m` lines, with `µ = s/m`, each line receives whp (`1 − n^{−η}`)
/// at most `(1 + 2η)µ` tokens when `µ > ln n`, and at most `µ + 2η ln n`
/// tokens when `µ ≤ ln n`. Returns that cap.
///
/// # Examples
///
/// ```
/// let cap = ssr_analysis::stats::chernoff_token_cap(1000, 10, 1.0, 100);
/// assert!(cap >= 100.0); // µ = 100 > ln 100 → cap = 3µ
/// ```
pub fn chernoff_token_cap(s: u64, m: u64, eta: f64, n: u64) -> f64 {
    assert!(m > 0, "need at least one line");
    let mu = s as f64 / m as f64;
    let ln_n = (n.max(2) as f64).ln();
    if mu > ln_n {
        (1.0 + 2.0 * eta) * mu
    } else {
        mu + 2.0 * eta * ln_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p95, 3.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(Summary::quantile(&xs, 0.0), 10.0);
        assert_eq!(Summary::quantile(&xs, 1.0), 40.0);
        assert!((Summary::quantile(&xs, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..400).map(|i| 1.0 + (i % 4) as f64).collect();
        let many = Summary::of(&many);
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn chernoff_cap_is_rarely_exceeded() {
        // Empirical check of Corollary 1: throw S tokens uniformly at M
        // lines and count violations of the cap with η = 1.
        use ssr_engine::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(42);
        let (s, m, n) = (2000u64, 20u64, 400u64);
        let cap = chernoff_token_cap(s, m, 1.0, n);
        let mut violations = 0u32;
        let trials = 200;
        for _ in 0..trials {
            let mut buckets = vec![0u64; m as usize];
            for _ in 0..s {
                buckets[rng.below(m) as usize] += 1;
            }
            if buckets.iter().any(|&b| b as f64 > cap) {
                violations += 1;
            }
        }
        // whp bound n^{-η} = 1/400 per line; with 20 lines and 200 trials
        // we expect ≈ 10 violations at the *exact* Chernoff threshold —
        // the corollary's cap is looser, so demand near-zero.
        assert!(violations <= 2, "{violations} violations of the cap");
    }

    #[test]
    fn chernoff_cap_branches() {
        // Dense branch: µ > ln n.
        let cap = chernoff_token_cap(1000, 10, 0.5, 100);
        assert!((cap - 200.0).abs() < 1e-9);
        // Sparse branch: µ ≤ ln n.
        let cap = chernoff_token_cap(10, 10, 1.0, 1000);
        let expect = 1.0 + 2.0 * (1000f64).ln();
        assert!((cap - expect).abs() < 1e-9);
    }

    #[test]
    fn wilson_bounds() {
        let (p, lo) = success_probability(100, 100);
        assert_eq!(p, 1.0);
        assert!(lo > 0.95 && lo < 1.0);
        let (p, lo) = success_probability(0, 100);
        assert_eq!(p, 0.0);
        assert_eq!(lo, 0.0);
        let (_, lo) = success_probability(0, 0);
        assert_eq!(lo, 0.0);
    }
}
