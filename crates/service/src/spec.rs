//! Job specs, the stable content key, and the result codec.
//!
//! Both codecs are versioned line-oriented text (`key value` pairs) so
//! spool files are inspectable with a pager and diffable in experiments.
//! Floating-point fields round-trip exactly: encoding uses Rust's
//! shortest-roundtrip `Display`, and the result codec additionally carries
//! bit patterns so a decoded [`JobResult`] is *bit-identical* to the one
//! encoded — the property the kill/resume acceptance test asserts.

use crate::ServiceError;
use ssr_core::{GenericRanking, LineOfTraps, RingOfTraps, TreeRanking};
use ssr_engine::{EngineKind, FaultPlan, Init, InteractionSchema};
use std::fmt;

/// Codec version tag of the job-spec text format.
pub const JOB_SPEC_VERSION: &str = "ssr-job v1";
/// Codec version tag of the result text format.
pub const JOB_RESULT_VERSION: &str = "ssr-result v1";

/// Initial-configuration family of a job — the closed (serialisable)
/// subset of [`ssr_engine::Init`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobInit {
    /// Everyone stacked in state 0.
    Stacked,
    /// Everyone in the given state.
    AllIn(u32),
    /// Uniformly random over the full state space.
    Uniform,
    /// The silent perfect ranking.
    Perfect,
    /// Ranking distance exactly `k`.
    KDistant(usize),
}

impl JobInit {
    fn code(self) -> u64 {
        match self {
            JobInit::Stacked => 1,
            JobInit::AllIn(s) => 2 | (s as u64) << 8,
            JobInit::Uniform => 3,
            JobInit::Perfect => 4,
            JobInit::KDistant(k) => 5 | (k as u64) << 8,
        }
    }

    /// The engine-side init family this job init denotes.
    pub fn to_init(self) -> Init<'static> {
        match self {
            JobInit::Stacked => Init::Stacked,
            JobInit::AllIn(s) => Init::AllIn(s),
            JobInit::Uniform => Init::Uniform,
            JobInit::Perfect => Init::Perfect,
            JobInit::KDistant(k) => Init::KDistant(k),
        }
    }
}

impl fmt::Display for JobInit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobInit::Stacked => write!(f, "stacked"),
            JobInit::AllIn(s) => write!(f, "all-in {s}"),
            JobInit::Uniform => write!(f, "uniform"),
            JobInit::Perfect => write!(f, "perfect"),
            JobInit::KDistant(k) => write!(f, "k-distant {k}"),
        }
    }
}

/// One scenario job: everything needed to reproduce a single run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Protocol name: `generic`, `ring`, `line`, or `tree` (`ag` is
    /// accepted on input and canonicalised to `generic`).
    pub protocol: String,
    /// Population size.
    pub n: usize,
    /// Initial-configuration family.
    pub init: JobInit,
    /// Engine selection; `Auto` is canonicalised per `n` in the key.
    pub engine: EngineKind,
    /// Base seed (configuration, simulation, and fault streams derive
    /// from it exactly as in [`ssr_engine::Scenario`]).
    pub seed: u64,
    /// Interaction budget (`u64::MAX` = unbounded).
    pub max_interactions: u64,
    /// Requested core budget; 0 = daemon default. **Not** part of the
    /// content key — trajectories are bit-identical at any thread count.
    pub threads: usize,
    /// One-shot fault bursts `(clock time, faults)`.
    pub bursts: Vec<(u128, u32)>,
    /// Background corruption probability per interaction.
    pub fault_rate: f64,
    /// Replacement-churn probability per interaction.
    pub churn: f64,
    /// Persistent Byzantine (stuck-at) agents.
    pub byzantine: u32,
}

impl JobSpec {
    /// A fault-free job with the runner defaults: auto engine, uniform
    /// start, unbounded budget, daemon-default threads.
    pub fn new(protocol: &str, n: usize, seed: u64) -> Self {
        JobSpec {
            protocol: canonical_protocol(protocol).unwrap_or(protocol).to_string(),
            n,
            init: JobInit::Uniform,
            engine: EngineKind::Auto,
            seed,
            max_interactions: u64::MAX,
            threads: 0,
            bursts: Vec::new(),
            fault_rate: 0.0,
            churn: 0.0,
            byzantine: 0,
        }
    }

    /// Build the job's protocol instance.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Spec`] for unknown protocol names.
    pub fn make_protocol(&self) -> Result<Box<dyn InteractionSchema + Sync>, ServiceError> {
        match canonical_protocol(&self.protocol) {
            Some("generic") => Ok(Box::new(GenericRanking::new(self.n))),
            Some("ring") => Ok(Box::new(RingOfTraps::new(self.n))),
            Some("line") => Ok(Box::new(LineOfTraps::new(self.n))),
            Some("tree") => Ok(Box::new(TreeRanking::new(self.n))),
            _ => Err(ServiceError::Spec(format!(
                "unknown protocol '{}' (expected generic|ring|line|tree)",
                self.protocol
            ))),
        }
    }

    /// Assemble the job's adversary flags into a [`FaultPlan`]; `None`
    /// for fault-free jobs.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        let mut plan = FaultPlan::new();
        let mut any = false;
        for &(t, f) in &self.bursts {
            plan = plan.burst_at(t, f);
            any = true;
        }
        if self.fault_rate > 0.0 {
            plan = plan.rate(self.fault_rate);
            any = true;
        }
        if self.churn > 0.0 {
            plan = plan.churn(self.churn);
            any = true;
        }
        if self.byzantine > 0 {
            plan = plan.byzantine(self.byzantine);
            any = true;
        }
        any.then_some(plan)
    }

    /// Check the spec is well-formed and executable (protocol known, fault
    /// probabilities in range, persistent fault processes bounded by a
    /// finite budget).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Spec`] describing the first violation.
    pub fn validate(&self) -> Result<(), ServiceError> {
        canonical_protocol(&self.protocol).ok_or_else(|| {
            ServiceError::Spec(format!(
                "unknown protocol '{}' (expected generic|ring|line|tree)",
                self.protocol
            ))
        })?;
        if self.n == 0 {
            return Err(ServiceError::Spec("population must be positive".into()));
        }
        for rate in [self.fault_rate, self.churn] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(ServiceError::Spec(format!(
                    "fault/churn rates must be probabilities, got {rate}"
                )));
            }
        }
        if let JobInit::KDistant(k) = self.init {
            if k >= self.n {
                return Err(ServiceError::Spec(format!(
                    "k-distant start needs k < n (k = {k}, n = {})",
                    self.n
                )));
            }
        }
        if let Some(plan) = self.fault_plan() {
            if plan.may_never_silence() && self.max_interactions == u64::MAX {
                return Err(ServiceError::Spec(
                    "persistent fault process (rate/churn/byzantine) needs a finite budget"
                        .into(),
                ));
            }
        }
        Ok(())
    }

    /// The stable 128-bit content key of this job.
    ///
    /// Covers the protocol's
    /// [`schema_hash`](InteractionSchema::schema_hash) (so a cached result
    /// is never served across rule changes), the canonical protocol name,
    /// `n`, init, the engine kind **with `Auto` resolved against `n`** (an
    /// `auto` job and an explicit `count` job at `n ≥ 4096` are the same
    /// run), seed, budget, and the full fault plan. Excludes `threads`:
    /// trajectories are bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Spec`] when the protocol is unknown.
    pub fn key(&self) -> Result<JobKey, ServiceError> {
        let protocol = self.make_protocol()?;
        // `make_protocol` succeeding implies the name resolves, but a
        // typed error beats a daemon abort if the two maps ever drift.
        let canonical = canonical_protocol(&self.protocol).ok_or_else(|| {
            ServiceError::Spec(format!(
                "unknown protocol '{}' (expected generic|ring|line|tree)",
                self.protocol
            ))
        })?;
        let mut lo = Fnv::new(0xCBF2_9CE4_8422_2325);
        let mut hi = Fnv::new(0x6C62_272E_07BB_0142); // independent basis
        for h in [&mut lo, &mut hi] {
            h.word(1); // key-derivation version
            h.word(protocol.schema_hash());
            h.bytes(canonical.as_bytes());
            h.word(self.n as u64);
            h.word(self.init.code());
            h.word(self.engine.resolve(self.n) as u64);
            h.word(self.seed);
            h.word(self.max_interactions);
            h.word(self.bursts.len() as u64);
            for &(t, f) in &self.bursts {
                // Audited: a u128 burst time hashes as its two u64
                // halves — the low-word narrow is the point.
                #[allow(clippy::cast_possible_truncation)]
                h.word(t as u64);
                h.word((t >> 64) as u64);
                h.word(f as u64);
            }
            h.word(self.fault_rate.to_bits());
            h.word(self.churn.to_bits());
            h.word(self.byzantine as u64);
        }
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&lo.finish().to_le_bytes());
        key[8..].copy_from_slice(&hi.finish().to_le_bytes());
        Ok(JobKey(key))
    }

    /// Encode as versioned spec text (the spool-file format).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(JOB_SPEC_VERSION);
        out.push('\n');
        out.push_str(&format!("protocol {}\n", self.protocol));
        out.push_str(&format!("n {}\n", self.n));
        out.push_str(&format!("init {}\n", self.init));
        out.push_str(&format!("engine {}\n", self.engine.name()));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("max {}\n", self.max_interactions));
        out.push_str(&format!("threads {}\n", self.threads));
        for &(t, f) in &self.bursts {
            out.push_str(&format!("burst {t}:{f}\n"));
        }
        if self.fault_rate > 0.0 {
            out.push_str(&format!("fault-rate {}\n", self.fault_rate));
        }
        if self.churn > 0.0 {
            out.push_str(&format!("churn {}\n", self.churn));
        }
        if self.byzantine > 0 {
            out.push_str(&format!("byzantine {}\n", self.byzantine));
        }
        out
    }

    /// Decode spec text.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Spec`] for version or syntax violations.
    pub fn decode(text: &str) -> Result<Self, ServiceError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        if header.trim() != JOB_SPEC_VERSION {
            return Err(ServiceError::Spec(format!(
                "unsupported spec header '{header}' (expected '{JOB_SPEC_VERSION}')"
            )));
        }
        let mut spec = JobSpec::new("tree", 0, 0);
        spec.protocol = String::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once(' ')
                .ok_or_else(|| ServiceError::Spec(format!("malformed line '{line}'")))?;
            let v = v.trim();
            match k {
                "protocol" => spec.protocol = v.to_string(),
                "n" => spec.n = parse(v, "n")?,
                "init" => {
                    let (fam, arg) = v.split_once(' ').unwrap_or((v, ""));
                    spec.init = match fam {
                        "stacked" => JobInit::Stacked,
                        "uniform" => JobInit::Uniform,
                        "perfect" => JobInit::Perfect,
                        "all-in" => JobInit::AllIn(parse(arg, "init all-in")?),
                        "k-distant" => JobInit::KDistant(parse(arg, "init k-distant")?),
                        other => {
                            return Err(ServiceError::Spec(format!("unknown init '{other}'")))
                        }
                    };
                }
                "engine" => spec.engine = EngineKind::parse(v).map_err(ServiceError::Spec)?,
                "seed" => spec.seed = parse(v, "seed")?,
                "max" => spec.max_interactions = parse(v, "max")?,
                "threads" => spec.threads = parse(v, "threads")?,
                "burst" => {
                    let (t, f) = v.split_once(':').ok_or_else(|| {
                        ServiceError::Spec(format!("burst expects time:faults, got '{v}'"))
                    })?;
                    spec.bursts.push((parse(t, "burst time")?, parse(f, "burst faults")?));
                }
                "fault-rate" => spec.fault_rate = parse(v, "fault-rate")?,
                "churn" => spec.churn = parse(v, "churn")?,
                "byzantine" => spec.byzantine = parse(v, "byzantine")?,
                other => {
                    return Err(ServiceError::Spec(format!("unknown spec field '{other}'")))
                }
            }
        }
        if spec.protocol.is_empty() || spec.n == 0 {
            return Err(ServiceError::Spec(
                "spec must set at least protocol and n".into(),
            ));
        }
        Ok(spec)
    }
}

fn canonical_protocol(name: &str) -> Option<&'static str> {
    match name {
        "generic" | "ag" => Some("generic"),
        "ring" => Some("ring"),
        "line" => Some("line"),
        "tree" => Some("tree"),
        _ => None,
    }
}

fn parse<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, ServiceError> {
    v.trim()
        .parse()
        .map_err(|_| ServiceError::Spec(format!("{what}: cannot parse '{v}'")))
}

/// FNV-1a 64, fed word-at-a-time (bytes in little-endian order, so the
/// digest is host-independent).
struct Fnv(u64);

impl Fnv {
    fn new(basis: u64) -> Self {
        Fnv(basis)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn word(&mut self, w: u64) {
        self.bytes(&w.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// 128-bit content address of a job. The hex form is the spool file name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(pub [u8; 16]);

impl JobKey {
    /// 32-character lowercase hex form (stable, filesystem-safe).
    pub fn hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parse the hex form back.
    pub fn from_hex(s: &str) -> Option<JobKey> {
        let s = s.trim();
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut key = [0u8; 16];
        for (i, chunk) in key.iter_mut().enumerate() {
            *chunk = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(JobKey(key))
    }
}

impl fmt::Display for JobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// How a completed run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatusKind {
    /// Reached a silent configuration within the budget.
    Silent,
    /// Budget exhausted first (still a *result* — deterministic per spec).
    Timeout,
}

/// Adversary observables of a fault-plan job (mirrors
/// [`ssr_engine::RunOutcome`] minus the report, which lives in the parent
/// [`JobResult`]).
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeStats {
    /// Time-weighted availability.
    pub availability: f64,
    /// Time-weighted mean `k`-distance.
    pub mean_k: f64,
    /// Maximum `k`-distance excursion.
    pub max_k: usize,
    /// Corruption attempts injected.
    pub faults_injected: u64,
    /// Churn events executed.
    pub churn_events: u64,
    /// Per-burst records `(time, faults, k_after, recovery)`.
    pub bursts: Vec<(u128, u32, usize, Option<u128>)>,
}

/// The memoised outcome of one job. `PartialEq` compares every field —
/// floats included — so the kill/resume test can assert bit-identity
/// (floats are encoded by bit pattern and never NaN).
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Silent or budget-exhausted.
    pub status: JobStatusKind,
    /// Final interaction clock (u64 view, saturating).
    pub interactions: u64,
    /// Final interaction clock, full width.
    pub interactions_wide: u128,
    /// Productive interactions executed.
    pub productive: u64,
    /// Parallel time (interactions / n).
    pub parallel_time: f64,
    /// Adversary observables; `None` for fault-free jobs.
    pub outcome: Option<OutcomeStats>,
}

impl JobResult {
    /// Encode as versioned result text. Floats are written as `f64` bit
    /// patterns (hex) so decoding is exact.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(JOB_RESULT_VERSION);
        out.push('\n');
        out.push_str(match self.status {
            JobStatusKind::Silent => "status silent\n",
            JobStatusKind::Timeout => "status timeout\n",
        });
        out.push_str(&format!("interactions {}\n", self.interactions));
        out.push_str(&format!("interactions-wide {}\n", self.interactions_wide));
        out.push_str(&format!("productive {}\n", self.productive));
        out.push_str(&format!(
            "parallel-time-bits {:016x}\n",
            self.parallel_time.to_bits()
        ));
        if let Some(o) = &self.outcome {
            out.push_str(&format!(
                "outcome {:016x} {:016x} {} {} {}\n",
                o.availability.to_bits(),
                o.mean_k.to_bits(),
                o.max_k,
                o.faults_injected,
                o.churn_events
            ));
            for &(t, f, k, r) in &o.bursts {
                match r {
                    Some(r) => out.push_str(&format!("burst {t}:{f}:{k}:{r}\n")),
                    None => out.push_str(&format!("burst {t}:{f}:{k}:-\n")),
                }
            }
        }
        out
    }

    /// Decode result text.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Spec`] for version or syntax violations.
    pub fn decode(text: &str) -> Result<Self, ServiceError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        if header.trim() != JOB_RESULT_VERSION {
            return Err(ServiceError::Spec(format!(
                "unsupported result header '{header}' (expected '{JOB_RESULT_VERSION}')"
            )));
        }
        let mut result = JobResult {
            status: JobStatusKind::Silent,
            interactions: 0,
            interactions_wide: 0,
            productive: 0,
            parallel_time: 0.0,
            outcome: None,
        };
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once(' ')
                .ok_or_else(|| ServiceError::Spec(format!("malformed line '{line}'")))?;
            let v = v.trim();
            match k {
                "status" => {
                    result.status = match v {
                        "silent" => JobStatusKind::Silent,
                        "timeout" => JobStatusKind::Timeout,
                        other => {
                            return Err(ServiceError::Spec(format!("unknown status '{other}'")))
                        }
                    };
                }
                "interactions" => result.interactions = parse(v, "interactions")?,
                "interactions-wide" => {
                    result.interactions_wide = parse(v, "interactions-wide")?;
                }
                "productive" => result.productive = parse(v, "productive")?,
                "parallel-time-bits" => {
                    let bits = u64::from_str_radix(v, 16).map_err(|_| {
                        ServiceError::Spec(format!("parallel-time-bits: bad hex '{v}'"))
                    })?;
                    result.parallel_time = f64::from_bits(bits);
                }
                "outcome" => {
                    let parts: Vec<&str> = v.split_whitespace().collect();
                    if parts.len() != 5 {
                        return Err(ServiceError::Spec(format!(
                            "outcome expects 5 fields, got '{v}'"
                        )));
                    }
                    let fbits = |s: &str, what: &str| -> Result<f64, ServiceError> {
                        u64::from_str_radix(s, 16)
                            .map(f64::from_bits)
                            .map_err(|_| ServiceError::Spec(format!("{what}: bad hex '{s}'")))
                    };
                    result.outcome = Some(OutcomeStats {
                        availability: fbits(parts[0], "availability")?,
                        mean_k: fbits(parts[1], "mean-k")?,
                        max_k: parse(parts[2], "max-k")?,
                        faults_injected: parse(parts[3], "faults-injected")?,
                        churn_events: parse(parts[4], "churn-events")?,
                        bursts: Vec::new(),
                    });
                }
                "burst" => {
                    let o = result.outcome.as_mut().ok_or_else(|| {
                        ServiceError::Spec("burst line before outcome line".into())
                    })?;
                    let parts: Vec<&str> = v.split(':').collect();
                    if parts.len() != 4 {
                        return Err(ServiceError::Spec(format!(
                            "burst expects t:f:k:r, got '{v}'"
                        )));
                    }
                    let recovery = match parts[3] {
                        "-" => None,
                        r => Some(parse(r, "burst recovery")?),
                    };
                    o.bursts.push((
                        parse(parts[0], "burst time")?,
                        parse(parts[1], "burst faults")?,
                        parse(parts[2], "burst k")?,
                        recovery,
                    ));
                }
                other => {
                    return Err(ServiceError::Spec(format!(
                        "unknown result field '{other}'"
                    )))
                }
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        let mut spec = JobSpec::new("tree", 65_536, 42);
        spec.init = JobInit::KDistant(5);
        spec.max_interactions = 1_000_000_000;
        spec.threads = 4;
        spec.bursts = vec![(1_000, 4), (5_000_000, 2)];
        spec.fault_rate = 1e-7;
        spec.byzantine = 3;
        spec
    }

    #[test]
    fn spec_text_round_trips() {
        let spec = sample_spec();
        assert_eq!(JobSpec::decode(&spec.encode()).unwrap(), spec);
        let plain = JobSpec::new("ring", 100, 7);
        assert_eq!(JobSpec::decode(&plain.encode()).unwrap(), plain);
    }

    #[test]
    fn spec_decode_rejects_bad_input() {
        assert!(JobSpec::decode("").is_err());
        assert!(JobSpec::decode("ssr-job v9\nprotocol tree\nn 4\n").is_err());
        assert!(JobSpec::decode("ssr-job v1\nprotocol tree\nn 4\nwat 3\n").is_err());
        assert!(JobSpec::decode("ssr-job v1\nprotocol tree\n").is_err());
    }

    #[test]
    fn key_is_stable_and_sensitive() {
        let spec = sample_spec();
        assert_eq!(spec.key().unwrap(), spec.key().unwrap());
        let mut other = spec.clone();
        other.seed += 1;
        assert_ne!(spec.key().unwrap(), other.key().unwrap());
        let mut other = spec.clone();
        other.protocol = "ring".into();
        assert_ne!(spec.key().unwrap(), other.key().unwrap());
        let mut other = spec.clone();
        other.bursts[0].1 += 1;
        assert_ne!(spec.key().unwrap(), other.key().unwrap());
    }

    #[test]
    fn key_excludes_threads_and_canonicalises() {
        let spec = sample_spec();
        let mut other = spec.clone();
        other.threads = 32;
        assert_eq!(spec.key().unwrap(), other.key().unwrap(), "threads are scheduling");

        // Auto resolves to count at n ≥ 4096: same run, same key.
        let mut auto = spec.clone();
        auto.engine = EngineKind::Auto;
        let mut count = spec;
        count.engine = EngineKind::Count;
        assert_eq!(auto.key().unwrap(), count.key().unwrap());

        // `ag` is the same protocol as `generic`.
        let a = JobSpec::new("ag", 64, 1);
        let g = JobSpec::new("generic", 64, 1);
        assert_eq!(a.key().unwrap(), g.key().unwrap());
    }

    #[test]
    fn key_hex_round_trips() {
        let key = sample_spec().key().unwrap();
        assert_eq!(JobKey::from_hex(&key.hex()), Some(key));
        assert_eq!(JobKey::from_hex("zz"), None);
        assert_eq!(JobKey::from_hex(&"0".repeat(31)), None);
    }

    #[test]
    fn result_text_round_trips_bit_exactly() {
        let result = JobResult {
            status: JobStatusKind::Timeout,
            interactions: u64::MAX,
            interactions_wide: (u64::MAX as u128) * 3,
            productive: 123_456,
            parallel_time: 1234.5678901234567,
            outcome: Some(OutcomeStats {
                availability: 0.9987654321,
                mean_k: 0.1234,
                max_k: 17,
                faults_injected: 99,
                churn_events: 3,
                bursts: vec![(1_000, 4, 7, Some(88_000)), (2_000, 2, 3, None)],
            }),
        };
        let decoded = JobResult::decode(&result.encode()).unwrap();
        assert_eq!(decoded, result);
        assert_eq!(
            decoded.parallel_time.to_bits(),
            result.parallel_time.to_bits()
        );
    }

    #[test]
    fn validate_catches_unsatisfiable_specs() {
        assert!(JobSpec::new("tree", 64, 1).validate().is_ok());
        assert!(JobSpec::new("warp", 64, 1).validate().is_err());
        assert!(JobSpec::new("tree", 0, 1).validate().is_err());
        let mut bad = JobSpec::new("tree", 64, 1);
        bad.init = JobInit::KDistant(64);
        assert!(bad.validate().is_err());
        let mut unbounded = JobSpec::new("tree", 64, 1);
        unbounded.churn = 1e-6;
        assert!(unbounded.validate().is_err(), "persistent plan needs a cap");
        unbounded.max_interactions = 1_000_000;
        assert!(unbounded.validate().is_ok());
    }
}
