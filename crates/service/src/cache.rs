//! Content-addressed result cache: one [`JobResult`] file per [`JobKey`].
//!
//! The key is a stable hash of the *full* job spec (see
//! [`JobSpec::key`](crate::spec::JobSpec::key)), so a hit is by
//! construction the result of an identical run — same protocol rules
//! (schema hash), same `n`, init, engine, seed, budget and fault plan.
//! Corrupt or truncated entries degrade to misses: the cache is an
//! optimisation, never an oracle.

use crate::spec::{JobKey, JobResult};
use std::fs;
use std::io;
use std::path::PathBuf;

/// On-disk result cache rooted at one directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ResultCache { root })
    }

    fn path(&self, key: JobKey) -> PathBuf {
        self.root.join(format!("{}.result", key.hex()))
    }

    /// Look up a memoised result. Missing and undecodable entries are
    /// both misses.
    pub fn get(&self, key: JobKey) -> Option<JobResult> {
        let text = fs::read_to_string(self.path(key)).ok()?;
        JobResult::decode(&text).ok()
    }

    /// Memoise `result` under `key`, atomically.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn put(&self, key: JobKey, result: &JobResult) -> io::Result<()> {
        let path = self.path(key);
        let tmp = path.with_extension("result.tmp");
        fs::write(&tmp, result.encode())?;
        fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobStatusKind;

    fn temp_cache(name: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!(
            "ssr-cache-test-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::open(dir).unwrap()
    }

    fn result(interactions: u64) -> JobResult {
        JobResult {
            status: JobStatusKind::Silent,
            interactions,
            interactions_wide: interactions as u128,
            productive: interactions / 2,
            parallel_time: interactions as f64 / 64.0,
            outcome: None,
        }
    }

    #[test]
    fn put_get_round_trips_and_overwrites() {
        let cache = temp_cache("roundtrip");
        let key = JobKey([7; 16]);
        assert_eq!(cache.get(key), None);
        cache.put(key, &result(100)).unwrap();
        assert_eq!(cache.get(key), Some(result(100)));
        cache.put(key, &result(200)).unwrap();
        assert_eq!(cache.get(key), Some(result(200)));
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let cache = temp_cache("corrupt");
        let key = JobKey([8; 16]);
        cache.put(key, &result(100)).unwrap();
        fs::write(cache.path(key), "not a result file").unwrap();
        assert_eq!(cache.get(key), None);
    }
}
