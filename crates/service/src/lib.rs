//! # ssr-service — simulation-as-a-service
//!
//! A long-running job daemon over the engine substrate: scenario jobs are
//! submitted as small spec files into a spool directory, scheduled across
//! a core budget with admission control
//! ([`Scenario::thread_split`](ssr_engine::Scenario::thread_split)),
//! checkpointed periodically to a durable on-disk store so killed or
//! restarted jobs resume **bit-identically** mid-run, and memoised in a
//! content-addressed result cache keyed by a stable hash of the full job
//! spec — a re-submitted sweep point is served without touching an engine.
//!
//! ## Pieces
//!
//! * [`JobSpec`] / [`JobKey`] — the job description (protocol, n, init,
//!   fault plan, engine kind, seed, budget) with a versioned text codec
//!   and a 128-bit content key built on
//!   [`schema_hash`](ssr_engine::InteractionSchema::schema_hash). The key
//!   deliberately excludes the thread budget: every engine is
//!   bit-identical at any thread count, so thread count is a scheduling
//!   concern, not an identity.
//! * [`CheckpointStore`] — versioned
//!   [`EngineSnapshot`](ssr_engine::EngineSnapshot) wire blobs (including
//!   the count engine's batching control state and the full-width `u128`
//!   interaction clock), written atomically, pruned to the newest two.
//! * [`ResultCache`] — completed [`JobResult`]s, content-addressed by
//!   [`JobKey`]; corrupt entries degrade to cache misses.
//! * [`run_job`] — one job execution: restore from the latest checkpoint
//!   if present, replay the engine's exact run-to-silence loop with
//!   checkpoints interleaved between quanta (snapshots consume no RNG, so
//!   checkpointed and uninterrupted trajectories are identical), optionally
//!   self-interrupt after k checkpoints to simulate a kill.
//! * [`Daemon`] — the spool-directory scheduler: admission control against
//!   the core budget, worker threads, crash recovery (requeue `running/`
//!   on startup), cache-first serving, graceful drain.
//!
//! ## Spool layout
//!
//! ```text
//! <dir>/pending/<key>.job       submitted, not yet scheduled
//! <dir>/running/<key>.job       claimed by a worker
//! <dir>/done/<key>.result       completed (result codec)
//! <dir>/done/<key>.src          "cache" or "engine" — how it completed
//! <dir>/failed/<key>.err        failed (human-readable reason)
//! <dir>/checkpoints/<key>/      ckpt-<clock>.snap blobs
//! <dir>/cache/<key>.result      memoised results
//! ```
//!
//! Submitting the same spec twice is naturally idempotent: the file name
//! *is* the content key.

// `unsafe_code = "forbid"` comes from [workspace.lints] in the root manifest.
#![warn(missing_docs)]

pub mod cache;
pub mod daemon;
pub mod runner;
pub mod spec;
pub mod store;

pub use cache::ResultCache;
pub use daemon::{submit_job, Daemon, DaemonConfig, DaemonStats, JobStatus};
pub use runner::{run_job, RunConfig, RunDisposition};
pub use spec::{JobInit, JobKey, JobResult, JobSpec, JobStatusKind, OutcomeStats};
pub use store::CheckpointStore;

use ssr_engine::wire::SnapshotDecodeError;
use std::fmt;

/// Unified error type of the service layer.
#[derive(Debug)]
pub enum ServiceError {
    /// Filesystem failure in the spool, store, or cache.
    Io(std::io::Error),
    /// Malformed or unsatisfiable job spec.
    Spec(String),
    /// The spec was well-formed but the engine rejected the configuration.
    Config(String),
    /// A checkpoint failed to decode (version/schema/shape/corruption).
    Snapshot(SnapshotDecodeError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "io: {e}"),
            ServiceError::Spec(m) => write!(f, "bad job spec: {m}"),
            ServiceError::Config(m) => write!(f, "bad configuration: {m}"),
            ServiceError::Snapshot(e) => write!(f, "bad checkpoint: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<SnapshotDecodeError> for ServiceError {
    fn from(e: SnapshotDecodeError) -> Self {
        ServiceError::Snapshot(e)
    }
}
