//! The spool-directory job daemon: queueing, admission control, worker
//! threads, crash recovery, and cache-first serving.
//!
//! Submission is a file write ([`submit_job`]) — the spec's content key is
//! the file name, so duplicate submissions collapse into one spool entry.
//! The daemon loop claims pending jobs by renaming them into `running/`
//! (rename is atomic on one filesystem), admits them against a core
//! budget using the engine's own
//! [`Scenario::thread_split`](ssr_engine::Scenario::thread_split) policy,
//! and hands each to a worker thread running
//! [`run_job`](crate::runner::run_job). On startup anything still in
//! `running/` is requeued — those jobs resume from their newest durable
//! checkpoint and finish bit-identically.

use crate::cache::ResultCache;
use crate::runner::{run_job, RunConfig, RunDisposition};
use crate::spec::{JobKey, JobResult, JobSpec};
use crate::store::CheckpointStore;
use crate::ServiceError;
use ssr_engine::Scenario;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// Daemon policy knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Spool root directory (created if absent).
    pub dir: PathBuf,
    /// Core budget shared by all concurrently running jobs; 0 = the
    /// machine's available parallelism.
    pub cores: usize,
    /// Per-job checkpoint cadence in interactions; 0 disables.
    pub checkpoint_every: u128,
    /// Idle poll interval.
    pub poll_ms: u64,
    /// Exit once the queue and all workers are empty (one-shot batch
    /// mode); otherwise keep serving.
    pub drain: bool,
    /// Stop scheduling after this many completions (served or failed).
    pub max_jobs: Option<usize>,
    /// Kill drill: workers self-interrupt after this many checkpoints and
    /// the daemon exits, leaving durable state for a successor.
    pub kill_after_checkpoints: Option<u32>,
}

impl DaemonConfig {
    /// Batch-mode defaults over a spool directory: drain when empty,
    /// single core, checkpoint every 2²² interactions.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            dir: dir.into(),
            cores: 1,
            checkpoint_every: 1 << 22,
            poll_ms: 20,
            drain: true,
            max_jobs: None,
            kill_after_checkpoints: None,
        }
    }
}

/// Counters of one [`Daemon::run`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Jobs completed (engine runs + cache hits).
    pub completed: u64,
    /// Completions served from the result cache with zero engine
    /// interactions.
    pub cache_hits: u64,
    /// Engine completions that resumed from a durable checkpoint.
    pub resumed: u64,
    /// Jobs that failed (bad spec or engine rejection).
    pub failed: u64,
    /// Workers interrupted by the kill drill.
    pub interrupted: u64,
    /// Jobs found in `running/` at startup and requeued.
    pub recovered: u64,
}

/// Spool state of one job key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Queued, not yet claimed.
    Pending,
    /// Claimed by a worker (or orphaned by a killed daemon — requeued on
    /// the next start).
    Running,
    /// Completed; `source` is `"engine"` or `"cache"`.
    Done {
        /// How the job completed.
        source: String,
    },
    /// Failed; the reason is in `failed/<key>.err`.
    Failed,
    /// No trace of the key in the spool.
    Unknown,
}

/// Write `spec` into the spool's pending queue. Returns the content key
/// (also the spool file name) — submitting an identical spec twice is a
/// no-op beyond refreshing the file.
///
/// # Errors
///
/// Rejects invalid specs ([`ServiceError::Spec`]) and propagates spool
/// I/O failures.
pub fn submit_job(dir: &Path, spec: &JobSpec) -> Result<JobKey, ServiceError> {
    spec.validate()?;
    let key = spec.key()?;
    let pending = dir.join("pending");
    fs::create_dir_all(&pending)?;
    let path = pending.join(format!("{}.job", key.hex()));
    let tmp = path.with_extension("job.tmp");
    fs::write(&tmp, spec.encode())?;
    fs::rename(&tmp, path)?;
    Ok(key)
}

/// Look up the spool state of `key`.
pub fn job_status(dir: &Path, key: JobKey) -> JobStatus {
    let hex = key.hex();
    if dir.join("done").join(format!("{hex}.result")).exists() {
        let source = fs::read_to_string(dir.join("done").join(format!("{hex}.src")))
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|_| "engine".to_string());
        return JobStatus::Done { source };
    }
    if dir.join("failed").join(format!("{hex}.err")).exists() {
        return JobStatus::Failed;
    }
    if dir.join("running").join(format!("{hex}.job")).exists() {
        return JobStatus::Running;
    }
    if dir.join("pending").join(format!("{hex}.job")).exists() {
        return JobStatus::Pending;
    }
    JobStatus::Unknown
}

/// Read a completed job's result from the spool.
pub fn job_result(dir: &Path, key: JobKey) -> Option<JobResult> {
    let text = fs::read_to_string(dir.join("done").join(format!("{}.result", key.hex()))).ok()?;
    JobResult::decode(&text).ok()
}

enum WorkerOutcome {
    Done { resumed: bool },
    Interrupted,
    Failed,
}

struct WorkerMsg {
    cost: usize,
    outcome: WorkerOutcome,
}

struct Worker {
    handle: thread::JoinHandle<()>,
}

/// The job daemon. Construct with [`Daemon::new`], drive with
/// [`Daemon::run`].
pub struct Daemon {
    cfg: DaemonConfig,
    store: CheckpointStore,
    cache: ResultCache,
    stats: DaemonStats,
}

impl Daemon {
    /// Open the spool (creating its directory tree), recover orphaned
    /// `running/` entries back into the queue, and open the checkpoint
    /// store and result cache.
    ///
    /// # Errors
    ///
    /// Propagates spool I/O failures.
    pub fn new(cfg: DaemonConfig) -> Result<Self, ServiceError> {
        for sub in ["pending", "running", "done", "failed"] {
            fs::create_dir_all(cfg.dir.join(sub))?;
        }
        let store = CheckpointStore::open(cfg.dir.join("checkpoints"))?;
        let cache = ResultCache::open(cfg.dir.join("cache"))?;
        let mut stats = DaemonStats::default();
        // Crash recovery: a previous daemon died with these claimed.
        for entry in fs::read_dir(cfg.dir.join("running"))?.flatten() {
            let name = entry.file_name();
            fs::rename(entry.path(), cfg.dir.join("pending").join(&name))?;
            stats.recovered += 1;
        }
        Ok(Daemon {
            cfg,
            store,
            cache,
            stats,
        })
    }

    /// Effective core budget.
    fn cores(&self) -> usize {
        if self.cfg.cores > 0 {
            self.cfg.cores
        } else {
            thread::available_parallelism().map_or(1, |p| p.get())
        }
    }

    /// Admission cost of a job: clamp its requested budget to the
    /// daemon's, then ask the engine's own split policy what it would
    /// actually use. (Jobs that request no budget cost one core — maximal
    /// queue concurrency.)
    fn admission_cost(&self, spec: &JobSpec) -> Result<usize, ServiceError> {
        let requested = spec.threads.clamp(1, self.cores());
        let protocol = spec.make_protocol()?;
        let (trial_workers, split_threads) = Scenario::new(protocol.as_ref())
            .threads(requested)
            .thread_split();
        Ok((trial_workers * split_threads).max(1))
    }

    /// Serve jobs until drained (or killed by the drill). Returns the
    /// run's counters.
    ///
    /// # Errors
    ///
    /// Propagates spool I/O failures; individual job failures land in
    /// `failed/` and the stats, not here.
    pub fn run(&mut self) -> Result<DaemonStats, ServiceError> {
        let cores = self.cores();
        let mut available = cores;
        let (tx, rx) = mpsc::channel::<WorkerMsg>();
        let mut workers: Vec<Worker> = Vec::new();
        let mut killing = false;

        loop {
            // Reap finished workers and their messages.
            while let Ok(msg) = rx.try_recv() {
                available += msg.cost;
                match msg.outcome {
                    WorkerOutcome::Done { resumed } => {
                        self.stats.completed += 1;
                        if resumed {
                            self.stats.resumed += 1;
                        }
                    }
                    WorkerOutcome::Interrupted => {
                        self.stats.interrupted += 1;
                        killing = true;
                    }
                    WorkerOutcome::Failed => self.stats.failed += 1,
                }
            }
            workers.retain(|w| !w.handle.is_finished());

            let served = self.stats.completed + self.stats.failed;
            let quota_reached = self
                .cfg
                .max_jobs
                .is_some_and(|m| served >= m as u64);

            if !killing && !quota_reached {
                self.schedule(&mut available, &mut workers, &tx)?;
            }

            let queue_empty = dir_is_empty(&self.cfg.dir.join("pending"));
            if workers.is_empty() {
                if killing || quota_reached {
                    break;
                }
                if self.cfg.drain && queue_empty {
                    break;
                }
            }
            thread::sleep(Duration::from_millis(self.cfg.poll_ms));
        }

        for w in workers {
            let _ = w.handle.join();
        }
        // A joined worker's message may still be in flight.
        while let Ok(msg) = rx.try_recv() {
            match msg.outcome {
                WorkerOutcome::Done { resumed } => {
                    self.stats.completed += 1;
                    if resumed {
                        self.stats.resumed += 1;
                    }
                }
                WorkerOutcome::Interrupted => self.stats.interrupted += 1,
                WorkerOutcome::Failed => self.stats.failed += 1,
            }
        }
        Ok(self.stats)
    }

    /// One scheduling sweep: claim every pending job that fits the
    /// remaining budget (cache hits complete inline and cost nothing).
    fn schedule(
        &mut self,
        available: &mut usize,
        workers: &mut Vec<Worker>,
        tx: &mpsc::Sender<WorkerMsg>,
    ) -> Result<(), ServiceError> {
        let pending_dir = self.cfg.dir.join("pending");
        let mut entries: Vec<PathBuf> = fs::read_dir(&pending_dir)?
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "job"))
            .collect();
        entries.sort(); // FIFO by key — deterministic claim order

        for path in entries {
            let quota_reached = self.cfg.max_jobs.is_some_and(|m| {
                self.stats.completed + self.stats.failed >= m as u64
            });
            if quota_reached {
                break;
            }
            let spec = match fs::read_to_string(&path)
                .map_err(ServiceError::from)
                .and_then(|t| JobSpec::decode(&t))
                .and_then(|s| s.validate().map(|()| s))
            {
                Ok(spec) => spec,
                Err(e) => {
                    self.fail(&path, &format!("{e}"))?;
                    continue;
                }
            };
            let key = spec.key()?;

            // Cache first: an identical completed job is served without
            // touching an engine.
            if let Some(result) = self.cache.get(key) {
                self.finish(key, &result, "cache")?;
                fs::remove_file(&path)?;
                self.store.clear(key)?;
                self.stats.completed += 1;
                self.stats.cache_hits += 1;
                continue;
            }

            let cost = match self.admission_cost(&spec) {
                Ok(cost) => cost,
                Err(e) => {
                    self.fail(&path, &format!("{e}"))?;
                    continue;
                }
            };
            if cost > *available {
                continue; // keep queued; a later sweep admits it
            }

            // Claim and spawn. A spool path without a final component
            // cannot be claimed by rename; fail it like any other
            // malformed submission instead of aborting the daemon.
            let Some(job_name) = path.file_name() else {
                self.fail(&path, "spool entry has no file name")?;
                continue;
            };
            let running = self.cfg.dir.join("running").join(job_name);
            fs::rename(&path, &running)?;
            *available -= cost;
            let run_cfg = RunConfig {
                threads: cost,
                checkpoint_every: self.cfg.checkpoint_every,
                interrupt_after: self.cfg.kill_after_checkpoints,
            };
            let ctx = WorkerCtx {
                dir: self.cfg.dir.clone(),
                store: self.store.clone(),
                cache: self.cache.clone(),
                running,
                spec,
                key,
                run_cfg,
                cost,
                tx: tx.clone(),
            };
            workers.push(Worker {
                handle: thread::spawn(move || ctx.run()),
            });
        }
        Ok(())
    }

    /// Record a completed result in `done/`.
    fn finish(&self, key: JobKey, result: &JobResult, source: &str) -> Result<(), ServiceError> {
        write_done(&self.cfg.dir, key, result, source)?;
        Ok(())
    }

    /// Move a spool entry into `failed/` with its reason.
    fn fail(&mut self, path: &Path, reason: &str) -> Result<(), ServiceError> {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unknown")
            .to_string();
        fs::write(
            self.cfg.dir.join("failed").join(format!("{stem}.err")),
            reason,
        )?;
        fs::remove_file(path)?;
        self.stats.failed += 1;
        Ok(())
    }
}

fn write_done(dir: &Path, key: JobKey, result: &JobResult, source: &str) -> std::io::Result<()> {
    let done = dir.join("done");
    fs::create_dir_all(&done)?;
    let path = done.join(format!("{}.result", key.hex()));
    let tmp = path.with_extension("result.tmp");
    fs::write(&tmp, result.encode())?;
    fs::rename(&tmp, path)?;
    fs::write(done.join(format!("{}.src", key.hex())), source)
}

fn dir_is_empty(dir: &Path) -> bool {
    fs::read_dir(dir).map_or(true, |mut d| d.next().is_none())
}

/// Everything a worker thread owns.
struct WorkerCtx {
    dir: PathBuf,
    store: CheckpointStore,
    cache: ResultCache,
    running: PathBuf,
    spec: JobSpec,
    key: JobKey,
    run_cfg: RunConfig,
    cost: usize,
    tx: mpsc::Sender<WorkerMsg>,
}

impl WorkerCtx {
    fn run(self) {
        let outcome = match run_job(&self.spec, &self.store, &self.run_cfg) {
            Ok(RunDisposition::Completed { result, resumed }) => {
                let ok = self.cache.put(self.key, &result).is_ok()
                    && write_done(&self.dir, self.key, &result, "engine").is_ok()
                    && fs::remove_file(&self.running).is_ok();
                if ok {
                    WorkerOutcome::Done { resumed }
                } else {
                    WorkerOutcome::Failed
                }
            }
            Ok(RunDisposition::Interrupted { .. }) => {
                // Leave checkpoints in place, requeue for a successor.
                // `running` always ends in a file name (the daemon built
                // it with `join(job_name)`); if that ever breaks, skip
                // the rename and let the orphan sweep requeue the job.
                if let Some(name) = self.running.file_name() {
                    let _ = fs::rename(&self.running, self.dir.join("pending").join(name));
                }
                WorkerOutcome::Interrupted
            }
            Err(e) => {
                let _ = fs::write(
                    self.dir
                        .join("failed")
                        .join(format!("{}.err", self.key.hex())),
                    format!("{e}"),
                );
                let _ = fs::remove_file(&self.running);
                WorkerOutcome::Failed
            }
        };
        let _ = self.tx.send(WorkerMsg {
            cost: self.cost,
            outcome,
        });
    }
}
