//! Durable checkpoint store: versioned snapshot blobs per job key.
//!
//! One directory per job (`<root>/<key>/`), one file per checkpoint
//! (`ckpt-<clock>.snap`, clock zero-padded to 32 hex digits so
//! lexicographic order is clock order). Writes are atomic (tmp + rename)
//! and the store keeps only the newest [`KEEP`](CheckpointStore::KEEP)
//! checkpoints per job — enough to survive a crash *during* a checkpoint
//! write without unbounded disk growth.

use crate::spec::JobKey;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// On-disk checkpoint store rooted at one directory.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    root: PathBuf,
}

impl CheckpointStore {
    /// Checkpoints retained per job (newest first).
    pub const KEEP: usize = 2;

    /// Open (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(CheckpointStore { root })
    }

    fn job_dir(&self, key: JobKey) -> PathBuf {
        self.root.join(key.hex())
    }

    fn ckpt_name(clock: u128) -> String {
        format!("ckpt-{clock:032x}.snap")
    }

    /// Persist a snapshot blob for `key` at interaction-clock `clock`,
    /// atomically, then prune old checkpoints beyond
    /// [`KEEP`](Self::KEEP).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save(&self, key: JobKey, clock: u128, blob: &[u8]) -> io::Result<()> {
        let dir = self.job_dir(key);
        fs::create_dir_all(&dir)?;
        let tmp = dir.join(format!("{}.tmp", Self::ckpt_name(clock)));
        fs::write(&tmp, blob)?;
        fs::rename(&tmp, dir.join(Self::ckpt_name(clock)))?;
        self.prune(&dir)
    }

    /// The newest checkpoint for `key`: `(clock, blob)`, or `None` when
    /// the job has none. Unreadable entries are skipped (a torn write is
    /// just an older resume point).
    pub fn latest(&self, key: JobKey) -> Option<(u128, Vec<u8>)> {
        let mut entries = self.list(&self.job_dir(key));
        while let Some((clock, path)) = entries.pop() {
            if let Ok(blob) = fs::read(&path) {
                return Some((clock, blob));
            }
        }
        None
    }

    /// Number of checkpoints currently stored for `key`.
    pub fn count(&self, key: JobKey) -> usize {
        self.list(&self.job_dir(key)).len()
    }

    /// Remove every checkpoint of `key` (job completed).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures other than the directory being
    /// absent already.
    pub fn clear(&self, key: JobKey) -> io::Result<()> {
        match fs::remove_dir_all(self.job_dir(key)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// All checkpoints under `dir`, sorted by clock ascending.
    fn list(&self, dir: &Path) -> Vec<(u128, PathBuf)> {
        let Ok(read) = fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut entries: Vec<(u128, PathBuf)> = read
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let clock = name
                    .strip_prefix("ckpt-")?
                    .strip_suffix(".snap")?
                    .trim_start_matches('0');
                let clock = if clock.is_empty() {
                    0
                } else {
                    u128::from_str_radix(clock, 16).ok()?
                };
                Some((clock, e.path()))
            })
            .collect();
        entries.sort_unstable();
        entries
    }

    fn prune(&self, dir: &Path) -> io::Result<()> {
        let entries = self.list(dir);
        if entries.len() > Self::KEEP {
            for (_, path) in &entries[..entries.len() - Self::KEEP] {
                fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!(
            "ssr-store-test-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).unwrap()
    }

    fn key(b: u8) -> JobKey {
        JobKey([b; 16])
    }

    #[test]
    fn latest_returns_newest_and_prunes_to_keep() {
        let store = temp_store("prune");
        let k = key(1);
        assert_eq!(store.latest(k), None);
        for clock in [10u128, 20, 30, 40] {
            store.save(k, clock, format!("blob-{clock}").as_bytes()).unwrap();
        }
        assert_eq!(store.count(k), CheckpointStore::KEEP);
        let (clock, blob) = store.latest(k).unwrap();
        assert_eq!(clock, 40);
        assert_eq!(blob, b"blob-40");
        store.clear(k).unwrap();
        assert_eq!(store.latest(k), None);
        store.clear(k).unwrap(); // idempotent
    }

    #[test]
    fn jobs_are_isolated_and_clocks_sort_numerically() {
        let store = temp_store("isolate");
        let (a, b) = (key(2), key(3));
        // A clock over u64 range must still sort above small ones.
        store.save(a, 5, b"small").unwrap();
        store.save(a, u64::MAX as u128 + 7, b"wide").unwrap();
        store.save(b, 9, b"other-job").unwrap();
        assert_eq!(store.latest(a).unwrap().0, u64::MAX as u128 + 7);
        assert_eq!(store.latest(b).unwrap().1, b"other-job");
        store.clear(a).unwrap();
        assert_eq!(store.latest(b).unwrap().0, 9);
    }
}
