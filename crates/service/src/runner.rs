//! One job execution with durable checkpoints and bit-identical resume.
//!
//! The core invariant: every engine's `run_until_silent` is the plain loop
//! *check silence → check cap → advance one quantum*, and
//! [`Engine::advance`](ssr_engine::Engine::advance) is exactly that
//! quantum. [`run_job`] replays that loop verbatim and interleaves
//! checkpoints *between* quanta; taking a snapshot consumes no RNG, so a
//! checkpointed run, a resumed run, and an uninterrupted
//! [`Scenario::run_one`](ssr_engine::Scenario::run_one) all follow the
//! same trajectory draw for draw — at any thread count and any checkpoint
//! cadence. (`advance_to` would *not* work here: the count engine clips
//! batch sizes near caps, which changes the trajectory.)
//!
//! Fault-plan jobs run through
//! [`run_outcome`](ssr_engine::Scenario::run_outcome) without mid-run
//! checkpoints — the fault executor's arrival state is not snapshotable —
//! but remain deterministic per spec, so a re-run after a kill reproduces
//! the identical [`JobResult`].

use crate::spec::{JobResult, JobSpec, JobStatusKind, OutcomeStats};
use crate::store::CheckpointStore;
use crate::ServiceError;
use ssr_engine::wire::SnapshotShape;
use ssr_engine::{Engine, EngineSnapshot, RunOutcome, Scenario};

/// Execution knobs of one [`run_job`] call — scheduling and durability
/// policy, none of which affects the trajectory.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Core budget for this job's engine (1 = single-threaded).
    pub threads: usize,
    /// Checkpoint roughly every this many interactions (clock-based, so
    /// cadence is identical across engines); 0 disables checkpointing.
    pub checkpoint_every: u128,
    /// Self-interrupt after this many checkpoints (simulated kill; used
    /// by the daemon's kill/resume drills and tests). `None` = run to
    /// completion.
    pub interrupt_after: Option<u32>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 1,
            checkpoint_every: 1 << 22,
            interrupt_after: None,
        }
    }
}

/// How a [`run_job`] call ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunDisposition {
    /// Ran (or resumed) to completion.
    Completed {
        /// The memoisable result.
        result: JobResult,
        /// Whether the run resumed from a stored checkpoint.
        resumed: bool,
    },
    /// Interrupted by [`RunConfig::interrupt_after`]; durable state is in
    /// the store and a later call resumes bit-identically.
    Interrupted {
        /// Checkpoints taken before interrupting (this call only).
        checkpoints: u32,
    },
}

/// Execute one job: restore from the newest checkpoint when one exists,
/// checkpoint periodically, memoise nothing (the caller owns the cache).
///
/// # Errors
///
/// [`ServiceError::Spec`]/[`ServiceError::Config`] for unrunnable specs,
/// [`ServiceError::Snapshot`] for undecodable checkpoints,
/// [`ServiceError::Io`] for store failures.
pub fn run_job(
    spec: &JobSpec,
    store: &CheckpointStore,
    cfg: &RunConfig,
) -> Result<RunDisposition, ServiceError> {
    spec.validate()?;
    let key = spec.key()?;
    let protocol = spec.make_protocol()?;
    let shape = SnapshotShape::of(protocol.as_ref());
    let scenario = Scenario::new(protocol.as_ref())
        .engine(spec.engine)
        .init(spec.init.to_init())
        .base_seed(spec.seed)
        .max_interactions(spec.max_interactions)
        .threads(cfg.threads.max(1));

    if let Some(plan) = spec.fault_plan() {
        // Fault executor state is not snapshotable: run in one piece.
        let outcome = scenario.fault_plan(plan).run_outcome(0);
        store.clear(key)?;
        return Ok(RunDisposition::Completed {
            result: outcome_to_result(outcome),
            resumed: false,
        });
    }

    let mut engine = scenario
        .build_engine(0)
        .map_err(|e| ServiceError::Config(e.to_string()))?;
    let mut resumed = false;
    if let Some((_, blob)) = store.latest(key) {
        let snapshot = EngineSnapshot::from_wire(&blob, shape)?;
        engine.restore(&snapshot);
        resumed = true;
    }

    let cap = if spec.max_interactions == u64::MAX {
        u128::MAX
    } else {
        spec.max_interactions as u128
    };
    let every = cfg.checkpoint_every;
    let mut next_checkpoint = engine.interactions_wide().saturating_add(every.max(1));
    let mut taken = 0u32;
    loop {
        if engine.is_silent() {
            let status = if engine.interactions_wide() <= cap {
                JobStatusKind::Silent
            } else {
                // The committed batch's null tail overshot the cap before
                // silence was observed — same verdict run_until_silent
                // gives.
                JobStatusKind::Timeout
            };
            store.clear(key)?;
            return Ok(RunDisposition::Completed {
                result: report_to_result(engine.as_ref(), status),
                resumed,
            });
        }
        if engine.interactions_wide() >= cap {
            store.clear(key)?;
            return Ok(RunDisposition::Completed {
                result: report_to_result(engine.as_ref(), JobStatusKind::Timeout),
                resumed,
            });
        }
        engine.advance();
        if every > 0 && engine.interactions_wide() >= next_checkpoint {
            let blob = engine.snapshot().to_wire(shape);
            store.save(key, engine.interactions_wide(), &blob)?;
            taken += 1;
            next_checkpoint = engine.interactions_wide().saturating_add(every);
            if cfg.interrupt_after == Some(taken) {
                return Ok(RunDisposition::Interrupted { checkpoints: taken });
            }
        }
    }
}

fn report_to_result(engine: &dyn Engine, status: JobStatusKind) -> JobResult {
    let report = engine.report();
    JobResult {
        status,
        interactions: report.interactions,
        interactions_wide: report.interactions_wide,
        productive: report.productive_interactions,
        parallel_time: report.parallel_time,
        outcome: None,
    }
}

fn outcome_to_result(outcome: RunOutcome) -> JobResult {
    JobResult {
        status: if outcome.silent {
            JobStatusKind::Silent
        } else {
            JobStatusKind::Timeout
        },
        interactions: outcome.report.interactions,
        interactions_wide: outcome.report.interactions_wide,
        productive: outcome.report.productive_interactions,
        parallel_time: outcome.report.parallel_time,
        outcome: Some(OutcomeStats {
            availability: outcome.availability,
            mean_k: outcome.mean_k,
            max_k: outcome.max_k,
            faults_injected: outcome.faults_injected,
            churn_events: outcome.churn_events,
            bursts: outcome
                .bursts
                .iter()
                .map(|b| (b.time, b.faults, b.k_after, b.recovery))
                .collect(),
        }),
    }
}
