//! End-to-end service tests: kill/resume bit-identity, cache-first
//! serving, daemon crash recovery.

use ssr_service::{
    daemon, run_job, submit_job, CheckpointStore, Daemon, DaemonConfig, JobInit, JobSpec,
    JobStatusKind, ResultCache, RunConfig, RunDisposition,
};
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssr-svc-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tree_job(n: usize, seed: u64) -> JobSpec {
    let mut spec = JobSpec::new("tree", n, seed);
    spec.init = JobInit::Stacked;
    spec
}

fn completed(disposition: RunDisposition) -> (ssr_service::JobResult, bool) {
    match disposition {
        RunDisposition::Completed { result, resumed } => (result, resumed),
        other => panic!("expected completion, got {other:?}"),
    }
}

/// The acceptance criterion: a count-engine run at n = 65536, checkpointed
/// mid-batch and killed, restored in a fresh process-simulated daemon,
/// must produce a final report bit-identical to an uninterrupted run — at
/// 1 and at 4 threads (and across the two, since trajectories are
/// thread-count-invariant).
#[test]
fn kill_resume_is_bit_identical_at_n_65536() {
    let spec = tree_job(65_536, 42);
    let mut reference = None;
    for threads in [1usize, 4] {
        let dir = temp_dir(&format!("killresume-t{threads}"));
        let store = CheckpointStore::open(dir.join("checkpoints")).unwrap();

        // Uninterrupted reference run (no checkpoint store contact).
        let uninterrupted = RunConfig {
            threads,
            checkpoint_every: 0,
            interrupt_after: None,
        };
        let (expected, resumed) = completed(run_job(&spec, &store, &uninterrupted).unwrap());
        assert!(!resumed);
        assert_eq!(expected.status, JobStatusKind::Silent);
        assert!(expected.interactions_wide > 0);

        // Same run, checkpointing every 100k interactions, killed after
        // the first checkpoint lands (mid-batch, far from silence).
        let interrupted = RunConfig {
            threads,
            checkpoint_every: 100_000,
            interrupt_after: Some(1),
        };
        match run_job(&spec, &store, &interrupted).unwrap() {
            RunDisposition::Interrupted { checkpoints } => assert_eq!(checkpoints, 1),
            other => panic!("expected interruption, got {other:?}"),
        }
        let key = spec.key().unwrap();
        let (ckpt_clock, _) = store.latest(key).expect("a durable checkpoint");
        assert!(
            ckpt_clock < expected.interactions_wide,
            "killed well before completion"
        );

        // Fresh-daemon restore: resume and finish.
        let resume = RunConfig {
            threads,
            checkpoint_every: 100_000,
            interrupt_after: None,
        };
        let (resumed_result, was_resumed) = completed(run_job(&spec, &store, &resume).unwrap());
        assert!(was_resumed);
        assert_eq!(resumed_result, expected, "threads = {threads}");
        assert_eq!(
            resumed_result.parallel_time.to_bits(),
            expected.parallel_time.to_bits()
        );
        assert_eq!(store.latest(key), None, "completion clears checkpoints");

        // Thread-count invariance of the result itself.
        if let Some(prev) = &reference {
            assert_eq!(prev, &expected, "1-thread vs {threads}-thread");
        }
        reference = Some(expected);
    }
}

/// Resuming must also commute with *repeated* kills: two interruptions
/// then a final resume still lands on the reference result.
#[test]
fn repeated_kills_still_converge_to_the_reference() {
    let spec = tree_job(16_384, 7);
    let dir = temp_dir("rekill");
    let store = CheckpointStore::open(dir.join("checkpoints")).unwrap();
    let reference = {
        let plain = CheckpointStore::open(dir.join("ref-checkpoints")).unwrap();
        completed(
            run_job(
                &spec,
                &plain,
                &RunConfig {
                    threads: 1,
                    checkpoint_every: 0,
                    interrupt_after: None,
                },
            )
            .unwrap(),
        )
        .0
    };
    let kill = RunConfig {
        threads: 1,
        checkpoint_every: 20_000,
        interrupt_after: Some(1),
    };
    for _ in 0..2 {
        match run_job(&spec, &store, &kill).unwrap() {
            RunDisposition::Interrupted { .. } => {}
            RunDisposition::Completed { .. } => panic!("killed too late; lower the cadence"),
        }
    }
    let finish = RunConfig {
        threads: 1,
        checkpoint_every: 20_000,
        interrupt_after: None,
    };
    assert_eq!(completed(run_job(&spec, &store, &finish).unwrap()).0, reference);
}

/// Fault-plan jobs have no mid-run checkpoints but must be deterministic
/// per spec: re-running after a (simulated) kill reproduces the result.
#[test]
fn fault_plan_jobs_rerun_deterministically() {
    let mut spec = tree_job(8_192, 3);
    spec.init = JobInit::Perfect;
    spec.bursts = vec![(1_000, 16)];
    spec.max_interactions = 500_000_000;
    let dir = temp_dir("faultjob");
    let store = CheckpointStore::open(dir.join("checkpoints")).unwrap();
    let cfg = RunConfig::default();
    let (a, _) = completed(run_job(&spec, &store, &cfg).unwrap());
    let (b, _) = completed(run_job(&spec, &store, &cfg).unwrap());
    assert_eq!(a, b);
    let outcome = a.outcome.expect("fault jobs carry outcome stats");
    assert_eq!(outcome.bursts.len(), 1);
    assert_eq!(outcome.faults_injected, 16);
}

/// Daemon end-to-end: submit → drain → done (engine); resubmit → done via
/// cache hit with zero engine interactions executed.
#[test]
fn daemon_serves_resubmissions_from_cache() {
    let dir = temp_dir("daemon-cache");
    let spec = tree_job(4_096, 11);
    let key = submit_job(&dir, &spec).unwrap();
    assert_eq!(daemon::job_status(&dir, key), daemon::JobStatus::Pending);

    let stats = Daemon::new(DaemonConfig::new(&dir)).unwrap().run().unwrap();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.failed, 0);
    assert_eq!(
        daemon::job_status(&dir, key),
        daemon::JobStatus::Done {
            source: "engine".into()
        }
    );
    let first = daemon::job_result(&dir, key).unwrap();

    // Resubmit the identical job (different requested thread budget —
    // not part of the identity).
    let mut again = spec.clone();
    again.threads = 4;
    let key2 = submit_job(&dir, &again).unwrap();
    assert_eq!(key2, key);
    let stats = Daemon::new(DaemonConfig::new(&dir)).unwrap().run().unwrap();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cache_hits, 1, "second submission must hit the cache");
    assert_eq!(
        daemon::job_status(&dir, key),
        daemon::JobStatus::Done {
            source: "cache".into()
        }
    );
    assert_eq!(daemon::job_result(&dir, key).unwrap(), first);
}

/// Daemon kill drill: a checkpointed job interrupted mid-run is requeued;
/// a successor daemon resumes it from the durable checkpoint and the
/// result matches an uninterrupted daemon's.
#[test]
fn daemon_kill_and_successor_resume() {
    // Uninterrupted reference through a separate spool.
    let ref_dir = temp_dir("daemon-ref");
    let spec = tree_job(65_536, 42);
    let key = submit_job(&ref_dir, &spec).unwrap();
    let mut cfg = DaemonConfig::new(&ref_dir);
    cfg.checkpoint_every = 100_000;
    Daemon::new(cfg).unwrap().run().unwrap();
    let reference = daemon::job_result(&ref_dir, key).unwrap();

    // Killed daemon: worker interrupts after the first checkpoint.
    let dir = temp_dir("daemon-kill");
    submit_job(&dir, &spec).unwrap();
    let mut cfg = DaemonConfig::new(&dir);
    cfg.checkpoint_every = 100_000;
    cfg.kill_after_checkpoints = Some(1);
    let stats = Daemon::new(cfg).unwrap().run().unwrap();
    assert_eq!(stats.interrupted, 1);
    assert_eq!(stats.completed, 0);
    assert_eq!(daemon::job_status(&dir, key), daemon::JobStatus::Pending);

    // Successor daemon: resumes from the checkpoint and completes.
    let mut cfg = DaemonConfig::new(&dir);
    cfg.checkpoint_every = 100_000;
    let stats = Daemon::new(cfg).unwrap().run().unwrap();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.resumed, 1, "must resume, not restart");
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(daemon::job_result(&dir, key).unwrap(), reference);
}

/// A daemon that dies between claiming and finishing (job left in
/// `running/`) must requeue it on the next start.
#[test]
fn daemon_startup_recovers_orphaned_running_jobs() {
    let dir = temp_dir("daemon-orphan");
    let spec = tree_job(4_096, 5);
    let key = submit_job(&dir, &spec).unwrap();
    // Simulate a crash post-claim: move the spool entry by hand.
    std::fs::create_dir_all(dir.join("running")).unwrap();
    std::fs::rename(
        dir.join("pending").join(format!("{}.job", key.hex())),
        dir.join("running").join(format!("{}.job", key.hex())),
    )
    .unwrap();
    assert_eq!(daemon::job_status(&dir, key), daemon::JobStatus::Running);

    let daemon = Daemon::new(DaemonConfig::new(&dir)).unwrap();
    let stats = daemon_run(daemon);
    assert_eq!(stats.recovered, 1);
    assert_eq!(stats.completed, 1);
    assert!(matches!(
        daemon::job_status(&dir, key),
        daemon::JobStatus::Done { .. }
    ));
}

fn daemon_run(mut d: Daemon) -> ssr_service::DaemonStats {
    d.run().unwrap()
}

/// Malformed spool entries fail loudly into `failed/` without wedging the
/// queue.
#[test]
fn daemon_quarantines_bad_specs() {
    let dir = temp_dir("daemon-bad");
    std::fs::create_dir_all(dir.join("pending")).unwrap();
    std::fs::write(dir.join("pending").join("deadbeef.job"), "not a spec").unwrap();
    let good = tree_job(4_096, 9);
    let key = submit_job(&dir, &good).unwrap();

    let stats = Daemon::new(DaemonConfig::new(&dir)).unwrap().run().unwrap();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);
    assert!(dir.join("failed").join("deadbeef.err").exists());
    assert!(matches!(
        daemon::job_status(&dir, key),
        daemon::JobStatus::Done { .. }
    ));
}

/// The cache key guards against engine-kind aliasing: `auto` at
/// n ≥ 4096 *is* `count`, so the explicit spec hits the auto spec's
/// cached result — but `jump` is a different stepping discipline and must
/// not.
#[test]
fn cache_respects_engine_identity() {
    let dir = temp_dir("engine-identity");
    let auto = tree_job(4_096, 13);
    let mut count = auto.clone();
    count.engine = ssr_engine::EngineKind::Count;
    let mut jump = auto.clone();
    jump.engine = ssr_engine::EngineKind::Jump;

    assert_eq!(auto.key().unwrap(), count.key().unwrap());
    assert_ne!(auto.key().unwrap(), jump.key().unwrap());

    submit_job(&dir, &auto).unwrap();
    Daemon::new(DaemonConfig::new(&dir)).unwrap().run().unwrap();
    submit_job(&dir, &count).unwrap();
    submit_job(&dir, &jump).unwrap();
    let stats = Daemon::new(DaemonConfig::new(&dir)).unwrap().run().unwrap();
    assert_eq!(stats.cache_hits, 1, "count aliases auto; jump does not");
    assert_eq!(stats.completed, 2);
}

/// Restoring a checkpoint into a *different* job must be impossible: the
/// store is keyed, and even a hand-moved blob is rejected by the wire
/// layer's schema-hash check.
#[test]
fn checkpoints_do_not_cross_jobs() {
    let dir = temp_dir("cross-job");
    let store = CheckpointStore::open(dir.join("checkpoints")).unwrap();
    let spec_a = tree_job(16_384, 1);
    let kill = RunConfig {
        threads: 1,
        checkpoint_every: 20_000,
        interrupt_after: Some(1),
    };
    match run_job(&spec_a, &store, &kill).unwrap() {
        RunDisposition::Interrupted { .. } => {}
        other => panic!("expected interruption, got {other:?}"),
    }
    // Graft A's checkpoint under B's key (B: different n ⇒ different
    // schema hash).
    let spec_b = tree_job(8_192, 1);
    let (clock, blob) = store.latest(spec_a.key().unwrap()).unwrap();
    store.save(spec_b.key().unwrap(), clock, &blob).unwrap();
    let finish = RunConfig {
        threads: 1,
        checkpoint_every: 0,
        interrupt_after: None,
    };
    match run_job(&spec_b, &store, &finish) {
        Err(ssr_service::ServiceError::Snapshot(_)) => {}
        other => panic!("grafted checkpoint must be rejected, got {other:?}"),
    }
}

/// The result cache survives corruption: a damaged entry is a miss, and
/// the daemon recomputes instead of serving garbage.
#[test]
fn corrupt_cache_entry_forces_recompute() {
    let dir = temp_dir("corrupt-cache");
    let spec = tree_job(4_096, 21);
    let key = submit_job(&dir, &spec).unwrap();
    Daemon::new(DaemonConfig::new(&dir)).unwrap().run().unwrap();
    let reference = daemon::job_result(&dir, key).unwrap();

    std::fs::write(
        dir.join("cache").join(format!("{}.result", key.hex())),
        "garbage",
    )
    .unwrap();
    submit_job(&dir, &spec).unwrap();
    let stats = Daemon::new(DaemonConfig::new(&dir)).unwrap().run().unwrap();
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.completed, 1);
    assert_eq!(daemon::job_result(&dir, key).unwrap(), reference);
}

/// A timed-out job is still a deterministic, memoisable result.
#[test]
fn timeouts_are_results_and_cacheable() {
    let dir = temp_dir("timeout");
    let mut spec = tree_job(16_384, 2);
    spec.max_interactions = 50_000; // far below stabilisation
    let key = submit_job(&dir, &spec).unwrap();
    let stats = Daemon::new(DaemonConfig::new(&dir)).unwrap().run().unwrap();
    assert_eq!(stats.completed, 1);
    let result = daemon::job_result(&dir, key).unwrap();
    assert_eq!(result.status, JobStatusKind::Timeout);

    submit_job(&dir, &spec).unwrap();
    let stats = Daemon::new(DaemonConfig::new(&dir)).unwrap().run().unwrap();
    assert_eq!(stats.cache_hits, 1);
}

/// ResultCache is shared daemon infrastructure but also works standalone
/// (the bench uses it this way).
#[test]
fn standalone_cache_round_trip() {
    let dir = temp_dir("standalone-cache");
    let cache = ResultCache::open(&dir).unwrap();
    let spec = tree_job(4_096, 1);
    let key = spec.key().unwrap();
    assert!(cache.get(key).is_none());
    let result = ssr_service::JobResult {
        status: JobStatusKind::Silent,
        interactions: 10,
        interactions_wide: 10,
        productive: 5,
        parallel_time: 10.0 / 4096.0,
        outcome: None,
    };
    cache.put(key, &result).unwrap();
    assert_eq!(cache.get(key), Some(result));
}
