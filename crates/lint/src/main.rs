//! `cargo run -p ssr-lint [-- --format json] [--root PATH]`
//!
//! Exit codes: `0` clean (no unwaived violations — reasonless waivers
//! count as unwaived `W001`s), `1` violations found, `2` usage or I/O
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    let mut s = String::from(
        "ssr-lint: workspace static analysis (determinism / arithmetic width / panic discipline)\n\n\
         USAGE: cargo run -p ssr-lint -- [--format human|json] [--root PATH] [--list-rules]\n\n\
         RULES:\n",
    );
    for r in ssr_lint::rules::RULES {
        s.push_str(&format!("  {}  {}\n", r.id, r.summary));
    }
    s.push_str("  W001  every lint:allow(...) waiver must carry a `: reason`\n");
    s
}

fn main() -> ExitCode {
    let mut format = "human".to_string();
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "human" || f == "json" => format = f,
                _ => {
                    eprintln!("--format takes `human` or `json`\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root takes a path\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--list-rules" | "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("could not locate the workspace root (no Cargo.toml with [workspace] above the cwd); pass --root");
            return ExitCode::from(2);
        }
    };

    let report = match ssr_lint::lint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ssr-lint: I/O error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from the cwd to the first `Cargo.toml` declaring
/// `[workspace]`. `cargo run -p ssr-lint` runs from anywhere inside
/// the repo without flags.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
