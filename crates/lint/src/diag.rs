//! Diagnostics: the violation record, waiver resolution, and the two
//! output formats (human `file:line:col` lines and machine JSON).

use std::fmt::Write as _;

/// One rule hit at a source position. `waived` is filled in by waiver
/// resolution after all rules ran.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id, e.g. `D001`.
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// One-line explanation with the offending identifier inlined.
    pub message: String,
    /// The waiver reason when a `lint:allow` covers this hit.
    pub waived: Option<String>,
}

/// A parsed `// lint:allow(rule[, rule…]): reason` comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule ids this waiver covers; `*` covers every rule except W001.
    pub rules: Vec<String>,
    pub file: String,
    /// Line of the comment itself.
    pub line: u32,
    /// First following line holding code — a standalone waiver comment
    /// covers that line; a trailing one covers its own.
    pub covers_line: u32,
    /// Mandatory justification (empty ⇒ a W001 violation is emitted).
    pub reason: String,
    /// Set during resolution; an unused waiver is reported (non-fatal).
    pub used: bool,
}

impl Waiver {
    /// Whether this waiver covers `rule` at `line` in the same file.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        if rule == crate::rules::W001 {
            return false; // a missing reason can't waive itself
        }
        (line == self.line || line == self.covers_line)
            && self.rules.iter().any(|r| r == rule || r == "*")
    }
}

/// Full result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub waivers: Vec<Waiver>,
    /// Number of files actually scanned (after exclusions).
    pub files_scanned: usize,
}

impl Report {
    /// Unwaived violations — what gates CI.
    pub fn unwaived(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.waived.is_none())
    }

    /// Exit status the CLI should use: 0 only when nothing unwaived
    /// remains (reasonless waivers surface as unwaived W001 hits).
    pub fn is_clean(&self) -> bool {
        self.unwaived().next().is_none()
    }

    /// Human-readable rendering: one `file:line:col [rule] message` per
    /// violation, waived hits listed separately, then a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in self.unwaived() {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                v.file, v.line, v.col, v.rule, v.message
            );
        }
        let waived: Vec<&Violation> = self.violations.iter().filter(|v| v.waived.is_some()).collect();
        if !waived.is_empty() {
            let _ = writeln!(out, "\nwaived ({}):", waived.len());
            for v in &waived {
                let _ = writeln!(
                    out,
                    "  {}:{}:{}: [{}] {} — waived: {}",
                    v.file,
                    v.line,
                    v.col,
                    v.rule,
                    v.message,
                    v.waived.as_deref().unwrap_or("")
                );
            }
        }
        let unused: Vec<&Waiver> = self.waivers.iter().filter(|w| !w.used && !w.reason.is_empty()).collect();
        if !unused.is_empty() {
            let _ = writeln!(out, "\nunused waivers ({}) — consider removing:", unused.len());
            for w in &unused {
                let _ = writeln!(out, "  {}:{}: lint:allow({})", w.file, w.line, w.rules.join(","));
            }
        }
        let n_unwaived = self.unwaived().count();
        let _ = writeln!(
            out,
            "\nssr-lint: {} file(s) scanned, {} violation(s) ({} waived), {} unwaived",
            self.files_scanned,
            self.violations.len(),
            waived.len(),
            n_unwaived
        );
        out
    }

    /// Machine-readable rendering: a single stable JSON object.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        let mut first = true;
        for v in &self.violations {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"waived\": {}}}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                v.col,
                json_str(&v.message),
                match &v.waived {
                    Some(r) => json_str(r),
                    None => "null".to_string(),
                }
            );
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"unused_waivers\": [");
        let mut first = true;
        for w in self.waivers.iter().filter(|w| !w.used && !w.reason.is_empty()) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"rules\": {}}}",
                json_str(&w.file),
                w.line,
                json_str(&w.rules.join(","))
            );
        }
        if !first {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"summary\": {{\"files_scanned\": {}, \"violations\": {}, \"waived\": {}, \"unwaived\": {}}}\n}}",
            self.files_scanned,
            self.violations.len(),
            self.violations.iter().filter(|v| v.waived.is_some()).count(),
            self.unwaived().count()
        );
        out.push('\n');
        out
    }
}

/// Escape a string as a JSON string literal (hand-rolled; the workspace
/// vendors no serde by policy).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_renders_both_formats() {
        let report = Report {
            violations: vec![
                Violation {
                    rule: "D001",
                    file: "crates/engine/src/x.rs".into(),
                    line: 10,
                    col: 5,
                    message: "ad-hoc seed arithmetic on `seed`".into(),
                    waived: None,
                },
                Violation {
                    rule: "A001",
                    file: "crates/engine/src/y.rs".into(),
                    line: 3,
                    col: 1,
                    message: "narrowing cast".into(),
                    waived: Some("saturating boundary".into()),
                },
            ],
            waivers: vec![],
            files_scanned: 2,
        };
        let human = report.render_human();
        assert!(human.contains("crates/engine/src/x.rs:10:5: [D001]"));
        assert!(human.contains("waived: saturating boundary"));
        assert!(human.contains("1 unwaived"));
        let json = report.render_json();
        assert!(json.contains("\"rule\": \"D001\""));
        assert!(json.contains("\"waived\": \"saturating boundary\""));
        assert!(json.contains("\"unwaived\": 1"));
        assert!(!report.is_clean());
    }
}
