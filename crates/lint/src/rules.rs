//! The rule set. Every rule is a pure function over one file's token
//! stream (comments and `#[cfg(test)]` / `#[test]` spans already
//! masked) plus its workspace-relative path.
//!
//! Rule ids are stable and documented in the README ("Static
//! analysis"). Adding a rule = adding a `Rule` entry to [`RULES`] with
//! an `applies` path predicate and a `check` body, plus a fixture pair
//! under `crates/lint/tests/fixtures/`.
//!
//! # Why token-level?
//!
//! These lints encode *repo conventions*, not type-system facts: "seeds
//! are only combined through `derive_seed`", "the interaction clock is
//! only ever widened or saturated", "the daemon never unwraps". A
//! conservative token walk with a lookback window catches every past
//! real bug in this family (silent u64 clock wrap, zero-leaf descent,
//! daemon death on a malformed spool file) at the cost of occasional
//! false positives — which the mandatory-reason waiver syntax turns
//! into documentation.

use crate::lexer::{Token, TokenKind};
use crate::diag::Violation;

/// Rule id for "waiver lacks a reason" (synthesised by the waiver
/// parser, not by a `Rule`; it can never be waived).
pub const W001: &str = "W001";

/// A single lint rule.
pub struct Rule {
    /// Stable id (`D001`, `A002`, …).
    pub id: &'static str,
    /// One-line summary shown by `--list-rules` and the README.
    pub summary: &'static str,
    /// Path predicate over the `/`-separated workspace-relative path.
    pub applies: fn(&str) -> bool,
    /// The check itself.
    pub check: fn(&RuleCtx<'_>) -> Vec<Violation>,
}

/// Per-file context handed to rules.
pub struct RuleCtx<'a> {
    /// Workspace-relative `/`-separated path.
    pub path: &'a str,
    /// Token stream of the whole file, comments included.
    pub tokens: &'a [Token],
    /// `mask[i]` is true when token `i` sits inside `#[cfg(test)]` /
    /// `#[test]` code and must be ignored.
    pub mask: &'a [bool],
}

impl RuleCtx<'_> {
    /// Iterate over checkable (non-comment, non-test) token indices.
    fn code_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.tokens.len()).filter(|&i| !self.mask[i] && !self.tokens[i].is_comment())
    }

    /// Previous / next non-comment token index, still honouring order
    /// (comments may sit between any two tokens).
    fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.tokens[j].is_comment())
    }

    fn next_code(&self, i: usize) -> Option<usize> {
        ((i + 1)..self.tokens.len()).find(|&j| !self.tokens[j].is_comment())
    }

    fn violation(&self, rule: &'static str, i: usize, message: String) -> Violation {
        let t = &self.tokens[i];
        Violation {
            rule,
            file: self.path.to_string(),
            line: t.line,
            col: t.col,
            message,
            waived: None,
        }
    }
}

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

/// Binary arithmetic operators whose appearance next to a seed
/// identifier marks ad-hoc derivation. `|` and `&` are deliberately
/// absent: closure parameter lists (`|seed| …`) and borrows would
/// swamp the signal, and no past bug mixed seeds bitwise without `^`.
const SEED_ARITH_OPS: &[&str] = &["+", "-", "*", "/", "%", "^", "<<", ">>", "+=", "-=", "*=", "^="];

/// Method names that perform arithmetic when called *on* a seed.
fn is_arith_method(name: &str) -> bool {
    name.starts_with("wrapping_")
        || name.starts_with("checked_")
        || name.starts_with("saturating_")
        || name.starts_with("overflowing_")
        || name.starts_with("rotate_")
        || name == "pow"
        || name == "swap_bytes"
}

/// Identifier looks like a seed value (not the derivation helpers
/// themselves — call sites are skipped by the "followed by `(`" test).
fn is_seed_ident(text: &str) -> bool {
    text.to_ascii_lowercase().contains("seed")
}

/// `word` occurs in snake_case `ident` on `_` boundaries
/// (`max_interactions` contains `interactions`; `InteractionSchema`
/// does not — no boundary after the `s`).
fn contains_word(ident: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = ident[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || ident.as_bytes()[start - 1] == b'_';
        let right_ok = end == ident.len() || ident.as_bytes()[end] == b'_';
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Identifier names a wide accumulator: the interaction clock or a
/// weight total. These are the quantities that silently wrapped or
/// truncated in past PRs.
fn is_accumulator_ident(text: &str) -> bool {
    let t = text.to_ascii_lowercase();
    ["interactions", "ordered_pairs", "total_weight", "weight_total", "clock"]
        .iter()
        .any(|w| contains_word(&t, w))
}

/// Identifier names an agent/state count.
fn is_count_ident(text: &str) -> bool {
    let t = text.to_ascii_lowercase();
    t == "count" || t == "counts" || t.ends_with("_count") || t.ends_with("_counts") || t.starts_with("count_")
}

fn in_dir(path: &str, dir: &str) -> bool {
    path.starts_with(dir)
}

/// Trajectory code: the engines and the protocol zoo.
fn trajectory_scope(path: &str) -> bool {
    in_dir(path, "crates/engine/src/") || in_dir(path, "crates/core/src/")
}

/// Everything that must be bit-deterministic per seed (trajectory code
/// plus the seed-handling surfaces that feed it).
fn determinism_scope(path: &str) -> bool {
    trajectory_scope(path)
        || in_dir(path, "crates/cli/src/")
        || in_dir(path, "crates/service/src/")
        || in_dir(path, "crates/analysis/src/")
        || in_dir(path, "crates/topology/src/")
        || in_dir(path, "src/")
        || in_dir(path, "examples/")
}

/// Crates allowed to read the wall clock (timing/benchmark paths).
fn wall_clock_allowed(path: &str) -> bool {
    in_dir(path, "crates/bench/") || in_dir(path, "crates/cli/") || in_dir(path, "crates/service/")
}

// ---------------------------------------------------------------------------
// D-series: determinism
// ---------------------------------------------------------------------------

/// D001 — ad-hoc seed arithmetic. Any arithmetic operator or
/// arithmetic method applied directly to an identifier containing
/// `seed` is flagged: streams must be derived with
/// `rng::derive_seed(base, index)` (or fed verbatim to a seeded
/// constructor). Tagging an *already derived* seed
/// (`derive_seed(b, i) ^ STREAM_TAG`) is allowed — the operand there is
/// a call result, not a raw seed identifier.
fn check_d001(ctx: &RuleCtx<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in ctx.code_indices() {
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Ident || !is_seed_ident(&t.text) {
            continue;
        }
        // A call (`derive_seed(…)`, `.base_seed(…)`, `seed_from_u64(…)`)
        // is the sanctioned surface, not an arithmetic use.
        if ctx.next_code(i).is_some_and(|j| ctx.tokens[j].text == "(") {
            continue;
        }
        // `seed <op> …`  or  `seed.<arith_method>(…)`
        if let Some(j) = ctx.next_code(i) {
            let nt = &ctx.tokens[j];
            if nt.kind == TokenKind::Punct && SEED_ARITH_OPS.contains(&nt.text.as_str()) {
                // `&` / `|` / `*` / `-` can be unary or type syntax when
                // *preceding* an expression; here they follow the seed
                // identifier, where they are binary — except a method
                // chain like `seed .wrapping_add`, handled below, and
                // `seed >` generics/comparison which we never flag.
                out.push(ctx.violation(
                    "D001",
                    i,
                    format!(
                        "ad-hoc seed arithmetic: `{} {}` — derive streams with \
                         `rng::derive_seed(base, index)` or pass the seed verbatim \
                         to a seeded constructor",
                        t.text, nt.text
                    ),
                ));
                continue;
            }
            if nt.text == "." {
                if let Some(k) = ctx.next_code(j) {
                    let mt = &ctx.tokens[k];
                    if mt.kind == TokenKind::Ident && is_arith_method(&mt.text) {
                        out.push(ctx.violation(
                            "D001",
                            i,
                            format!(
                                "ad-hoc seed arithmetic: `{}.{}(…)` — derive streams \
                                 with `rng::derive_seed(base, index)`",
                                t.text, mt.text
                            ),
                        ));
                        continue;
                    }
                }
            }
        }
        // `… <op> seed` — only when the operator is clearly binary
        // (preceded by a value: ident/number/closing bracket).
        if let Some(j) = ctx.prev_code(i) {
            let pt = &ctx.tokens[j];
            if pt.kind == TokenKind::Punct && SEED_ARITH_OPS.contains(&pt.text.as_str()) {
                if let Some(k) = ctx.prev_code(j) {
                    let ppt = &ctx.tokens[k];
                    let binary = matches!(ppt.kind, TokenKind::Ident | TokenKind::Num)
                        || ppt.text == ")"
                        || ppt.text == "]";
                    // `&mut seed`, `*seed`, `-1 => seed` etc. are unary.
                    if binary && !matches!(ppt.text.as_str(), "mut" | "as" | "return" | "in" | "match") {
                        out.push(ctx.violation(
                            "D001",
                            i,
                            format!(
                                "ad-hoc seed arithmetic: `… {} {}` — derive streams with \
                                 `rng::derive_seed(base, index)`",
                                pt.text, t.text
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// D002 — hash collections in trajectory code. `HashMap`/`HashSet`
/// iteration order is nondeterministic (SipHash keys differ per
/// process unless pinned), so their appearance anywhere in engine/core
/// non-test code is flagged. Membership-only uses (insert/contains,
/// never iterated) are legitimate — waive them with a reason saying so.
fn check_d002(ctx: &RuleCtx<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in ctx.code_indices() {
        let t = &ctx.tokens[i];
        if is_ident(t, "HashMap") || is_ident(t, "HashSet") {
            out.push(ctx.violation(
                "D002",
                i,
                format!(
                    "`{}` in trajectory code: iteration order is nondeterministic — \
                     use `BTreeMap`/`BTreeSet`/`Vec`, or waive if the use is \
                     membership-only and never iterated",
                    t.text
                ),
            ));
        }
    }
    out
}

/// D003 — wall-clock reads outside timing paths. `Instant`/`SystemTime`
/// anywhere but `crates/bench`, `crates/cli`, `crates/service` makes
/// trajectory code time-dependent.
fn check_d003(ctx: &RuleCtx<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in ctx.code_indices() {
        let t = &ctx.tokens[i];
        if is_ident(t, "Instant") || is_ident(t, "SystemTime") {
            out.push(ctx.violation(
                "D003",
                i,
                format!(
                    "wall-clock type `{}` outside bench/cli/service timing paths — \
                     simulation code must be a pure function of (spec, seed)",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A-series: arithmetic width
// ---------------------------------------------------------------------------

const NARROW_TYPES: &[&str] = &["u64", "u32", "u16", "u8", "usize", "i64", "i32"];

/// How many tokens before an `as` we search for an accumulator
/// identifier. Statements here are short; 16 tokens spans the longest
/// real accessor chain (`self.interactions.min(u64::MAX as u128) as u64`).
const CAST_LOOKBACK: usize = 16;

/// A001 — narrowing cast on a wide accumulator. `<clock/weight expr> as
/// u64/u32/usize/…` silently truncates past the type boundary (the
/// exact bug class fixed after n ≥ 2³¹ runs). Saturating API-boundary
/// accessors are fine — waive them, naming the wide-accessor
/// alternative in the reason.
fn check_a001(ctx: &RuleCtx<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in ctx.code_indices() {
        if !is_ident(&ctx.tokens[i], "as") {
            continue;
        }
        let Some(j) = ctx.next_code(i) else { continue };
        let ty = &ctx.tokens[j];
        if ty.kind != TokenKind::Ident || !NARROW_TYPES.contains(&ty.text.as_str()) {
            continue;
        }
        // Look back (bounded, stopping at statement boundaries) for an
        // accumulator identifier feeding this cast.
        let mut k = i;
        let mut steps = 0;
        let mut culprit: Option<&Token> = None;
        while let Some(p) = ctx.prev_code(k) {
            let pt = &ctx.tokens[p];
            if matches!(pt.text.as_str(), ";" | "{" | "}") || steps >= CAST_LOOKBACK {
                break;
            }
            if pt.kind == TokenKind::Ident && is_accumulator_ident(&pt.text) {
                culprit = Some(pt);
                break;
            }
            k = p;
            steps += 1;
        }
        if let Some(c) = culprit {
            out.push(ctx.violation(
                "A001",
                i,
                format!(
                    "narrowing cast `as {}` on wide accumulator `{}` — widen operands \
                     first and keep the full-width value (`interactions_wide()` \
                     pattern); if this is a documented saturating API boundary, waive it",
                    ty.text, c.text
                ),
            ));
        }
    }
    out
}

/// A002 — bare `+`/`+=`/`-`/`-=` on a wide accumulator. The interaction
/// clock and weight totals must go through
/// `saturating_add`/`checked_add`-style helpers with pre-widened
/// operands (a bare u64 `+= 1` near `u64::MAX` wraps in release and
/// panics in debug — the PR 6 bug).
fn check_a002(ctx: &RuleCtx<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in ctx.code_indices() {
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Ident || !is_accumulator_ident(&t.text) {
            continue;
        }
        let Some(j) = ctx.next_code(i) else { continue };
        let nt = &ctx.tokens[j];
        if nt.kind == TokenKind::Punct && matches!(nt.text.as_str(), "+" | "+=" | "-" | "-=") {
            out.push(ctx.violation(
                "A002",
                i,
                format!(
                    "bare `{}` on wide accumulator `{}` — use \
                     `saturating_add`/`checked_*` helpers with widened operands",
                    nt.text, t.text
                ),
            ));
        }
    }
    out
}

/// A003 — unchecked subtraction on a count field. `counts[s] -= 1` on
/// an unsigned count wraps silently in release when the invariant that
/// the state is occupied is ever violated (the `update_count` bug) —
/// use `checked_sub` with an explicit panic message, or
/// `checked_add_signed`.
fn check_a003(ctx: &RuleCtx<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in ctx.code_indices() {
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Ident || !is_count_ident(&t.text) {
            continue;
        }
        // Skip an optional index expression: counts [ … ] -= 1
        let mut j = match ctx.next_code(i) {
            Some(j) => j,
            None => continue,
        };
        if ctx.tokens[j].text == "[" {
            let mut depth = 1;
            let mut k = j;
            loop {
                k = match ctx.next_code(k) {
                    Some(k) => k,
                    None => break,
                };
                match ctx.tokens[k].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            j = match ctx.next_code(k) {
                Some(j) => j,
                None => continue,
            };
        }
        let nt = &ctx.tokens[j];
        if nt.kind == TokenKind::Punct && nt.text == "-=" {
            out.push(ctx.violation(
                "A003",
                i,
                format!(
                    "unchecked `-=` on count `{}` — unsigned underflow wraps silently \
                     in release; use `checked_sub(…).expect(…)` or `checked_add_signed`",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// P-series: panic discipline
// ---------------------------------------------------------------------------

/// P001 — `unwrap()`/`expect()` in service non-test code. The daemon's
/// contract is degrade-don't-die: a malformed spool file, a missing
/// checkpoint, or a poisoned cache entry becomes a typed error or a
/// logged skip (crash-orphan-requeue), never a process abort.
fn check_p001(ctx: &RuleCtx<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in ctx.code_indices() {
        let t = &ctx.tokens[i];
        if !(is_ident(t, "unwrap") || is_ident(t, "expect")) {
            continue;
        }
        let preceded_by_dot = ctx.prev_code(i).is_some_and(|j| ctx.tokens[j].text == ".");
        let followed_by_paren = ctx.next_code(i).is_some_and(|j| ctx.tokens[j].text == "(");
        if preceded_by_dot && followed_by_paren {
            out.push(ctx.violation(
                "P001",
                i,
                format!(
                    "`.{}()` in service code — the daemon must degrade, not die: \
                     return a typed `ServiceError` or log-and-skip \
                     (crash-orphan-requeue)",
                    t.text
                ),
            ));
        }
    }
    out
}

/// The registry, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D001",
        summary: "seeds combine only through rng::derive_seed / seeded constructors (no ad-hoc seed arithmetic)",
        applies: determinism_scope,
        check: check_d001,
    },
    Rule {
        id: "D002",
        summary: "no HashMap/HashSet in engine/core trajectory code (nondeterministic iteration order)",
        applies: trajectory_scope,
        check: check_d002,
    },
    Rule {
        id: "D003",
        summary: "no Instant/SystemTime outside bench/cli/service timing paths",
        applies: |p| !wall_clock_allowed(p),
        check: check_d003,
    },
    Rule {
        id: "A001",
        summary: "no narrowing casts on interaction-clock / weight-total expressions in the engine",
        applies: |p| in_dir(p, "crates/engine/src/"),
        check: check_a001,
    },
    Rule {
        id: "A002",
        summary: "no bare +/- arithmetic on interaction-clock / weight-total identifiers in the engine",
        applies: |p| in_dir(p, "crates/engine/src/"),
        check: check_a002,
    },
    Rule {
        id: "A003",
        summary: "no unchecked -= on count fields in the engine",
        applies: |p| in_dir(p, "crates/engine/src/"),
        check: check_a003,
    },
    Rule {
        id: "P001",
        summary: "no unwrap()/expect() in service non-test code (degrade, don't die)",
        applies: |p| in_dir(p, "crates/service/src/"),
        check: check_p001,
    },
];
