//! A small, total Rust lexer: good enough to walk every token of this
//! workspace, simple enough to audit in one sitting.
//!
//! The lexer is **total**: it never panics and never rejects input — any
//! byte string (decoded lossily to UTF-8 upstream) lexes to a token
//! stream, with malformed trailing constructs (unterminated strings,
//! unbalanced block comments) swallowed into the token that started
//! them. Rules only ever *read* tokens, so graceful nonsense beats a
//! hard error: a file the lexer mangles produces at worst a missed or
//! spurious diagnostic, which the waiver machinery can absorb.
//!
//! It understands exactly the constructs that would otherwise corrupt a
//! token walk over real Rust source:
//!
//! * line (`//`) and **nested** block (`/* /* */ */`) comments — kept as
//!   tokens because the waiver syntax lives in comments;
//! * string escapes, raw strings `r#"…"#` with arbitrary `#` counts,
//!   byte (`b"…"`, `br#"…"#`) and C (`c"…"`) variants;
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escaped
//!   chars (`'\''`, `'\u{1F600}'`) and byte chars (`b'x'`);
//! * raw identifiers (`r#type`) and compound operators (`+=`, `::`, …).

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `interactions`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Any string literal: plain, raw, byte, or C.
    Str,
    /// Numeric literal, suffix glommed on (`0xFF_u64`, `1.5e-3`).
    Num,
    /// `// …` comment (doc comments included); text excludes the newline.
    LineComment,
    /// `/* … */` comment (nesting resolved); text includes delimiters.
    BlockComment,
    /// Punctuation / operator, possibly multi-char (`+=`, `::`, `..=`).
    Punct,
}

/// One lexed token: kind, verbatim text, and 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True for comment tokens (which rules other than the waiver
    /// scanner skip).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Multi-char operators, longest first so greedy matching is correct.
const COMPOUND_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "&&=", "||=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&",
    "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `source` into a token stream. Total: never panics, accepts any
/// input, and concatenating the token texts (plus skipped whitespace)
/// reproduces the source.
pub fn lex(source: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.push(Token { kind: TokenKind::LineComment, text, line, col });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(ch) = cur.peek(0) {
                if ch == '/' && cur.peek(1) == Some('*') {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    cur.bump();
                    cur.bump();
                } else if ch == '*' && cur.peek(1) == Some('/') {
                    depth = depth.saturating_sub(1);
                    text.push('*');
                    text.push('/');
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(ch);
                    cur.bump();
                }
            }
            out.push(Token { kind: TokenKind::BlockComment, text, line, col });
            continue;
        }

        // Raw identifiers and raw / byte / C string prefixes. We must
        // decide before the generic ident path eats the prefix letter.
        if is_ident_start(c) {
            if let Some(tok) = try_lex_prefixed(&mut cur, line, col) {
                out.push(tok);
                continue;
            }
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.push(Token { kind: TokenKind::Ident, text, line, col });
            continue;
        }

        // Numbers (suffixes and a single decimal point glommed on; `1..2`
        // correctly leaves `..` alone).
        if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                let fraction_dot = ch == '.'
                    && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
                    && !text.contains('.');
                // float exponent sign: `1.5e-3`
                let exponent_sign = (ch == '+' || ch == '-')
                    && matches!(text.chars().last(), Some('e') | Some('E'))
                    && text.starts_with(|f: char| f.is_ascii_digit())
                    && text.contains('.');
                if !(is_ident_continue(ch) || fraction_dot || exponent_sign) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.push(Token { kind: TokenKind::Num, text, line, col });
            continue;
        }

        // Strings.
        if c == '"' {
            let text = lex_string_body(&mut cur);
            out.push(Token { kind: TokenKind::Str, text, line, col });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let tok = lex_quote(&mut cur, line, col);
            out.push(tok);
            continue;
        }

        // Punctuation: longest compound first.
        let mut matched = None;
        for op in COMPOUND_OPS {
            let mut ok = true;
            for (i, oc) in op.chars().enumerate() {
                if cur.peek(i) != Some(oc) {
                    ok = false;
                    break;
                }
            }
            if ok {
                matched = Some(*op);
                break;
            }
        }
        if let Some(op) = matched {
            for _ in 0..op.chars().count() {
                cur.bump();
            }
            out.push(Token { kind: TokenKind::Punct, text: op.to_string(), line, col });
        } else {
            cur.bump();
            out.push(Token { kind: TokenKind::Punct, text: c.to_string(), line, col });
        }
    }
    out
}

/// Try to lex `r#ident`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`,
/// or `b'x'` at the cursor. Returns `None` when the cursor sits on a
/// plain identifier instead.
fn try_lex_prefixed(cur: &mut Cursor, line: u32, col: u32) -> Option<Token> {
    let c0 = cur.peek(0)?;
    match c0 {
        'r' | 'b' | 'c' => {}
        _ => return None,
    }

    // Longest prefix of [rbc] letters that ends in a quote or `r#`.
    // Real Rust allows: r" r#" r#ident b" b' br" br#" c" cr#".
    let c1 = cur.peek(1);
    match (c0, c1) {
        ('r', Some('"')) | ('r', Some('#')) => {
            // r#ident (raw identifier) vs raw string r#"…".
            if c1 == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
                let mut text = String::new();
                text.push(cur.bump()?); // r
                text.push(cur.bump()?); // #
                while let Some(ch) = cur.peek(0) {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                return Some(Token { kind: TokenKind::Ident, text, line, col });
            }
            cur.bump(); // r
            let mut text = String::from("r");
            text.push_str(&lex_raw_string_body(cur));
            Some(Token { kind: TokenKind::Str, text, line, col })
        }
        ('b', Some('"')) => {
            cur.bump();
            let mut text = String::from("b");
            text.push_str(&lex_string_body(cur));
            Some(Token { kind: TokenKind::Str, text, line, col })
        }
        ('b', Some('\'')) => {
            cur.bump();
            let mut tok = lex_quote(cur, line, col);
            tok.text.insert(0, 'b');
            tok.col = col;
            Some(tok)
        }
        ('b', Some('r')) if matches!(cur.peek(2), Some('"') | Some('#')) => {
            cur.bump();
            cur.bump();
            let mut text = String::from("br");
            text.push_str(&lex_raw_string_body(cur));
            Some(Token { kind: TokenKind::Str, text, line, col })
        }
        ('c', Some('"')) => {
            cur.bump();
            let mut text = String::from("c");
            text.push_str(&lex_string_body(cur));
            Some(Token { kind: TokenKind::Str, text, line, col })
        }
        _ => None,
    }
}

/// Lex `"…"` with escapes; cursor sits on the opening quote. Swallows
/// to EOF when unterminated.
fn lex_string_body(cur: &mut Cursor) -> String {
    let mut text = String::new();
    if let Some(q) = cur.bump() {
        text.push(q); // opening "
    }
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            text.push(ch);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(ch);
        cur.bump();
        if ch == '"' {
            break;
        }
    }
    text
}

/// Lex `#*"…"#*` (cursor on the first `#` or the quote). Swallows to
/// EOF when unterminated or malformed.
fn lex_raw_string_body(cur: &mut Cursor) -> String {
    let mut text = String::new();
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        text.push('#');
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) != Some('"') {
        // `r##x` — not actually a raw string; return what we consumed
        // and let the main loop lex the rest. Harmless for rule checks.
        return text;
    }
    text.push('"');
    cur.bump();
    'outer: while let Some(ch) = cur.peek(0) {
        if ch == '"' {
            // A closing quote counts only when followed by `hashes` #s.
            for i in 0..hashes {
                if cur.peek(1 + i) != Some('#') {
                    text.push(ch);
                    cur.bump();
                    continue 'outer;
                }
            }
            text.push('"');
            cur.bump();
            for _ in 0..hashes {
                text.push('#');
                cur.bump();
            }
            break;
        }
        text.push(ch);
        cur.bump();
    }
    text
}

/// Disambiguate `'a'` (char) from `'a` (lifetime); cursor on the `'`.
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    if let Some(q) = cur.bump() {
        text.push(q);
    }
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume escape then to closing quote.
            text.push('\\');
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
                if esc == 'u' {
                    // '\u{…}'
                    while let Some(ch) = cur.peek(0) {
                        text.push(ch);
                        cur.bump();
                        if ch == '}' {
                            break;
                        }
                    }
                } else if esc == 'x' {
                    for _ in 0..2 {
                        if let Some(ch) = cur.peek(0) {
                            if ch != '\'' {
                                text.push(ch);
                                cur.bump();
                            }
                        }
                    }
                }
            }
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            Token { kind: TokenKind::Char, text, line, col }
        }
        Some(c) if is_ident_start(c) => {
            if cur.peek(1) == Some('\'') {
                // 'a'
                text.push(c);
                cur.bump();
                text.push('\'');
                cur.bump();
                Token { kind: TokenKind::Char, text, line, col }
            } else {
                // 'a, 'static, 'outer — a lifetime (or loop label).
                while let Some(ch) = cur.peek(0) {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                Token { kind: TokenKind::Lifetime, text, line, col }
            }
        }
        Some(c) => {
            // Punctuation char literal: '(' ')' ' ' etc.
            text.push(c);
            cur.bump();
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
                Token { kind: TokenKind::Char, text, line, col }
            } else {
                // Stray quote — treat as punct so lexing stays total.
                Token { kind: TokenKind::Punct, text, line, col }
            }
        }
        None => Token { kind: TokenKind::Punct, text, line, col },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_ops() {
        let t = kinds("let x += y_2 ^ 0xFF;");
        assert_eq!(
            t,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "+=".into()),
                (TokenKind::Ident, "y_2".into()),
                (TokenKind::Punct, "^".into()),
                (TokenKind::Num, "0xFF".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let t = kinds("'a' 'static x: &'a str 'x' b'q' '\\n' '\\u{1F600}'");
        let kinds_only: Vec<TokenKind> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds_only,
            vec![
                TokenKind::Char,
                TokenKind::Lifetime,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Punct,
                TokenKind::Lifetime,
                TokenKind::Ident,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
            ]
        );
    }

    #[test]
    fn raw_strings_arbitrary_hashes() {
        let t = kinds(r####"r"plain" r#"one "quoted" level"# r##"deep "# inside"## x"####);
        assert_eq!(t[0].0, TokenKind::Str);
        assert_eq!(t[1].0, TokenKind::Str);
        assert!(t[1].1.contains("\"quoted\""));
        assert_eq!(t[2].0, TokenKind::Str);
        assert!(t[2].1.contains("\"# inside"));
        assert_eq!(t[3], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn byte_and_c_strings() {
        let t = kinds(r##"b"bytes" br#"raw bytes"# c"cstr" b'z'"##);
        assert_eq!(t[0].0, TokenKind::Str);
        assert_eq!(t[1].0, TokenKind::Str);
        assert_eq!(t[2].0, TokenKind::Str);
        assert_eq!(t[3].0, TokenKind::Char);
        assert_eq!(t[3].1, "b'z'");
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(t[0], (TokenKind::Ident, "a".into()));
        assert_eq!(t[1].0, TokenKind::BlockComment);
        assert!(t[1].1.contains("still outer"));
        assert_eq!(t[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn line_comment_keeps_text_and_position() {
        let toks = lex("x\n  // lint:allow(D001): frozen stream\ny");
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].col, 3);
        assert!(toks[1].text.contains("lint:allow(D001)"));
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn string_escapes_do_not_terminate_early() {
        let t = kinds(r#""a \" b" next"#);
        assert_eq!(t[0].0, TokenKind::Str);
        assert!(t[0].1.contains("\\\""));
        assert_eq!(t[1], (TokenKind::Ident, "next".into()));
    }

    #[test]
    fn raw_identifier() {
        let t = kinds("r#type r#fn x");
        assert_eq!(t[0], (TokenKind::Ident, "r#type".into()));
        assert_eq!(t[1], (TokenKind::Ident, "r#fn".into()));
        assert_eq!(t[2], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn unterminated_constructs_lex_to_eof() {
        // Totality: none of these may panic or loop forever.
        for src in [
            "\"unterminated",
            "r#\"unterminated raw",
            "/* unterminated /* nested",
            "'",
            "b'",
            "'\\",
            "r#",
            "1.5e",
        ] {
            let _ = lex(src);
        }
    }

    #[test]
    fn numbers_glom_suffixes_but_not_ranges() {
        let t = kinds("0u64 1_000_000 1.5e-3 0..n 2.0f64");
        assert_eq!(t[0], (TokenKind::Num, "0u64".into()));
        assert_eq!(t[1], (TokenKind::Num, "1_000_000".into()));
        assert_eq!(t[2], (TokenKind::Num, "1.5e-3".into()));
        assert_eq!(t[3], (TokenKind::Num, "0".into()));
        assert_eq!(t[4], (TokenKind::Punct, "..".into()));
        assert_eq!(t[5], (TokenKind::Ident, "n".into()));
        assert_eq!(t[6], (TokenKind::Num, "2.0f64".into()));
    }

    #[test]
    fn positions_are_one_based_char_columns() {
        let toks = lex("αβ x");
        // 'αβ' is an ident starting at col 1; 'x' starts at col 4.
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (1, 4));
    }
}
