//! `ssr-lint` — workspace-specific static analysis for the invariants
//! the test suite can only catch after the fact: bit-determinism per
//! seed, arithmetic width on the interaction clock and weight totals,
//! and panic discipline in the service daemon.
//!
//! Three rule series, grounded in real past bugs (see `rules`):
//!
//! * **D — determinism.** All seed streams derive via
//!   `rng::derive_seed`; no `HashMap`/`HashSet` in trajectory code; no
//!   wall-clock reads outside timing paths.
//! * **A — arithmetic width.** No narrowing casts or bare `+`/`-` on
//!   interaction-clock / weight-total expressions; no unchecked `-=`
//!   on count fields.
//! * **P — panic discipline.** No `unwrap()`/`expect()` in service
//!   non-test code.
//!
//! # Waivers
//!
//! A violation that is intentional is waived **in place**, with a
//! mandatory reason:
//!
//! ```text
//! // lint:allow(D002): membership-only set; never iterated
//! let mut seen = std::collections::HashSet::new();
//! ```
//!
//! A waiver covers its own line (trailing form) or the next line of
//! code (standalone form), and may list several ids
//! (`lint:allow(A001, A002): …`) or `*`. A waiver without a reason is
//! itself a violation (`W001`) and cannot be waived — CI stays red
//! until the justification is written down.
//!
//! # Scope
//!
//! `vendor/`, `target/`, `tests/`, `benches/`, and fixture trees are
//! never scanned; `#[cfg(test)]` modules and `#[test]` functions inside
//! scanned files are masked token-precisely. Rules further scope
//! themselves by path (see `rules::RULES`).

pub mod diag;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diag::{Report, Violation, Waiver};
use lexer::{lex, Token, TokenKind};
use rules::{RuleCtx, RULES, W001};

/// Directory names the walker never descends into. `vendor` holds
/// offline shims of external crates (not ours to lint), `fixtures`
/// holds deliberately-violating lint test inputs, `tests`/`benches`
/// are test code by definition.
const EXCLUDED_DIRS: &[&str] = &["target", "vendor", "fixtures", "tests", "benches", ".git", ".github"];

/// Lint a single file's source text. `rel_path` must be the
/// workspace-relative `/`-separated path (rules scope on it).
pub fn lint_source(rel_path: &str, source: &str) -> (Vec<Violation>, Vec<Waiver>) {
    let tokens = lex(source);
    let mask = test_mask(&tokens);
    let ctx = RuleCtx { path: rel_path, tokens: &tokens, mask: &mask };

    let mut violations = Vec::new();
    for rule in RULES {
        if (rule.applies)(rel_path) {
            violations.extend((rule.check)(&ctx));
        }
    }

    let mut waivers = parse_waivers(rel_path, &tokens);

    // Resolve: first matching waiver wins; reasonless waivers match but
    // surface as W001 below, so a bad waiver silences nothing quietly.
    for v in &mut violations {
        for w in &mut waivers {
            if w.covers(v.rule, v.line) {
                w.used = true;
                if !w.reason.is_empty() {
                    v.waived = Some(w.reason.clone());
                }
                break;
            }
        }
    }
    for w in &waivers {
        if w.reason.is_empty() {
            violations.push(Violation {
                rule: W001,
                file: rel_path.to_string(),
                line: w.line,
                col: 1,
                message: format!(
                    "waiver `lint:allow({})` lacks a reason — write \
                     `// lint:allow(id): why this is sound`",
                    w.rules.join(",")
                ),
                waived: None,
            });
        }
    }
    violations.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    (violations, waivers)
}

/// Lint every non-excluded `.rs` file under `root` (the workspace
/// root). Deterministic: files are visited in sorted path order.
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    for rel in files {
        let bytes = fs::read(root.join(&rel))?;
        let source = String::from_utf8_lossy(&bytes);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let (violations, waivers) = lint_source(&rel_str, &source);
        report.violations.extend(violations);
        report.waivers.extend(waivers);
        report.files_scanned += 1;
    }
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if EXCLUDED_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Build the test mask: `true` for every token inside a
/// `#[cfg(test)]`-gated item or a `#[test]` function. Attribute
/// detection is token-precise: `#` `[` … `]` whose interior mentions
/// the bare identifier `test` (covers `#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, …))]`), then the following item is masked through
/// its closing brace (or terminating `;` for brace-less items).
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();

    let mut ci = 0;
    while ci < code.len() {
        let i = code[ci];
        if tokens[i].text == "#" && ci + 1 < code.len() && tokens[code[ci + 1]].text == "[" {
            // Parse to the matching `]`.
            let mut depth = 0usize;
            let mut cj = ci + 1;
            let mut mentions_test = false;
            while cj < code.len() {
                let t = &tokens[code[cj]];
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" if t.kind == TokenKind::Ident => mentions_test = true,
                    _ => {}
                }
                cj += 1;
            }
            if mentions_test && cj < code.len() {
                // Mask from the attribute through the end of the item:
                // the first top-level `{ … }` after the attribute, or a
                // terminating `;` if one comes first.
                let mut ck = cj + 1;
                let mut brace_depth = 0usize;
                let end = loop {
                    if ck >= code.len() {
                        break code.len() - 1;
                    }
                    let t = &tokens[code[ck]];
                    match t.text.as_str() {
                        "{" => brace_depth += 1,
                        "}" => {
                            brace_depth = brace_depth.saturating_sub(1);
                            if brace_depth == 0 {
                                break ck;
                            }
                        }
                        ";" if brace_depth == 0 => break ck,
                        _ => {}
                    }
                    ck += 1;
                };
                for &tok_idx in code.iter().take(end + 1).skip(ci) {
                    mask[tok_idx] = true;
                }
                ci = end + 1;
                continue;
            }
            ci = cj + 1;
            continue;
        }
        ci += 1;
    }
    mask
}

/// A plausible rule id inside `lint:allow(...)`: `*` or letters
/// followed by digits (`D001`). Anything else means the comment is
/// *describing* the syntax (docs, messages), not using it.
fn is_rule_id(s: &str) -> bool {
    if s == "*" {
        return true;
    }
    let letters: String = s.chars().take_while(|c| c.is_ascii_uppercase()).collect();
    let digits = &s[letters.len()..];
    !letters.is_empty() && !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit())
}

/// Extract `lint:allow(...)` waivers from comment tokens. Only plain
/// implementation comments count: doc comments (`///`, `//!`, `/**`)
/// frequently *describe* the waiver syntax and never waive anything.
fn parse_waivers(rel_path: &str, tokens: &[Token]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let is_plain_comment = match t.kind {
            TokenKind::LineComment => !t.text.starts_with("///") && !t.text.starts_with("//!"),
            TokenKind::BlockComment => !t.text.starts_with("/**") && !t.text.starts_with("/*!"),
            _ => false,
        };
        if !is_plain_comment {
            continue;
        }
        let Some(pos) = t.text.find("lint:allow(") else { continue };
        let rest = &t.text[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() || !rules.iter().all(|r| is_rule_id(r)) {
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim().trim_end_matches("*/").trim().to_string())
            .unwrap_or_default();
        // A trailing waiver (code precedes it on its own line) covers
        // only that line; a standalone one covers the next line
        // bearing code.
        let trailing = tokens[..i].iter().any(|p| !p.is_comment() && p.line == t.line);
        let covers_line = if trailing {
            t.line
        } else {
            tokens[i + 1..]
                .iter()
                .find(|n| !n.is_comment() && n.line > t.line)
                .map(|n| n.line)
                .unwrap_or(t.line)
        };
        out.push(Waiver {
            rules,
            file: rel_path.to_string(),
            line: t.line,
            covers_line,
            reason,
            used: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = "fn live() { a.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn t() { b.unwrap(); }\n}\n";
        let (violations, _) = lint_source("crates/service/src/x.rs", src);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].line, 1);
    }

    #[test]
    fn test_mask_covers_test_fns_and_attr_lists() {
        let src = "#[test]\nfn t() { x.unwrap(); }\n\
                   #[cfg(all(test, feature = \"x\"))]\nfn u() { y.unwrap(); }\n\
                   fn live() { z.unwrap(); }\n";
        let (violations, _) = lint_source("crates/service/src/x.rs", src);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].line, 5);
    }

    #[test]
    fn waiver_trailing_and_standalone() {
        let src = "let a = q.unwrap(); // lint:allow(P001): startup, config is static\n\
                   // lint:allow(P001): second, standalone form\n\
                   let b = r.unwrap();\n\
                   let c = s.unwrap();\n";
        let (violations, waivers) = lint_source("crates/service/src/x.rs", src);
        assert_eq!(waivers.len(), 2);
        let unwaived: Vec<_> = violations.iter().filter(|v| v.waived.is_none()).collect();
        assert_eq!(unwaived.len(), 1);
        assert_eq!(unwaived[0].line, 4);
    }

    #[test]
    fn reasonless_waiver_is_w001_and_does_not_silence() {
        let src = "// lint:allow(P001)\nlet b = r.unwrap();\n";
        let (violations, _) = lint_source("crates/service/src/x.rs", src);
        let ids: Vec<&str> = violations.iter().filter(|v| v.waived.is_none()).map(|v| v.rule).collect();
        assert!(ids.contains(&"P001"), "{violations:?}");
        assert!(ids.contains(&"W001"), "{violations:?}");
    }

    #[test]
    fn wildcard_waiver_covers_all_but_w001() {
        let src = "// lint:allow(*): fixture exercising everything\nlet b = r.unwrap();\n";
        let (violations, _) = lint_source("crates/service/src/x.rs", src);
        assert!(violations.iter().all(|v| v.waived.is_some()), "{violations:?}");
    }

    #[test]
    fn waivers_in_strings_are_ignored() {
        let src = "let s = \"lint:allow(P001): not a comment\";\nlet b = r.unwrap();\n";
        let (violations, waivers) = lint_source("crates/service/src/x.rs", src);
        assert!(waivers.is_empty());
        assert_eq!(violations.iter().filter(|v| v.waived.is_none()).count(), 1);
    }
}
