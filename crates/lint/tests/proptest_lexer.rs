//! Lexer total-function properties: `lex` never panics and reports
//! sane, monotone positions — on arbitrary byte soup and on splices of
//! adversarial Rust fragments (unterminated raw strings, lone quotes,
//! half-open comments, …).

use proptest::prelude::*;
use ssr_lint::lexer::lex;

/// Fragments chosen to hit every tricky lexer path boundary.
const FRAGMENTS: &[&str] = &[
    "r#\"", "\"#", "r##\"x\"#", "b'", "'", "'a ", "'\\''", "\\", "\"", "\"\\u{", "//", "/* /*",
    "*/", "r#fn", "b\"", "c\"", "0x", "1e", "1.5e+", "1.", "..", "::<", "#![", ">>=", "0b_",
    "// lint:allow(", "é宇", "\u{0}", "\r\n", "\t",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary (lossily-decoded) byte strings never panic the lexer,
    /// and every token carries 1-based positions.
    #[test]
    fn lex_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes);
        for t in lex(&src) {
            prop_assert!(t.line >= 1);
            prop_assert!(t.col >= 1);
        }
    }

    /// Splices of adversarial fragments never panic, and token lines
    /// are non-decreasing even when unterminated constructs swallow
    /// everything to EOF.
    #[test]
    fn lex_is_total_on_adversarial_splices(
        picks in prop::collection::vec(0usize..29, 0..48),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i % FRAGMENTS.len()]).collect();
        let tokens = lex(&src);
        for w in tokens.windows(2) {
            prop_assert!(w[1].line >= w[0].line, "lines went backwards in {:?}", src);
        }
    }
}
