//! Per-rule fixture tests over a deliberately-violating fixture tree:
//! every rule id fires at a known `file:line`, waivers behave, the
//! `vendor/` exclusion holds, and conforming code stays clean — in both
//! the human and the JSON rendering.

use std::path::PathBuf;

use ssr_lint::diag::Report;
use ssr_lint::lint_tree;

fn fixture_report() -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tree");
    lint_tree(&root).expect("fixture tree is readable")
}

const BAD_ENGINE: &str = "crates/engine/src/bad_engine.rs";
const BAD_SERVICE: &str = "crates/service/src/bad_service.rs";

/// Every rule id fires at the exact `file:line` seeded in the fixtures.
#[test]
fn every_rule_fires_at_its_seeded_position() {
    let report = fixture_report();
    let hits: Vec<(&str, &str, u32)> = report
        .violations
        .iter()
        .map(|v| (v.rule, v.file.as_str(), v.line))
        .collect();

    let expected: &[(&str, &str, u32)] = &[
        ("D002", BAD_ENGINE, 4),
        ("D003", BAD_ENGINE, 5),
        ("D001", BAD_ENGINE, 8),
        ("D003", BAD_ENGINE, 9),
        ("D002", BAD_ENGINE, 10),
        ("A002", BAD_ENGINE, 11),
        ("A003", BAD_ENGINE, 12),
        ("A001", BAD_ENGINE, 13),
        ("P001", BAD_SERVICE, 4),
        ("P001", BAD_SERVICE, 5),
        ("P001", BAD_SERVICE, 6), // waived, but still recorded
        ("W001", BAD_SERVICE, 7),
        ("P001", BAD_SERVICE, 8),
    ];
    for want in expected {
        assert!(hits.contains(want), "missing {want:?} in {hits:?}");
    }
}

/// Waiver semantics: a reasoned trailing waiver silences its line, a
/// reasonless waiver surfaces as W001 and silences nothing.
#[test]
fn waivers_resolve_and_reasonless_waivers_gate() {
    let report = fixture_report();
    let service: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.file == BAD_SERVICE)
        .collect();

    let waived: Vec<_> = service.iter().filter(|v| v.waived.is_some()).collect();
    assert_eq!(waived.len(), 1, "{service:?}");
    assert_eq!(waived[0].line, 6);
    assert_eq!(waived[0].waived.as_deref(), Some("fixture waived on purpose"));

    // The reasonless waiver on line 7 covers line 8 but must not
    // silence it; it additionally emits W001.
    assert!(service.iter().any(|v| v.rule == "P001" && v.line == 8 && v.waived.is_none()));
    assert!(service.iter().any(|v| v.rule == "W001" && v.line == 7 && v.waived.is_none()));
    assert!(!report.is_clean());
}

/// `vendor/` is never scanned: its planted D001/D003 bait must not
/// surface, and the file count covers exactly the three real fixtures.
#[test]
fn vendor_tree_is_excluded() {
    let report = fixture_report();
    assert!(
        report.violations.iter().all(|v| !v.file.starts_with("vendor/")),
        "{:?}",
        report.violations
    );
    assert_eq!(report.files_scanned, 3);
}

/// Conforming code (derive_seed, BTreeMap, saturating/checked
/// arithmetic) produces no hits at all.
#[test]
fn conforming_fixture_is_clean() {
    let report = fixture_report();
    assert!(
        report.violations.iter().all(|v| !v.file.ends_with("good.rs")),
        "{:?}",
        report.violations
    );
}

/// Both renderings carry `file:line` for each seeded violation.
#[test]
fn human_and_json_outputs_carry_positions() {
    let report = fixture_report();
    let human = report.render_human();
    let json = report.render_json();

    for (rule, file, line) in [
        ("D001", BAD_ENGINE, 8),
        ("A001", BAD_ENGINE, 13),
        ("P001", BAD_SERVICE, 4),
    ] {
        let human_line = human
            .lines()
            .find(|l| l.contains(&format!("{file}:{line}:")) && l.contains(&format!("[{rule}]")));
        assert!(human_line.is_some(), "no human line for {rule} {file}:{line}\n{human}");

        let json_line = json.lines().find(|l| {
            l.contains(&format!("\"rule\": \"{rule}\""))
                && l.contains(&format!("\"file\": \"{file}\""))
                && l.contains(&format!("\"line\": {line},"))
        });
        assert!(json_line.is_some(), "no json entry for {rule} {file}:{line}\n{json}");
    }

    // The summary object gates CI: unwaived must be non-zero here.
    assert!(json.contains("\"unwaived\": "));
    assert!(!json.contains("\"unwaived\": 0"));
}
