// Fixture: lives under vendor/ and must never be scanned. If the
// exclusion regresses, the `Instant` and seed arithmetic below would
// surface as D003/D001 hits in the fixture-tree report.
use std::time::Instant;

pub fn vendored(seed: u64) -> u64 {
    let _t = Instant::now();
    seed + 1
}
