// Fixture: conforming trajectory code — must produce zero violations.
use std::collections::BTreeMap;

pub fn good(base_seed: u64, interactions: u64, counts: &mut [u64]) -> u64 {
    let stream = derive_seed(base_seed, 1);
    let widened = interactions.saturating_add(1);
    counts[0] = counts[0].checked_sub(1).unwrap_or(0);
    let _m: BTreeMap<u64, u64> = BTreeMap::new();
    stream ^ widened
}

fn derive_seed(base: u64, idx: u64) -> u64 {
    base.rotate_left((idx % 63) as u32)
}
