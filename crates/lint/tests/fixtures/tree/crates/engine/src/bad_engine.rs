// Fixture: seeds every D- and A-series rule. Line numbers below are
// asserted by crates/lint/tests/fixtures.rs — keep them stable.
//
use std::collections::HashMap; // line 4: D002
use std::time::Instant; // line 5: D003

pub fn bad(seed: u64, mut interactions: u64, counts: &mut [u64]) -> u64 {
    let derived = seed ^ 0x9e37_79b9_7f4a_7c15; // line 8: D001
    let _t = Instant::now(); // line 9: D003
    let _m: HashMap<u64, u64> = HashMap::new(); // line 10: D002 (twice)
    interactions += 1; // line 11: A002
    counts[0] -= 1; // line 12: A003
    let narrowed = interactions as u32; // line 13: A001
    derived + u64::from(narrowed) + counts[0]
}
