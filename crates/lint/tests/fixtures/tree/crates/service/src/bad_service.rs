// Fixture: P001 hits plus waiver behaviour (trailing waiver with a
// reason, reasonless waiver => W001). Line numbers are asserted.
pub fn bad(input: Option<u32>) -> u32 {
    let a = input.unwrap(); // line 4: P001
    let b = input.expect("boom"); // line 5: P001
    let c = input.unwrap(); // lint:allow(P001): fixture waived on purpose
    // lint:allow(P001)
    let d = input.unwrap(); // line 8: P001 (waiver above lacks a reason)
    a + b + c + d
}
