//! Self-application: ssr-lint must run clean over its own sources and
//! over the whole workspace tree (the CI gate, in test form — if this
//! fails, fix the violation or waive it in place with a reason).

use std::path::{Path, PathBuf};

#[test]
fn lint_is_clean_over_its_own_sources() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let report = ssr_lint::lint_tree(&root).expect("lint crate tree is readable");
    assert!(report.files_scanned >= 5, "expected src/*.rs to be scanned");
    assert!(report.is_clean(), "\n{}", report.render_human());
}

#[test]
fn workspace_tree_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    assert!(
        Path::new(&root).join("Cargo.toml").exists(),
        "workspace root not found from CARGO_MANIFEST_DIR"
    );
    let report = ssr_lint::lint_tree(&root).expect("workspace tree is readable");
    assert!(report.files_scanned >= 50, "suspiciously few files scanned");
    assert!(report.is_clean(), "\n{}", report.render_human());
}
