//! The `O(n log n)` ranking protocol with `O(log n)` extra states
//! (paper §5).
//!
//! The `n` rank states are the pre-order nodes of a perfectly balanced
//! binary *tree of ranks*; the `2k = O(log n)` extra states form a buffer
//! line `X₁ … X₂ₖ`, split into a **red** half (`i ≤ k`, reset in progress)
//! and a **green** half (`i > k`, reset finished, re-enter the tree). The
//! rules:
//!
//! ```text
//! R1: p + p → p + (p+1)                 p non-branching
//!     p + p → (p+1) + (p+l+1)           p branching (half-size l)
//! R2: l + l → X₁ + X₁                   l a leaf (reset signal)
//! R3: Xᵢ + Xⱼ → Xᵢ₊₁ + Xᵢ₊₁             i ≤ j, i < 2k (buffer epidemic)
//! R4: Xᵢ + j → X₁ + X₁                  i ≤ k  (red: unload the tree)
//!     Xᵢ + j → 0 + j                    i > k  (green: re-enter at root)
//! R5: X₂ₖ + X₂ₖ → 0 + 0
//! ```
//!
//! `R1` disperses agents down the tree (each branching interaction sends
//! one agent to each child); if the initial configuration was *balanced*
//! this silently ranks everyone in `O(n log n)` (Lemmas 19–20). Otherwise
//! some leaf overloads, `R2` raises the reset signal, and an `O(log n)`
//! epidemic (`R3`/`R4`, Lemma 21) sweeps every agent into the buffer line
//! and back to the root, after which dispersal succeeds. Total:
//! `O(n log n)` whp with `x = O(log n)` extra states (Theorem 3).
//!
//! The buffer rules are symmetric in the pair (the paper states them on
//! unordered pairs); `R3` moves **both** agents to `X_{min(i,j)+1}`.
//!
//! # Examples
//!
//! ```
//! use ssr_core::tree::TreeRanking;
//! use ssr_engine::{JumpSimulation, Protocol};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = TreeRanking::new(100);
//! assert_eq!(p.num_extra_states(), 2 * p.buffer_half());
//! let mut sim = JumpSimulation::new(&p, vec![0; 100], 9)?;
//! sim.run_until_silent(u64::MAX)?;
//! assert!(sim.is_silent());
//! # Ok(())
//! # }
//! ```

use ssr_engine::protocol::{ClassSpec, CrossDirection, InteractionSchema, Protocol, State};
use ssr_topology::{BalancedTree, NodeKind};

/// Tree-of-ranks protocol instance for a population of `n` agents.
#[derive(Debug, Clone)]
pub struct TreeRanking {
    n: usize,
    /// Half-length `k` of the buffer line (red states `X₁..X_k`, green
    /// `X_{k+1}..X_{2k}`).
    k: usize,
    /// §5's *modified protocol* analysis device: treat every buffer state
    /// as green (`R4` always re-enters at the root, `R2` still fires but
    /// its output is immediately green). The paper compares the real
    /// protocol against this variant in the proof of Theorem 3.
    modified: bool,
    tree: BalancedTree,
}

impl TreeRanking {
    /// Build the protocol for population `n` with the default buffer
    /// half-length `k = max(2, 2⌈log₂ n⌉)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        let k = ((n.max(2) as f64).log2().ceil() as usize * 2).max(2);
        Self::with_buffer(n, k)
    }

    /// Build with an explicit buffer half-length `k ≥ 1` (`2k` extra
    /// states).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    pub fn with_buffer(n: usize, k: usize) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(k > 0, "buffer half-length must be positive");
        TreeRanking {
            n,
            k,
            modified: false,
            tree: BalancedTree::new(n),
        }
    }

    /// Switch to the §5 *modified protocol* in which every buffer state is
    /// treated as green: `R4` always relocates the buffered agent to the
    /// root instead of propagating a red reset. The paper's Theorem 3
    /// proof couples the real protocol to this variant; from a balanced
    /// configuration the two behave identically until the first red
    /// interaction.
    pub fn as_modified(mut self) -> Self {
        self.modified = true;
        self
    }

    /// True when this instance runs the modified (all-green) variant.
    pub fn is_modified(&self) -> bool {
        self.modified
    }

    /// The buffer half-length `k`.
    pub fn buffer_half(&self) -> usize {
        self.k
    }

    /// The tree of ranks.
    pub fn tree(&self) -> &BalancedTree {
        &self.tree
    }

    /// State id of `X_i` (`1 ≤ i ≤ 2k`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside `1..=2k`.
    pub fn x(&self, i: usize) -> State {
        assert!((1..=2 * self.k).contains(&i), "X index {i} out of range");
        (self.n + i - 1) as State
    }

    /// Buffer index `i` of an extra state (`1..=2k`).
    ///
    /// # Panics
    ///
    /// Panics if `s` is a rank state.
    pub fn x_index(&self, s: State) -> usize {
        assert!((s as usize) >= self.n, "state {s} is a rank state");
        s as usize - self.n + 1
    }

    /// True when `X_i` belongs to the red (reset-propagating) half.
    pub fn is_red(&self, i: usize) -> bool {
        i <= self.k
    }

    /// Deterministic outcome of running only the dispersal rule `R1` (with
    /// every buffered agent first moved to the root): the number of agents
    /// that settle at each rank state. The flow is scheduling-independent:
    /// a non-branching node keeps one agent and passes the rest down; a
    /// branching node keeps `arrivals mod 2` and sends `⌊arrivals/2⌋` to
    /// each child; leaves keep everything that reaches them.
    pub fn dispersal_flow(&self, counts: &[u32]) -> Vec<u64> {
        let mut arrive = vec![0u64; self.n];
        arrive[0] = counts[self.n..].iter().map(|&c| c as u64).sum();
        for (p, &c) in counts[..self.n].iter().enumerate() {
            arrive[p] += c as u64;
        }
        let mut settled = vec![0u64; self.n];
        // Walk nodes 0..n in pre-order (= id order), tracking each node's
        // subtree size with a stack of pending right-subtree sizes rather
        // than one O(log n) geometry descent per node: O(n) total, and no
        // per-node queries against the (implicit) tree.
        let mut size = self.n;
        let mut pending: Vec<usize> = Vec::with_capacity(self.tree.height() as usize + 1);
        for p in 0..self.n {
            let a = arrive[p];
            if size == 1 {
                // Leaf: keeps everything that reaches it.
                settled[p] = a;
                size = pending.pop().unwrap_or(0);
            } else if size.is_multiple_of(2) {
                // Non-branching: keep one, pass the rest down the chain.
                settled[p] = a.min(1);
                if a > 1 {
                    arrive[p + 1] += a - 1;
                }
                size -= 1;
            } else {
                // Branching: keep the parity bit, split the rest in half.
                settled[p] = a % 2;
                let l = (size - 1) / 2;
                let half = a / 2;
                if half > 0 {
                    arrive[p + 1] += half;
                    arrive[p + l + 1] += half;
                }
                pending.push(l);
                size = l;
            }
        }
        settled
    }

    /// A configuration is *balanced* when the dispersal flow settles
    /// exactly one agent at every rank state — i.e. rule `R1` alone will
    /// silently rank the population without triggering a reset.
    pub fn is_balanced(&self, counts: &[u32]) -> bool {
        self.dispersal_flow(counts).iter().all(|&c| c == 1)
    }

    /// Paper-style name of a state: tree node kind and depth, or the
    /// buffer state `Xᵢ` with its colour.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn describe_state(&self, s: State) -> String {
        if (s as usize) < self.n {
            let p = s as usize;
            let kind = match self.tree.kind(p) {
                NodeKind::Branching => "branching",
                NodeKind::NonBranching => "non-branching",
                NodeKind::Leaf => "leaf",
            };
            format!("node {p} ({kind}, depth {})", self.tree.depth(p))
        } else {
            let i = self.x_index(s);
            format!(
                "X{} ({})",
                i,
                if self.is_red(i) { "red" } else { "green" }
            )
        }
    }
}

impl Protocol for TreeRanking {
    fn name(&self) -> &str {
        "tree-of-ranks (x = O(log n))"
    }

    fn population_size(&self) -> usize {
        self.n
    }

    fn num_states(&self) -> usize {
        self.n + 2 * self.k
    }

    fn num_rank_states(&self) -> usize {
        self.n
    }

    #[inline]
    fn transition(&self, initiator: State, responder: State) -> Option<(State, State)> {
        let nr = self.n as State;
        match (initiator < nr, responder < nr) {
            (true, true) => {
                if initiator != responder || self.n == 1 {
                    return None;
                }
                let p = initiator as usize;
                // One O(log n) descent: the node kind and the branching
                // half-size both derive from the subtree size.
                let s = self.tree.subtree_size(p);
                if s == 1 {
                    // R2: leaf overload raises the reset signal.
                    Some((self.x(1), self.x(1)))
                } else if s.is_multiple_of(2) {
                    // R1 on a non-branching node.
                    Some((initiator, initiator + 1))
                } else {
                    // R1 on a branching node: both agents descend.
                    let l = ((s - 1) / 2) as State;
                    Some((initiator + 1, initiator + l + 1))
                }
            }
            (false, false) => {
                // R3 / R5 on the buffer line.
                let i = self.x_index(initiator);
                let j = self.x_index(responder);
                let low = i.min(j);
                if low == 2 * self.k {
                    Some((0, 0)) // R5
                } else {
                    let next = self.x(low + 1);
                    Some((next, next)) // R3
                }
            }
            (true, false) => {
                // R4 with the rank agent as initiator.
                let i = self.x_index(responder);
                if self.is_red(i) && !self.modified {
                    Some((self.x(1), self.x(1)))
                } else {
                    Some((initiator, 0))
                }
            }
            (false, true) => {
                // R4 with the buffered agent as initiator.
                let i = self.x_index(initiator);
                if self.is_red(i) && !self.modified {
                    Some((self.x(1), self.x(1)))
                } else {
                    Some((0, responder))
                }
            }
        }
    }
}

impl InteractionSchema for TreeRanking {
    /// Three classes: dispersal/reset on equal ranks (`R1`/`R2`), the
    /// buffer epidemic on every extra pair (`R3`/`R5`), and the symmetric
    /// unload/re-enter cross rule (`R4`).
    fn interaction_classes(&self) -> Vec<ClassSpec> {
        vec![
            ClassSpec::equal_rank(),
            ClassSpec::extra_extra(),
            ClassSpec::rank_extra(CrossDirection::Both),
        ]
    }

    fn equal_rank_rule(&self, _s: State) -> bool {
        self.n > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_engine::init;
    use ssr_engine::protocol::validate_ranking_contract;
    use ssr_engine::rng::Xoshiro256;
    use ssr_engine::{JumpSimulation, Simulation};

    #[test]
    fn contract_holds_various_n_and_k() {
        for n in [2usize, 3, 9, 10, 16, 33, 100] {
            validate_ranking_contract(&TreeRanking::new(n))
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
        validate_ranking_contract(&TreeRanking::with_buffer(9, 1)).unwrap();
    }

    #[test]
    fn default_buffer_is_logarithmic() {
        assert_eq!(TreeRanking::new(1024).buffer_half(), 20);
        assert!(TreeRanking::new(2).buffer_half() >= 2);
    }

    #[test]
    fn rules_match_paper_for_figure_2_tree() {
        let p = TreeRanking::with_buffer(9, 2); // X₁..X₄ = states 9..13
        // R1 branching at the root (half 4): 0+0 → 1 + 5.
        assert_eq!(p.transition(0, 0), Some((1, 5)));
        // R1 non-branching: 1+1 → 1 + 2.
        assert_eq!(p.transition(1, 1), Some((1, 2)));
        // R2 at a leaf: 3+3 → X₁ + X₁.
        assert_eq!(p.transition(3, 3), Some((9, 9)));
        // R3: X₁ + X₂ → X₂ + X₂ (both to min+1).
        assert_eq!(p.transition(9, 10), Some((10, 10)));
        assert_eq!(p.transition(10, 9), Some((10, 10)));
        // R3 with i = j: X₂ + X₂ → X₃ + X₃.
        assert_eq!(p.transition(10, 10), Some((11, 11)));
        // R5: X₄ + X₄ → 0 + 0 (k = 2 ⇒ 2k = 4).
        assert_eq!(p.transition(12, 12), Some((0, 0)));
        // R4 red: X₁ + rank → X₁ + X₁ (rank agent reset).
        assert_eq!(p.transition(9, 4), Some((9, 9)));
        assert_eq!(p.transition(4, 9), Some((9, 9)));
        // R4 green: X₄ + rank → 0 + rank.
        assert_eq!(p.transition(12, 4), Some((0, 4)));
        assert_eq!(p.transition(4, 12), Some((4, 0)));
        // Distinct ranks never interact.
        assert_eq!(p.transition(3, 4), None);
    }

    #[test]
    fn dispersal_flow_from_root_is_perfect() {
        // Lemma 19: all agents at the root disperse to a perfect ranking.
        for n in [1usize, 2, 5, 9, 16, 33, 100, 127] {
            let p = TreeRanking::new(n);
            let mut counts = vec![0u32; p.num_states()];
            counts[0] = n as u32;
            let settled = p.dispersal_flow(&counts);
            assert!(
                settled.iter().all(|&c| c == 1),
                "n={n}: {settled:?}"
            );
            assert!(p.is_balanced(&counts));
        }
    }

    #[test]
    fn perfect_ranking_is_balanced() {
        let p = TreeRanking::new(20);
        let counts = init::counts(&init::perfect_ranking(20), p.num_states());
        assert!(p.is_balanced(&counts));
    }

    #[test]
    fn leaf_stack_is_not_balanced() {
        let p = TreeRanking::new(9);
        let mut counts = vec![0u32; p.num_states()];
        counts[3] = 9; // all on a leaf
        assert!(!p.is_balanced(&counts));
    }

    #[test]
    fn buffered_agents_count_as_root_arrivals_in_flow() {
        let p = TreeRanking::with_buffer(9, 2);
        let mut counts = vec![0u32; p.num_states()];
        counts[p.x(1) as usize] = 4;
        counts[p.x(4) as usize] = 5;
        let settled = p.dispersal_flow(&counts);
        assert!(settled.iter().all(|&c| c == 1));
    }

    type StartGen = Box<dyn Fn(&TreeRanking) -> Vec<u32>>;

    #[test]
    fn stabilises_from_adversarial_starts() {
        let starts: Vec<(&str, StartGen)> = vec![
            ("all at root", Box::new(|p: &TreeRanking| {
                vec![0; p.population_size()]
            })),
            ("all on a leaf", Box::new(|p: &TreeRanking| {
                let leaf = p.tree().leaves_iter().next().unwrap() as u32;
                vec![leaf; p.population_size()]
            })),
            ("all red X₁", Box::new(|p: &TreeRanking| {
                vec![p.x(1); p.population_size()]
            })),
            ("all green X₂ₖ", Box::new(|p: &TreeRanking| {
                vec![p.x(2 * p.buffer_half()); p.population_size()]
            })),
        ];
        for n in [2usize, 9, 31, 64] {
            let p = TreeRanking::new(n);
            for (name, make) in &starts {
                let cfg = make(&p);
                let mut sim = JumpSimulation::new(&p, cfg, n as u64).unwrap();
                sim.run_until_silent(u64::MAX).unwrap();
                assert!(
                    sim.counts()[..n].iter().all(|&c| c == 1),
                    "n={n} start={name}"
                );
            }
        }
    }

    #[test]
    fn stabilises_from_uniform_random_starts() {
        let mut rng = Xoshiro256::seed_from_u64(71);
        for n in [5usize, 17, 50] {
            let p = TreeRanking::new(n);
            for trial in 0..5 {
                let cfg = init::uniform_random(n, p.num_states(), &mut rng);
                let mut sim = JumpSimulation::new(&p, cfg, trial).unwrap();
                sim.run_until_silent(u64::MAX).unwrap();
                assert!(sim.is_silent(), "n={n} trial={trial}");
            }
        }
    }

    #[test]
    fn naive_simulation_verifies_silence() {
        let p = TreeRanking::new(16);
        let mut sim = Simulation::new(&p, vec![p.x(1); 16], 5).unwrap();
        sim.run_until_silent(u64::MAX).unwrap();
        assert!(sim.verify_silent());
        assert!(init::is_perfect_ranking(sim.agents(), 16));
    }

    #[test]
    fn reset_epidemic_turns_population_red() {
        // Start balanced except one agent in X₁; the red epidemic must at
        // some point move every agent out of the tree (Lemma 21's first
        // phase) before re-ranking. We verify the end state is a perfect
        // ranking and that at least one R4-red interaction occurred.
        let p = TreeRanking::new(12);
        let mut cfg: Vec<u32> = (0..12).collect();
        cfg[11] = p.x(1);
        let mut sim = Simulation::new(&p, cfg, 31).unwrap();
        sim.run_until_silent(u64::MAX).unwrap();
        assert!(init::is_perfect_ranking(sim.agents(), 12));
    }

    #[test]
    fn x_index_roundtrip() {
        let p = TreeRanking::with_buffer(10, 3);
        for i in 1..=6 {
            assert_eq!(p.x_index(p.x(i)), i);
            assert_eq!(p.is_red(i), i <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn x_rejects_zero_index() {
        TreeRanking::with_buffer(5, 2).x(0);
    }
}

#[cfg(test)]
mod modified_tests {
    use super::*;
    use ssr_engine::init;
    use ssr_engine::protocol::validate_ranking_contract;
    use ssr_engine::rng::Xoshiro256;
    use ssr_engine::JumpSimulation;

    #[test]
    fn modified_variant_satisfies_contract() {
        for n in [2usize, 9, 33] {
            validate_ranking_contract(&TreeRanking::new(n).as_modified())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn modified_always_reenters_at_root() {
        let p = TreeRanking::with_buffer(9, 2).as_modified();
        assert!(p.is_modified());
        // Red X₁ meeting a rank agent relocates to the root instead of
        // resetting.
        assert_eq!(p.transition(4, p.x(1)), Some((4, 0)));
        assert_eq!(p.transition(p.x(1), 4), Some((0, 4)));
        // Buffer-line dynamics (R3/R5) are unchanged.
        assert_eq!(p.transition(p.x(1), p.x(2)), Some((p.x(2), p.x(2))));
        assert_eq!(p.transition(p.x(4), p.x(4)), Some((0, 0)));
    }

    /// The paper's exact claim for the modified protocol (proof of
    /// Theorem 3): from a balanced configuration it reaches the silent
    /// ranking in `O(n log n)` whp; from a non-balanced one it *overloads
    /// a leaf* in `O(n log n)` whp instead — it is an analysis device, not
    /// a self-stabilising protocol, and from unbalanced starts it cycles
    /// forever (the real protocol's red reset is what breaks the cycle).
    #[test]
    fn modified_reaches_silence_or_leaf_overload_quickly() {
        let mut rng = Xoshiro256::seed_from_u64(91);
        for n in [9usize, 25, 64] {
            let p = TreeRanking::new(n).as_modified();
            for trial in 0..4 {
                let cfg = init::uniform_random(n, Protocol::num_states(&p), &mut rng);
                let mut sim = JumpSimulation::new(&p, cfg, trial).unwrap();
                // Generous O(n log n)-parallel cap, in interactions.
                let cap = 200 * (n as u64) * (n as u64) * (n.ilog2() as u64 + 1);
                let mut outcome = None;
                while sim.interactions() < cap {
                    if sim.is_silent() {
                        outcome = Some("silent");
                        break;
                    }
                    if p.tree().leaves_iter().any(|l| sim.counts()[l] >= 2) {
                        outcome = Some("leaf overload");
                        break;
                    }
                    sim.step_productive();
                }
                assert!(
                    outcome.is_some(),
                    "n={n} trial={trial}: neither silence nor a leaf \
                     overload within the O(n log n) window"
                );
            }
        }
    }

    #[test]
    fn real_and_modified_agree_from_balanced_starts() {
        // From a balanced (all-at-root) start the real protocol never
        // touches the reset machinery, so its stabilisation-time
        // distribution matches the modified protocol's. Compare means.
        let n = 24;
        let real = TreeRanking::new(n);
        let modified = TreeRanking::new(n).as_modified();
        let mean = |p: &TreeRanking, seed0: u64| -> f64 {
            let trials = 200u64;
            let total: u64 = (0..trials)
                .map(|t| {
                    let mut s =
                        JumpSimulation::new(p, vec![0; n], seed0 + t).unwrap();
                    s.run_until_silent(u64::MAX).unwrap().interactions
                })
                .sum();
            total as f64 / trials as f64
        };
        let a = mean(&real, 1000);
        let b = mean(&modified, 2000);
        let rel = (a - b).abs() / a;
        assert!(rel < 0.1, "real {a:.0} vs modified {b:.0}");
    }
}

#[cfg(test)]
mod describe_tests {
    use super::*;

    #[test]
    fn state_names_follow_tree_and_buffer() {
        let p = TreeRanking::with_buffer(9, 2);
        assert_eq!(p.describe_state(0), "node 0 (branching, depth 0)");
        assert_eq!(p.describe_state(1), "node 1 (non-branching, depth 1)");
        assert_eq!(p.describe_state(3), "node 3 (leaf, depth 3)");
        assert_eq!(p.describe_state(p.x(1)), "X1 (red)");
        assert_eq!(p.describe_state(p.x(4)), "X4 (green)");
    }
}
