//! Loosely-stabilising leader election with `O(log n)` states (extension).
//!
//! The paper's protocols are *silent* self-stabilising: they require at
//! least `n` states [Cai–Izumi–Wada] but then hold a unique leader
//! forever. The related-work alternative (Sudo et al., *loose
//! stabilisation*) drops the "forever": with only `O(log n)` states the
//! population converges to a unique leader quickly and then *holds* that
//! leader for a long—but finite—time, after which the leader may be lost
//! and recomputed. This module implements a representative timer-based
//! loose protocol so the trade-off the paper's introduction appeals to can
//! be measured, not just cited (experiment EL in `exp_loose`).
//!
//! # The protocol
//!
//! Each agent is a *leader* or a *follower with a countdown timer*
//! `t ∈ {0, …, τ}` (so `τ + 2` states in total, `τ = Θ(log n)`):
//!
//! ```text
//! L + L        → L + F(τ)                 (duel: responder demoted)
//! L + F(t)     → L + F(τ)   for t < τ     (leader refreshes timers …)
//! F(t) + L     → F(τ) + L   for t < τ     (… in both orders)
//! F(a) + F(b)  → F(c) + F(c), c = max(a,b) − 1, unless a = b = 0
//! F(0) + F(0)  → L + F(τ)                 (timeout: a new leader rises)
//! ```
//!
//! The follower rule is the classic *max-propagate-and-decrement*: "I met
//! a leader recently" spreads epidemically while decaying, so with a
//! leader present timers rarely drain, and without one they hit zero in
//! `O(τ)` parallel time whp and a new leader is seeded.
//!
//! **This is not a ranking protocol.** Its configurations are never
//! silent (with `n > τ + 2` agents some state is always duplicated and
//! the timer churn never stops); run it with a step budget and observe the
//! leader count instead. That perpetual churn is precisely the cost the
//! paper's silent protocols eliminate.
//!
//! # Examples
//!
//! ```
//! use ssr_core::loose::LooseLeaderElection;
//! use ssr_engine::{Protocol, Simulation};
//! use ssr_engine::observer::NullObserver;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 64;
//! let p = LooseLeaderElection::new(n);
//! // Adversarial start: everyone believes they are the leader.
//! let start = vec![p.leader_state(); n];
//! let mut sim = Simulation::new(&p, start, 7)?;
//! sim.run_for(200 * n as u64, &mut NullObserver);
//! assert_eq!(p.leader_count(sim.counts()), 1);
//! # Ok(())
//! # }
//! ```

use ssr_engine::protocol::{ClassSpec, InteractionSchema, Protocol, State};

/// Timer-based loosely-stabilising leader election (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LooseLeaderElection {
    n: usize,
    timer_max: u32,
}

impl LooseLeaderElection {
    /// Build the protocol for `n` agents with the default timer ceiling
    /// `τ = 8⌈log₂ n⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        let log = usize::BITS - n.next_power_of_two().leading_zeros();
        Self::with_timer(n, 8 * log.max(1))
    }

    /// Build the protocol with an explicit timer ceiling `τ ≥ 1`.
    ///
    /// Larger `τ` lengthens the holding time (exponentially) at the cost
    /// of slower recovery after the leader is lost.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `timer_max == 0`.
    pub fn with_timer(n: usize, timer_max: u32) -> Self {
        assert!(n >= 2, "leader election needs at least two agents");
        assert!(timer_max >= 1, "timer ceiling must be positive");
        LooseLeaderElection { n, timer_max }
    }

    /// The timer ceiling `τ`.
    pub fn timer_max(&self) -> u32 {
        self.timer_max
    }

    /// The state id of the (single) leader state.
    pub fn leader_state(&self) -> State {
        self.timer_max + 1
    }

    /// The state id of a follower with countdown `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t > τ`.
    pub fn follower_state(&self, t: u32) -> State {
        assert!(t <= self.timer_max, "timer exceeds ceiling");
        t
    }

    /// Whether `s` encodes the leader.
    pub fn is_leader(&self, s: State) -> bool {
        s == self.leader_state()
    }

    /// Number of agents currently in the leader state, given per-state
    /// occupancy counts (e.g. [`ssr_engine::Simulation::counts`]).
    ///
    /// # Panics
    ///
    /// Panics if `counts` is shorter than the state space.
    pub fn leader_count(&self, counts: &[u32]) -> u64 {
        counts[self.leader_state() as usize] as u64
    }

    /// Smallest follower countdown currently present, or `None` if every
    /// agent is a leader. A population whose minimum timer stays high is
    /// "far" from spuriously electing a second leader.
    pub fn min_timer(&self, counts: &[u32]) -> Option<u32> {
        (0..=self.timer_max).find(|&t| counts[t as usize] > 0)
    }
}

impl Protocol for LooseLeaderElection {
    fn name(&self) -> &str {
        "loose leader election"
    }

    fn population_size(&self) -> usize {
        self.n
    }

    fn num_states(&self) -> usize {
        self.timer_max as usize + 2
    }

    /// Loose protocols have no rank states; the whole space is "extra".
    /// Declaring every state a rank state keeps the engine's silence test
    /// meaningful (it then means "all agents in distinct states", which
    /// for `n > τ + 2` never holds — loose protocols are never silent).
    fn num_rank_states(&self) -> usize {
        self.num_states()
    }

    #[inline]
    fn transition(&self, initiator: State, responder: State) -> Option<(State, State)> {
        let leader = self.leader_state();
        let tau = self.timer_max;
        match (initiator == leader, responder == leader) {
            (true, true) => Some((leader, tau)), // duel: demote responder
            (true, false) => (responder < tau).then_some((leader, tau)),
            (false, true) => (initiator < tau).then_some((tau, leader)),
            (false, false) => {
                let t = initiator.max(responder);
                if t == 0 {
                    Some((leader, tau)) // both timers expired: seed a leader
                } else {
                    let c = t - 1;
                    (initiator != c || responder != c).then_some((c, c))
                }
            }
        }
    }
}

impl InteractionSchema for LooseLeaderElection {
    /// The timer rules fit none of the structured ranking-protocol shapes
    /// (the whole space counts as "rank" states and distinct-state pairs
    /// interact), so beyond the diagonal — every same-state meeting is
    /// productive, an equal-rank class — the off-diagonal rules go through
    /// the sparse-pair escape hatch: `O(τ²)` enumerated pairs with
    /// `τ = O(log n)`. This is what lets the jump and count engines drive
    /// a protocol the three structured classes cannot express.
    fn interaction_classes(&self) -> Vec<ClassSpec> {
        let mut classes = vec![ClassSpec::equal_rank()];
        let s_total = self.num_states() as State;
        for a in 0..s_total {
            for b in 0..s_total {
                if a != b && self.transition(a, b).is_some() {
                    classes.push(ClassSpec::pair(a, b));
                }
            }
        }
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_engine::observer::NullObserver;
    use ssr_engine::rng::Xoshiro256;
    use ssr_engine::Simulation;

    #[test]
    fn schema_is_exact() {
        for (n, tau) in [(8usize, 5u32), (20, 9), (40, 16)] {
            ssr_engine::validate_interaction_schema(&LooseLeaderElection::with_timer(n, tau))
                .unwrap_or_else(|e| panic!("n={n} tau={tau}: {e}"));
        }
    }

    #[test]
    fn jump_engine_drives_loose_protocol_to_a_unique_leader() {
        // The schema (equal-rank + sparse pairs) lets the null-skipping
        // engines run a never-silent protocol: advance a productive-step
        // budget and check convergence, as the naive tests do with raw
        // interactions.
        use ssr_engine::JumpSimulation;
        let n = 50;
        let p = LooseLeaderElection::new(n);
        let mut sim = JumpSimulation::new(&p, vec![p.leader_state(); n], 23).unwrap();
        for _ in 0..200 * n {
            sim.step_productive();
        }
        assert_eq!(p.leader_count(sim.counts()), 1, "duels must leave one leader");
    }

    #[test]
    fn count_engine_agrees_with_naive_on_leader_convergence() {
        use ssr_engine::CountSimulation;
        let n = 60;
        let p = LooseLeaderElection::new(n);
        let mut sim = CountSimulation::new(&p, vec![p.timer_max(); n], 29).unwrap();
        let mut productive = 0u64;
        while productive < 4_000 * n as u64 {
            productive += sim.advance_chain().expect("loose protocols never go silent");
        }
        assert_eq!(p.leader_count(sim.counts()), 1);
    }

    fn run_for(p: &LooseLeaderElection, start: Vec<State>, seed: u64, budget: u64) -> Vec<u32> {
        let mut sim = Simulation::new(p, start, seed).unwrap();
        sim.run_for(budget, &mut NullObserver);
        sim.counts().to_vec()
    }

    #[test]
    fn no_identity_rewrites() {
        let p = LooseLeaderElection::with_timer(8, 5);
        let s = p.num_states() as State;
        for a in 0..s {
            for b in 0..s {
                if let Some((a2, b2)) = p.transition(a, b) {
                    assert!(a2 != a || b2 != b, "identity rewrite on ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn duel_demotes_responder_only() {
        let p = LooseLeaderElection::with_timer(4, 6);
        let l = p.leader_state();
        assert_eq!(p.transition(l, l), Some((l, 6)));
    }

    #[test]
    fn leader_refresh_is_symmetric_and_null_at_ceiling() {
        let p = LooseLeaderElection::with_timer(4, 6);
        let l = p.leader_state();
        assert_eq!(p.transition(l, 3), Some((l, 6)));
        assert_eq!(p.transition(3, l), Some((6, l)));
        assert_eq!(p.transition(l, 6), None, "already refreshed");
        assert_eq!(p.transition(6, l), None);
    }

    #[test]
    fn followers_max_propagate_and_decrement() {
        let p = LooseLeaderElection::with_timer(4, 6);
        assert_eq!(p.transition(5, 2), Some((4, 4)));
        assert_eq!(p.transition(2, 5), Some((4, 4)));
        assert_eq!(p.transition(6, 6), Some((5, 5)));
        // Identity case: (1, 0) → max = 1 → both 0; initiator changes.
        assert_eq!(p.transition(1, 0), Some((0, 0)));
        assert_eq!(p.transition(0, 1), Some((0, 0)));
    }

    #[test]
    fn expired_timers_seed_exactly_one_leader() {
        let p = LooseLeaderElection::with_timer(4, 6);
        let l = p.leader_state();
        assert_eq!(p.transition(0, 0), Some((l, 6)));
    }

    #[test]
    fn timer_ceiling_validation() {
        let p = LooseLeaderElection::with_timer(4, 3);
        assert_eq!(p.num_states(), 5);
        assert_eq!(p.leader_state(), 4);
        assert_eq!(p.follower_state(3), 3);
    }

    #[test]
    #[should_panic(expected = "timer exceeds ceiling")]
    fn follower_state_rejects_overflow() {
        LooseLeaderElection::with_timer(4, 3).follower_state(4);
    }

    #[test]
    fn converges_from_all_leaders() {
        let n = 50;
        let p = LooseLeaderElection::new(n);
        let counts = run_for(&p, vec![p.leader_state(); n], 11, 500 * n as u64);
        assert_eq!(p.leader_count(&counts), 1, "duels must leave one leader");
    }

    #[test]
    fn converges_from_no_leaders() {
        let n = 50;
        let p = LooseLeaderElection::new(n);
        // Worst case: every timer at the ceiling, so the whole countdown
        // must elapse before a leader can rise.
        let counts = run_for(&p, vec![p.timer_max(); n], 13, 3_000 * n as u64);
        assert_eq!(p.leader_count(&counts), 1);
    }

    #[test]
    fn converges_from_uniform_random_states() {
        let n = 64;
        let p = LooseLeaderElection::new(n);
        let mut rng = Xoshiro256::seed_from_u64(5);
        for trial in 0..4 {
            let start = ssr_engine::init::uniform_random(n, p.num_states(), &mut rng);
            let counts = run_for(&p, start, 100 + trial, 2_000 * n as u64);
            assert_eq!(p.leader_count(&counts), 1, "trial {trial}");
        }
    }

    #[test]
    fn leader_holds_across_a_long_window() {
        // With a unique leader and all timers refreshed, the leader should
        // survive a window far longer than the convergence time.
        let n = 40;
        let p = LooseLeaderElection::new(n);
        let mut start = vec![p.timer_max(); n];
        start[0] = p.leader_state();
        let mut sim = Simulation::new(&p, start, 17).unwrap();
        for _ in 0..200 {
            sim.run_for(50 * n as u64, &mut NullObserver);
            assert_eq!(p.leader_count(sim.counts()), 1, "leader lost");
        }
    }

    #[test]
    fn never_silent() {
        let n = 30;
        let p = LooseLeaderElection::new(n);
        let mut sim = Simulation::new(&p, vec![0; n], 19).unwrap();
        sim.run_for(10_000, &mut NullObserver);
        assert!(!sim.is_silent(), "loose protocols churn forever");
    }

    #[test]
    fn min_timer_reports_decay() {
        let p = LooseLeaderElection::with_timer(4, 6);
        let mut counts = vec![0u32; p.num_states()];
        counts[p.leader_state() as usize] = 4;
        assert_eq!(p.min_timer(&counts), None);
        counts[3] = 1;
        assert_eq!(p.min_timer(&counts), Some(3));
        counts[0] = 1;
        assert_eq!(p.min_timer(&counts), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn rejects_tiny_population() {
        LooseLeaderElection::new(1);
    }
}
