//! The generic state-optimal ranking protocol `A_G` (paper §1, §2).
//!
//! State space `{0, …, n−1}`, single rule family
//!
//! ```text
//! i + i → i + (i + 1 mod n)
//! ```
//!
//! — when two agents share state `i` the responder moves to the cyclic
//! successor. `A_G` is the only previously known state-optimal
//! self-stabilising ranking protocol; it stabilises silently in `Θ(n²)`
//! parallel time whp and serves as the baseline every new protocol in the
//! paper is measured against.
//!
//! # Examples
//!
//! ```
//! use ssr_core::generic::GenericRanking;
//! use ssr_engine::{JumpSimulation, Protocol};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = GenericRanking::new(50);
//! assert_eq!(p.transition(7, 7), Some((7, 8)));
//! assert_eq!(p.transition(49, 49), Some((49, 0)));
//! let mut sim = JumpSimulation::new(&p, vec![0; 50], 1)?;
//! sim.run_until_silent(u64::MAX)?;
//! assert!(sim.counts().iter().all(|&c| c == 1));
//! # Ok(())
//! # }
//! ```

use ssr_engine::protocol::{ClassSpec, InteractionSchema, Protocol, State};

/// The baseline protocol `A_G` for a population of `n` agents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenericRanking {
    n: usize,
}

impl GenericRanking {
    /// Build `A_G` for population size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "population must be non-empty");
        GenericRanking { n }
    }
}

impl Protocol for GenericRanking {
    fn name(&self) -> &str {
        "generic (A_G)"
    }

    fn population_size(&self) -> usize {
        self.n
    }

    fn num_states(&self) -> usize {
        self.n
    }

    fn num_rank_states(&self) -> usize {
        self.n
    }

    #[inline]
    fn transition(&self, initiator: State, responder: State) -> Option<(State, State)> {
        if initiator == responder && self.n > 1 {
            let next = if responder as usize + 1 == self.n {
                0
            } else {
                responder + 1
            };
            Some((initiator, next))
        } else {
            None
        }
    }
}

impl InteractionSchema for GenericRanking {
    /// One class: the single rule is an equal-rank rule at every state.
    fn interaction_classes(&self) -> Vec<ClassSpec> {
        vec![ClassSpec::equal_rank()]
    }

    fn equal_rank_rule(&self, _s: State) -> bool {
        self.n > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_engine::init;
    use ssr_engine::protocol::validate_ranking_contract;
    use ssr_engine::rng::Xoshiro256;
    use ssr_engine::{JumpSimulation, Simulation};

    #[test]
    fn contract_holds() {
        for n in [1usize, 2, 3, 10, 31] {
            validate_ranking_contract(&GenericRanking::new(n))
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn rule_wraps_modulo_n() {
        let p = GenericRanking::new(5);
        assert_eq!(p.transition(4, 4), Some((4, 0)));
        assert_eq!(p.transition(0, 0), Some((0, 1)));
        assert_eq!(p.transition(0, 1), None);
    }

    #[test]
    fn stabilises_from_random_starts() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        for n in [2usize, 5, 16, 40] {
            let p = GenericRanking::new(n);
            for trial in 0..5 {
                let cfg = init::uniform_random(n, n, &mut rng);
                let mut sim = JumpSimulation::new(&p, cfg, trial).unwrap();
                sim.run_until_silent(u64::MAX).unwrap();
                assert!(sim.counts().iter().all(|&c| c == 1), "n={n}");
            }
        }
    }

    #[test]
    fn naive_simulation_agrees_on_silence() {
        let p = GenericRanking::new(12);
        let mut sim = Simulation::new(&p, vec![5; 12], 9).unwrap();
        sim.run_until_silent(u64::MAX).unwrap();
        assert!(sim.verify_silent());
        assert!(init::is_perfect_ranking(sim.agents(), 12));
    }

    #[test]
    fn quadratic_shape_sanity() {
        // Mean stabilisation time from the all-in-zero start should grow
        // roughly like n² (within a generous factor window at tiny sizes).
        let mean_time = |n: usize| -> f64 {
            let p = GenericRanking::new(n);
            let trials = 10;
            let total: f64 = (0..trials)
                .map(|t| {
                    let mut s = JumpSimulation::new(&p, vec![0; n], 100 + t).unwrap();
                    s.run_until_silent(u64::MAX).unwrap().parallel_time
                })
                .sum();
            total / trials as f64
        };
        let t32 = mean_time(32);
        let t64 = mean_time(64);
        let ratio = t64 / t32;
        assert!(
            (2.0..9.0).contains(&ratio),
            "doubling n should ~quadruple time, got ratio {ratio:.2}"
        );
    }

    #[test]
    fn single_agent_population_is_trivially_silent() {
        let p = GenericRanking::new(1);
        assert_eq!(p.transition(0, 0), None);
    }
}
