//! Leader election via ranking.
//!
//! Every ranking protocol solves self-stabilising leader election: once
//! each agent silently occupies a distinct rank state, the unique agent in
//! [`LEADER_RANK`] (rank 0) is the leader. The paper's lower-bound context:
//! self-stabilising leader election needs at least `n` states
//! (Cai–Izumi–Wada), and any silent protocol needs `Ω(n)` expected time
//! (Burman et al. / Doty–Soloveichik) — ranking is the canonical way to
//! meet the state bound.
//!
//! # Examples
//!
//! ```
//! use ssr_core::leader::elect_leader;
//! use ssr_core::tree::TreeRanking;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let protocol = TreeRanking::new(25);
//! let outcome = elect_leader(&protocol, vec![0; 25], 7, u64::MAX)?;
//! assert!(outcome.leader < 25);
//! println!("leader elected after parallel time {:.1}",
//!          outcome.report.parallel_time);
//! # Ok(())
//! # }
//! ```

use ssr_engine::error::StabilisationTimeout;
use ssr_engine::protocol::{Protocol, State};
use ssr_engine::sim::{Simulation, StabilisationReport};

/// The rank whose occupant is the elected leader.
pub const LEADER_RANK: State = 0;

/// Result of a successful leader election.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectionOutcome {
    /// Stabilisation statistics of the underlying ranking run.
    pub report: StabilisationReport,
    /// Index of the agent that holds [`LEADER_RANK`] in the silent
    /// configuration.
    pub leader: usize,
}

/// Errors from [`elect_leader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectionError {
    /// The ranking did not stabilise within the interaction cap.
    Timeout(StabilisationTimeout),
    /// The initial configuration was invalid for the protocol.
    Config(ssr_engine::ConfigError),
}

impl std::fmt::Display for ElectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElectionError::Timeout(t) => write!(f, "election timed out: {t}"),
            ElectionError::Config(c) => write!(f, "invalid configuration: {c}"),
        }
    }
}

impl std::error::Error for ElectionError {}

impl From<StabilisationTimeout> for ElectionError {
    fn from(t: StabilisationTimeout) -> Self {
        ElectionError::Timeout(t)
    }
}

impl From<ssr_engine::ConfigError> for ElectionError {
    fn from(c: ssr_engine::ConfigError) -> Self {
        ElectionError::Config(c)
    }
}

/// Run a ranking protocol to silence and report the elected leader (the
/// agent that ends in rank 0). Uses the naive simulator because agent
/// identities matter for naming the winner.
///
/// # Errors
///
/// [`ElectionError::Config`] for invalid configurations,
/// [`ElectionError::Timeout`] when `max_interactions` is exhausted first.
pub fn elect_leader<P: Protocol + ?Sized>(
    protocol: &P,
    config: Vec<State>,
    seed: u64,
    max_interactions: u64,
) -> Result<ElectionOutcome, ElectionError> {
    let mut sim = Simulation::new(protocol, config, seed)?;
    let report = sim.run_until_silent(max_interactions)?;
    let leader = sim
        .agents()
        .iter()
        .position(|&s| s == LEADER_RANK)
        .expect("a silent ranking has exactly one agent at rank 0");
    Ok(ElectionOutcome { report, leader })
}

/// True when exactly one agent occupies the leader rank — the election
/// safety predicate, checkable on any configuration.
pub fn has_unique_leader(counts: &[u32]) -> bool {
    counts
        .first()
        .map(|&c| c == 1)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::GenericRanking;
    use crate::ring::RingOfTraps;
    use crate::tree::TreeRanking;
    use ssr_engine::init;
    use ssr_engine::rng::Xoshiro256;

    #[test]
    fn electing_from_stacked_start_names_one_agent() {
        let p = GenericRanking::new(12);
        let out = elect_leader(&p, vec![3; 12], 5, u64::MAX).unwrap();
        assert!(out.leader < 12);
        assert!(out.report.interactions > 0);
    }

    #[test]
    fn all_protocols_elect_from_random_starts() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let n = 20;
        let gen = GenericRanking::new(n);
        let ring = RingOfTraps::new(n);
        let tree = TreeRanking::new(n);
        let protos: Vec<&dyn Protocol> = vec![&gen, &ring, &tree];
        for p in protos {
            let cfg = init::uniform_random(n, p.num_states(), &mut rng);
            let out = elect_leader(p, cfg, 11, u64::MAX).unwrap();
            assert!(out.leader < n, "{}", p.name());
        }
    }

    #[test]
    fn unique_leader_predicate() {
        assert!(has_unique_leader(&[1, 0, 2]));
        assert!(!has_unique_leader(&[2, 1, 0]));
        assert!(!has_unique_leader(&[0, 1, 1]));
        assert!(!has_unique_leader(&[]));
    }

    #[test]
    fn timeout_propagates() {
        let p = GenericRanking::new(12);
        let err = elect_leader(&p, vec![0; 12], 5, 3).unwrap_err();
        assert!(matches!(err, ElectionError::Timeout(_)));
        assert!(err.to_string().contains("timed out"));
    }

    #[test]
    fn config_error_propagates() {
        let p = GenericRanking::new(4);
        let err = elect_leader(&p, vec![0; 3], 5, 10).unwrap_err();
        assert!(matches!(err, ElectionError::Config(_)));
    }
}
