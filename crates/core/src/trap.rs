//! Agent traps (paper §2.1) and configuration inspection shared by the
//! ring (§3) and line (§4) protocols.
//!
//! A trap of size `m + 1` spans states `0..=m` of a [`TrapChain`] slot:
//! state `0` is the **gate**, states `1..=m` the **inner** states. Inner
//! states carry the rules `R_i : i + i → i + (i − 1)` (excess agents
//! descend toward the gate); the gate carries `R_g : 0 + 0 → m + Y` (one
//! agent refills the top inner state, the other is ejected to `Y` — the
//! next trap's gate, or the extra state `X`).
//!
//! [`TrapView`] computes the per-trap quantities the paper's analysis is
//! phrased in: *gaps*, *saturated*, *full*, *flat*, *surplus*, *tidy*, plus
//! the ring protocol's weight `K = k₁ + 2k₂` (Lemma 3).
//!
//! # Examples
//!
//! ```
//! use ssr_core::trap::TrapView;
//! use ssr_topology::TrapChain;
//!
//! let chain = TrapChain::uniform(1, 4, 0); // one trap: gate 0, inner 1..=3
//! let counts = [1u32, 0, 1, 2];            // gate 1, a gap at inner 1
//! let v = TrapView::read(&chain, 0, &counts);
//! assert_eq!(v.gaps, 1);
//! assert_eq!(v.occupancy, 4);
//! assert!(!v.is_saturated());
//! assert!(v.is_tidy()); // the overloaded inner state 3 is above the gap 1
//! ```

use ssr_topology::TrapChain;

/// Snapshot of a single trap's occupancy-derived quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrapView {
    /// Trap size (gate + inner states), `m + 1` in the paper.
    pub size: u32,
    /// Total agents in the trap (gate + inner).
    pub occupancy: u32,
    /// Agents in the gate state.
    pub gate_count: u32,
    /// Unoccupied inner states ("gaps").
    pub gaps: u32,
    /// Inner states occupied by at least two agents.
    pub overloaded_inner: u32,
    /// Agents in inner states.
    pub inner_agents: u32,
    /// Highest inner offset that is a gap (0 if none).
    highest_gap: u32,
    /// Lowest inner offset that is overloaded (`u32::MAX` if none).
    lowest_overload: u32,
}

impl TrapView {
    /// Read trap `t` of `chain` from per-state occupancy `counts`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range or `counts` does not cover the chain.
    pub fn read(chain: &TrapChain, t: usize, counts: &[u32]) -> Self {
        let size = chain.size(t);
        let gate_count = counts[chain.gate(t) as usize];
        let mut gaps = 0;
        let mut overloaded_inner = 0;
        let mut inner_agents = 0;
        let mut highest_gap = 0;
        let mut lowest_overload = u32::MAX;
        for b in 1..size {
            let c = counts[chain.state(t, b) as usize];
            inner_agents += c;
            if c == 0 {
                gaps += 1;
                highest_gap = b;
            } else if c >= 2 {
                overloaded_inner += 1;
                if lowest_overload == u32::MAX {
                    lowest_overload = b;
                }
            }
        }
        TrapView {
            size,
            occupancy: gate_count + inner_agents,
            gate_count,
            gaps,
            overloaded_inner,
            inner_agents,
            highest_gap,
            lowest_overload,
        }
    }

    /// Inner capacity `m` of the trap.
    pub fn inner_capacity(&self) -> u32 {
        self.size - 1
    }

    /// Saturated: no gaps among the inner states.
    pub fn is_saturated(&self) -> bool {
        self.gaps == 0
    }

    /// Full: saturated and at least `m + 1` agents occupy the trap
    /// (Fact 3: once full, a trap stays full).
    pub fn is_full(&self) -> bool {
        self.is_saturated() && self.occupancy >= self.size
    }

    /// Flat: no inner state holds more than one agent (Lemma 3).
    pub fn is_flat(&self) -> bool {
        self.overloaded_inner == 0
    }

    /// Surplus `l ≥ 0`: agents beyond `m + 1`; zero when not full-plus.
    pub fn surplus(&self) -> u32 {
        self.occupancy.saturating_sub(self.size)
    }

    /// Almost stabilised: full with exactly `m + 1` agents and an empty
    /// gate (every inner state holds agents, none at the gate).
    pub fn is_almost_stabilised(&self) -> bool {
        self.occupancy == self.size && self.is_saturated() && self.gate_count == 0
    }

    /// Fully stabilised: every state of the trap (gate included) is
    /// occupied by exactly one agent.
    pub fn is_fully_stabilised(&self) -> bool {
        self.occupancy == self.size
            && self.is_saturated()
            && self.gate_count == 1
            && self.is_flat()
    }

    /// Tidy (§2.2): every overloaded inner state has a higher offset than
    /// every gap in this trap.
    pub fn is_tidy(&self) -> bool {
        self.gaps == 0
            || self.overloaded_inner == 0
            || self.lowest_overload > self.highest_gap
    }
}

/// Read all traps of a chain.
pub fn views(chain: &TrapChain, counts: &[u32]) -> Vec<TrapView> {
    chain.traps().map(|t| TrapView::read(chain, t, counts)).collect()
}

/// A configuration restricted to a chain is *tidy* when every trap is tidy
/// (Lemma 2: tidiness is reached in time `O(mn)` whp and is absorbing).
pub fn is_tidy(chain: &TrapChain, counts: &[u32]) -> bool {
    chain
        .traps()
        .all(|t| TrapView::read(chain, t, counts).is_tidy())
}

/// Lemma 3's weight of a chain configuration: `K = k₁ + 2k₂` where `k₁`
/// counts flat traps with unoccupied gates and `k₂` the total gaps.
/// `K` never increases along the ring protocol's trajectories.
pub fn weight_k(chain: &TrapChain, counts: &[u32]) -> u64 {
    let mut k1 = 0u64;
    let mut k2 = 0u64;
    for t in chain.traps() {
        let v = TrapView::read(chain, t, counts);
        if v.is_flat() && v.gate_count == 0 {
            k1 += 1;
        }
        k2 += v.gaps as u64;
    }
    k1 + 2 * k2
}

/// Total agents across a chain.
pub fn chain_occupancy(chain: &TrapChain, counts: &[u32]) -> u64 {
    (chain.base_id()..chain.end_id())
        .map(|s| counts[s as usize] as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> TrapChain {
        TrapChain::uniform(1, 5, 0) // gate 0, inner 1..=4
    }

    #[test]
    fn empty_trap() {
        let c = chain();
        let v = TrapView::read(&c, 0, &[0, 0, 0, 0, 0]);
        assert_eq!(v.gaps, 4);
        assert_eq!(v.occupancy, 0);
        assert!(v.is_flat());
        assert!(!v.is_saturated());
        assert!(!v.is_full());
        assert!(v.is_tidy(), "no overloads → tidy");
        assert_eq!(v.surplus(), 0);
    }

    #[test]
    fn fully_stabilised_trap() {
        let c = chain();
        let v = TrapView::read(&c, 0, &[1, 1, 1, 1, 1]);
        assert!(v.is_fully_stabilised());
        assert!(v.is_full());
        assert!(v.is_flat());
        assert_eq!(v.surplus(), 0);
        assert!(!v.is_almost_stabilised(), "gate occupied");
    }

    #[test]
    fn almost_stabilised_trap() {
        let c = chain();
        // 5 agents, gate empty, one inner doubly occupied.
        let v = TrapView::read(&c, 0, &[0, 2, 1, 1, 1]);
        assert!(v.is_almost_stabilised());
        assert!(!v.is_fully_stabilised());
    }

    #[test]
    fn surplus_counts_extra_agents() {
        let c = chain();
        let v = TrapView::read(&c, 0, &[3, 1, 1, 1, 2]);
        assert_eq!(v.occupancy, 8);
        assert_eq!(v.surplus(), 3);
        assert!(v.is_full());
    }

    #[test]
    fn tidy_detection() {
        let c = chain();
        // Overload at inner 1, gap at inner 3: untidy.
        let v = TrapView::read(&c, 0, &[1, 2, 1, 0, 1]);
        assert!(!v.is_tidy());
        // Overload at inner 4, gap at inner 1: tidy.
        let v = TrapView::read(&c, 0, &[1, 0, 1, 1, 2]);
        assert!(v.is_tidy());
        // Equal position impossible (a state is a gap xor overloaded).
    }

    #[test]
    fn flatness_ignores_gate() {
        let c = chain();
        let v = TrapView::read(&c, 0, &[7, 1, 1, 0, 1]);
        assert!(v.is_flat(), "gate stacking does not unflatten a trap");
    }

    #[test]
    fn weight_k_cases() {
        let c = TrapChain::uniform(2, 3, 0); // two traps: ids 0..3, 3..6
        // Trap 0: flat, gate empty → k1 += 1; one gap → k2 += 1.
        // Trap 1: gate occupied, saturated, flat → contributes 0.
        let counts = [0u32, 1, 0, 1, 1, 1];
        assert_eq!(weight_k(&c, &counts), 1 + 2);
    }

    #[test]
    fn views_reads_all_traps() {
        let c = TrapChain::new(vec![2, 3], 0);
        let vs = views(&c, &[1, 1, 0, 2, 0]);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].occupancy, 2);
        assert_eq!(vs[1].occupancy, 2);
        assert_eq!(vs[1].gaps, 1);
    }

    #[test]
    fn chain_occupancy_sums() {
        let c = TrapChain::uniform(2, 2, 1); // ids 1..5
        let counts = [9u32, 1, 2, 0, 3, 9];
        assert_eq!(chain_occupancy(&c, &counts), 6);
    }

    #[test]
    fn is_tidy_over_chain() {
        let c = TrapChain::uniform(2, 3, 0);
        assert!(is_tidy(&c, &[1, 0, 2, 1, 1, 1]));
        assert!(!is_tidy(&c, &[1, 2, 0, 1, 1, 1]));
    }

    #[test]
    fn degenerate_size_one_trap_views() {
        let c = TrapChain::new(vec![1], 0);
        let v = TrapView::read(&c, 0, &[3]);
        assert_eq!(v.inner_capacity(), 0);
        assert!(v.is_saturated(), "no inner states → no gaps");
        assert!(v.is_full());
        assert_eq!(v.surplus(), 2);
        assert!(v.is_flat());
    }
}
