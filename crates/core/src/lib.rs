//! # ssr-core — self-stabilising ranking & leader-election protocols
//!
//! Implementation of every protocol from *"Improving Efficiency in
//! Near-State and State-Optimal Self-Stabilising Leader Election Population
//! Protocols"* (PODC 2025):
//!
//! | Module | Protocol | Extra states | Stabilisation (whp) |
//! |--------|----------|--------------|---------------------|
//! | [`generic`] | baseline `A_G` | 0 | `Θ(n²)` |
//! | [`ring`] | ring of traps (§3) | 0 | `O(min(k·n^{3/2}, n² log² n))` |
//! | [`line`] | lines of traps + `X` (§4) | 1 | `O(n^{7/4} log² n)` |
//! | [`tree`] | tree of ranks + buffer (§5) | `O(log n)` | `O(n log n)` |
//!
//! [`loose`] adds a **loosely-stabilising** leader election with
//! `O(log n)` states *total* (related work [45]): it is not a ranking
//! protocol and never silent, but quantifies what the paper's ≥ n-state
//! lower bound buys — a leader held forever rather than leased.
//!
//! All five implement [`ssr_engine::Protocol`] and declare their
//! productive classes through [`ssr_engine::InteractionSchema`], so every
//! engine (naive, exact jump chain, batched count) applies; the four
//! ranking protocols additionally uphold the *ranking contract*: silent ⇔
//! every agent in a distinct rank state ([`loose`] goes through the
//! schema's sparse-pair escape hatch and is never silent). [`trap`] provides the shared agent-trap machinery
//! (§2.1) and [`leader`] the leader-election wrapper (rank 0 = leader).
//!
//! ## Quickstart
//!
//! ```
//! use ssr_core::tree::TreeRanking;
//! use ssr_engine::{init, JumpSimulation, Protocol};
//! use ssr_engine::rng::Xoshiro256;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 200;
//! let protocol = TreeRanking::new(n);
//! let mut rng = Xoshiro256::seed_from_u64(1);
//! let start = init::uniform_random(n, protocol.num_states(), &mut rng);
//! let mut sim = JumpSimulation::new(&protocol, start, 2)?;
//! let report = sim.run_until_silent(u64::MAX)?;
//! println!("self-stabilised in parallel time {:.1}", report.parallel_time);
//! # Ok(())
//! # }
//! ```

// `unsafe_code = "forbid"` comes from [workspace.lints] in the root manifest.
// Truncation-cast audit (workspace denies `cast_possible_truncation`):
// protocol state arithmetic narrows usize⇄u32 `State`; every narrow is
// bounded by the population size n, which the engine's memory model
// (≥ 4 bytes/state of counts) keeps below 2³².
#![allow(clippy::cast_possible_truncation)]
#![warn(missing_docs)]

pub mod generic;
pub mod leader;
pub mod line;
pub mod loose;
pub mod ring;
pub mod trap;
pub mod tree;

pub use generic::GenericRanking;
pub use leader::{elect_leader, ElectionOutcome, LEADER_RANK};
pub use line::LineOfTraps;
pub use loose::LooseLeaderElection;
pub use ring::RingOfTraps;
pub use tree::TreeRanking;
