//! The state-optimal ring-of-traps ranking protocol (paper §3).
//!
//! An `(m, m+1)`-ring-of-traps consists of `m` traps of size `m + 1` whose
//! gate rules are chained cyclically:
//!
//! ```text
//! inner:  (a, b) + (a, b) → (a, b) + (a, b−1)            for b > 0
//! gate:   (a, 0) + (a, 0) → (a, m) + ((a+1) mod m, 0)
//! ```
//!
//! The protocol is **state-optimal** (`x = 0`) and stabilises silently in
//! `O(min(k·n^{3/2}, n² log² n))` whp from any `k`-distant configuration
//! (Theorem 1). The paper's potential argument uses the weight
//! `K = k₁ + 2k₂` (flat traps with empty gates + twice the gaps), which is
//! non-increasing along trajectories — see [`RingOfTraps::weight_k`] and the
//! invariant tests.
//!
//! For populations `n ≠ m(m+1)` the leftover states are scattered over the
//! traps (sizes differ by at most one), exactly as the paper prescribes.
//!
//! # Examples
//!
//! ```
//! use ssr_core::ring::RingOfTraps;
//! use ssr_engine::{init, JumpSimulation};
//! use ssr_engine::rng::Xoshiro256;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = RingOfTraps::new(30);        // m = 5: 5 traps of size 6
//! let mut rng = Xoshiro256::seed_from_u64(3);
//! let cfg = init::k_distant(30, 4, init::DuplicatePlacement::Random, &mut rng);
//! let mut sim = JumpSimulation::new(&p, cfg, 7)?;
//! let report = sim.run_until_silent(u64::MAX)?;
//! assert!(sim.is_silent());
//! println!("4-distant start ranked in parallel time {:.0}", report.parallel_time);
//! # Ok(())
//! # }
//! ```

use crate::trap::{self, TrapView};
use ssr_engine::protocol::{ClassSpec, InteractionSchema, Protocol, State};
use ssr_topology::TrapChain;

/// Ring-of-traps protocol instance for a population of `n` agents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingOfTraps {
    n: usize,
    chain: TrapChain,
}

/// Largest `m ≥ 1` with `m(m+1) ≤ n`.
fn ring_m(n: usize) -> usize {
    let mut m = (((4.0 * n as f64 + 1.0).sqrt() - 1.0) / 2.0).floor() as usize;
    m = m.max(1);
    while m > 1 && m * (m + 1) > n {
        m -= 1;
    }
    while (m + 1) * (m + 2) <= n {
        m += 1;
    }
    m
}

impl RingOfTraps {
    /// Build the ring for population size `n`, choosing the largest `m`
    /// with `m(m+1) ≤ n` and scattering the `n − m(m+1)` leftover states.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "population must be non-empty");
        let m = if n >= 2 { ring_m(n) } else { 1 };
        RingOfTraps {
            n,
            chain: TrapChain::spread(m, n, 0),
        }
    }

    /// Build with an explicit number of traps (sizes spread equally).
    ///
    /// # Panics
    ///
    /// Panics if `traps == 0` or `n < traps`.
    pub fn with_traps(n: usize, traps: usize) -> Self {
        RingOfTraps {
            n,
            chain: TrapChain::spread(traps, n, 0),
        }
    }

    /// Number of traps `m`.
    pub fn num_traps(&self) -> usize {
        self.chain.num_traps()
    }

    /// The underlying state layout.
    pub fn chain(&self) -> &TrapChain {
        &self.chain
    }

    /// Per-trap snapshot of a configuration.
    pub fn trap_views(&self, counts: &[u32]) -> Vec<TrapView> {
        trap::views(&self.chain, counts)
    }

    /// Lemma 3's non-increasing weight `K = k₁ + 2k₂`.
    pub fn weight_k(&self, counts: &[u32]) -> u64 {
        trap::weight_k(&self.chain, counts)
    }

    /// Lemma 2's tidiness predicate over all traps.
    pub fn is_tidy(&self, counts: &[u32]) -> bool {
        trap::is_tidy(&self.chain, counts)
    }

    /// Paper-style name of a state: `(a, b)` with `b = 0` the gate.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn describe_state(&self, s: State) -> String {
        let (t, b) = self.chain.locate(s);
        if b == 0 {
            format!("trap {t} gate")
        } else {
            format!("trap {t} inner {b}")
        }
    }
}

impl Protocol for RingOfTraps {
    fn name(&self) -> &str {
        "ring-of-traps"
    }

    fn population_size(&self) -> usize {
        self.n
    }

    fn num_states(&self) -> usize {
        self.n
    }

    fn num_rank_states(&self) -> usize {
        self.n
    }

    #[inline]
    fn transition(&self, initiator: State, responder: State) -> Option<(State, State)> {
        if initiator != responder {
            return None;
        }
        let (t, b) = self.chain.locate(initiator);
        if b > 0 {
            // R_i: descend one inner step.
            Some((initiator, initiator - 1))
        } else {
            // R_g: refill own top, eject to the next gate on the ring.
            let m = self.chain.num_traps();
            let out = (self.chain.top(t), self.chain.gate((t + 1) % m));
            if out == (initiator, responder) {
                None // degenerate single-state ring (n = 1)
            } else {
                Some(out)
            }
        }
    }
}

impl InteractionSchema for RingOfTraps {
    /// One class: every trap rule fires on equal-rank pairs only.
    fn interaction_classes(&self) -> Vec<ClassSpec> {
        vec![ClassSpec::equal_rank()]
    }

    fn equal_rank_rule(&self, s: State) -> bool {
        self.n > 1 || s != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_engine::init::{self, DuplicatePlacement};
    use ssr_engine::observer::{FnObserver, TransitionEvent};
    use ssr_engine::protocol::validate_ranking_contract;
    use ssr_engine::rng::Xoshiro256;
    use ssr_engine::{JumpSimulation, Simulation};

    #[test]
    fn ring_m_choices() {
        assert_eq!(ring_m(2), 1);
        assert_eq!(ring_m(5), 1);
        assert_eq!(ring_m(6), 2);
        assert_eq!(ring_m(11), 2);
        assert_eq!(ring_m(12), 3);
        assert_eq!(ring_m(30), 5);
        assert_eq!(ring_m(31), 5);
        assert_eq!(ring_m(42), 6);
    }

    #[test]
    fn exact_paper_sizes_use_uniform_traps() {
        let p = RingOfTraps::new(30); // 5 · 6
        assert_eq!(p.num_traps(), 5);
        for t in 0..5 {
            assert_eq!(p.chain().size(t), 6);
        }
    }

    #[test]
    fn leftover_states_scattered() {
        let p = RingOfTraps::new(33); // m = 5, leftover 3
        assert_eq!(p.num_traps(), 5);
        let sizes: Vec<u32> = (0..5).map(|t| p.chain().size(t)).collect();
        assert_eq!(sizes.iter().sum::<u32>(), 33);
        assert!(sizes.iter().all(|&s| s == 6 || s == 7));
    }

    #[test]
    fn contract_holds_various_n() {
        for n in [1usize, 2, 3, 6, 7, 12, 20, 30, 31, 57] {
            validate_ranking_contract(&RingOfTraps::new(n))
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn rules_match_paper() {
        let p = RingOfTraps::new(12); // m = 3, traps of size 4: gates 0,4,8
        // Inner rule: (a,b)+(a,b) → (a,b)+(a,b−1).
        assert_eq!(p.transition(3, 3), Some((3, 2)));
        assert_eq!(p.transition(1, 1), Some((1, 0)));
        // Gate rule: (a,0)+(a,0) → (a,m)+((a+1) mod m, 0).
        assert_eq!(p.transition(0, 0), Some((3, 4)));
        assert_eq!(p.transition(4, 4), Some((7, 8)));
        assert_eq!(p.transition(8, 8), Some((11, 0)), "ring wraps");
        // Distinct states never interact.
        assert_eq!(p.transition(0, 5), None);
    }

    #[test]
    fn stabilises_from_k_distant_starts() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        for n in [12usize, 20, 30] {
            let p = RingOfTraps::new(n);
            for k in [0usize, 1, 3, n / 2] {
                let cfg = init::k_distant(n, k, DuplicatePlacement::Random, &mut rng);
                let mut sim = JumpSimulation::new(&p, cfg, (n + k) as u64).unwrap();
                sim.run_until_silent(u64::MAX).unwrap();
                assert!(
                    sim.counts().iter().all(|&c| c == 1),
                    "n={n} k={k} did not rank"
                );
            }
        }
    }

    #[test]
    fn stabilises_from_stacked_start() {
        let p = RingOfTraps::new(20);
        let mut sim = JumpSimulation::new(&p, vec![0; 20], 5).unwrap();
        sim.run_until_silent(u64::MAX).unwrap();
        assert!(sim.counts().iter().all(|&c| c == 1));
    }

    #[test]
    fn weight_k_never_increases_once_tidy() {
        // Lemma 3's potential argument: K is monotone non-increasing.
        // We check it along a real trajectory from a tidy configuration
        // (the paper's argument covers tidy configurations; we start from
        // a k-distant start and begin checking once tidiness holds).
        let n = 20;
        let p = RingOfTraps::new(n);
        let mut rng = Xoshiro256::seed_from_u64(21);
        let cfg = init::k_distant(n, 6, DuplicatePlacement::Stacked, &mut rng);
        let mut sim = Simulation::new(&p, cfg, 77).unwrap();
        let mut last_k: Option<u64> = None;
        let mut tidy_seen = false;
        let mut violations = Vec::new();
        {
            let mut obs = FnObserver::new(|step, _e: &TransitionEvent, counts: &[u32]| {
                if !tidy_seen {
                    tidy_seen = p.is_tidy(counts);
                    if tidy_seen {
                        last_k = Some(p.weight_k(counts));
                    }
                    return;
                }
                let k = p.weight_k(counts);
                if let Some(prev) = last_k {
                    if k > prev {
                        violations.push((step, prev, k));
                    }
                }
                last_k = Some(k);
            });
            sim.run_until_silent_observed(u64::MAX, &mut obs).unwrap();
        }
        assert!(violations.is_empty(), "K increased: {violations:?}");
        assert!(tidy_seen, "trajectory never became tidy");
    }

    #[test]
    fn tidy_is_absorbing() {
        // Lemma 2: once tidy, configurations stay tidy.
        let n = 20;
        let p = RingOfTraps::new(n);
        let mut sim = Simulation::new(&p, vec![3; n], 13).unwrap();
        let mut was_tidy = false;
        let mut broke = false;
        {
            let mut obs = FnObserver::new(|_s, _e: &TransitionEvent, counts: &[u32]| {
                let tidy = p.is_tidy(counts);
                if was_tidy && !tidy {
                    broke = true;
                }
                was_tidy = tidy;
            });
            sim.run_until_silent_observed(u64::MAX, &mut obs).unwrap();
        }
        assert!(!broke, "tidiness was lost after being reached");
    }

    #[test]
    fn fact1_occupied_inner_states_stay_occupied() {
        let n = 30;
        let p = RingOfTraps::new(n);
        let mut rng = Xoshiro256::seed_from_u64(31);
        let cfg = init::k_distant(n, 8, DuplicatePlacement::Random, &mut rng);
        let chain = p.chain().clone();
        let mut sim = Simulation::new(&p, cfg, 3).unwrap();
        let mut occupied: Vec<bool> = sim
            .counts()
            .iter()
            .enumerate()
            .map(|(s, &c)| {
                let (_, b) = chain.locate(s as u32);
                b > 0 && c > 0
            })
            .collect();
        let mut violated = false;
        {
            let mut obs = FnObserver::new(|_s, _e: &TransitionEvent, counts: &[u32]| {
                for (s, &c) in counts.iter().enumerate() {
                    let (_, b) = chain.locate(s as u32);
                    if b == 0 {
                        continue;
                    }
                    if occupied[s] && c == 0 {
                        violated = true;
                    }
                    if c > 0 {
                        occupied[s] = true;
                    }
                }
            });
            sim.run_until_silent_observed(u64::MAX, &mut obs).unwrap();
        }
        assert!(!violated, "Fact 1: an occupied inner state became empty");
    }

    #[test]
    fn fact3_full_traps_stay_full() {
        let n = 30;
        let p = RingOfTraps::new(n);
        let chain = p.chain().clone();
        let mut sim = Simulation::new(&p, vec![0; n], 41).unwrap();
        let m = chain.num_traps();
        let mut was_full = vec![false; m];
        let mut violated = false;
        {
            let mut obs = FnObserver::new(|_s, _e: &TransitionEvent, counts: &[u32]| {
                for (t, was) in was_full.iter_mut().enumerate() {
                    let full = TrapView::read(&chain, t, counts).is_full();
                    if *was && !full {
                        violated = true;
                    }
                    *was |= full;
                }
            });
            sim.run_until_silent_observed(u64::MAX, &mut obs).unwrap();
        }
        assert!(!violated, "Fact 3: a full trap became non-full");
    }

    #[test]
    fn final_configuration_fully_stabilises_every_trap() {
        let p = RingOfTraps::new(30);
        let mut sim = JumpSimulation::new(&p, vec![7; 30], 2).unwrap();
        sim.run_until_silent(u64::MAX).unwrap();
        for v in p.trap_views(sim.counts()) {
            assert!(v.is_fully_stabilised());
        }
    }

    #[test]
    fn zero_distant_start_is_silent_immediately() {
        let p = RingOfTraps::new(12);
        let mut sim = JumpSimulation::new(&p, init::perfect_ranking(12), 1).unwrap();
        let rep = sim.run_until_silent(10).unwrap();
        assert_eq!(rep.interactions, 0);
    }
}

#[cfg(test)]
mod describe_tests {
    use super::*;

    #[test]
    fn state_names_follow_layout() {
        let p = RingOfTraps::new(12);
        assert_eq!(p.describe_state(0), "trap 0 gate");
        assert_eq!(p.describe_state(3), "trap 0 inner 3");
        assert_eq!(p.describe_state(4), "trap 1 gate");
    }
}

#[cfg(test)]
mod degeneration_tests {
    use super::*;
    use crate::generic::GenericRanking;

    /// With n size-1 traps the ring's transition function is literally
    /// A_G's single rule — the degeneration the A1 ablation relies on.
    #[test]
    fn n_traps_of_size_one_is_exactly_ag() {
        let n = 17;
        let ring = RingOfTraps::with_traps(n, n);
        let ag = GenericRanking::new(n);
        for a in 0..n as State {
            for b in 0..n as State {
                assert_eq!(
                    ring.transition(a, b),
                    ag.transition(a, b),
                    "pair ({a},{b})"
                );
            }
        }
    }

    /// One trap of size n is the "single giant trap": gate rule refills
    /// the top state and self-loops the ejected agent back to its own gate.
    #[test]
    fn single_trap_ring_rules() {
        let n = 6;
        let p = RingOfTraps::with_traps(n, 1);
        assert_eq!(p.transition(0, 0), Some((5, 0)), "gate refills top");
        assert_eq!(p.transition(3, 3), Some((3, 2)));
    }
}
