//! The one-extra-state ranking protocol built on lines of traps (paper §4).
//!
//! The `n` rank states form `m²` **lines of traps**, each a chain of `3m`
//! traps of size `m + 1` (state `(l, a, b)`: line `l`, trap `a`, offset
//! `b`). One extra state `X` collects the agents released by each line's
//! exit gate. Agents in `X` re-enter the system at line entrance gates,
//! routed by the cubic graph `G` (§4.2): every trap points at one of its
//! line's three neighbours in `G`, and an `X`-agent interacting with an
//! agent in that trap is sent to the pointed-to line's entrance. Rules:
//!
//! ```text
//! inner:    (l,a,b) + (l,a,b) → (l,a,b) + (l,a,b−1)        b > 0
//! gate:     (l,a,0) + (l,a,0) → (l,a,m) + (l,a−1,0)        a > 1
//! exit:     (l,1,0) + (l,1,0) → (l,1,m) + X
//! route:    (l,a,b) + X       → (l,a,b) + (lᵢ, 3m, 0)      i = ⌈a/m⌉ − 1
//! seed:     X + X             → X + (1, 3m, 0)
//! ```
//!
//! With `x = 1` extra state the protocol self-stabilises silently in
//! `O(n^{7/4} log² n) = o(n²)` whp from **any** initial configuration
//! (Theorem 2). Internally traps are indexed `0..3m` from the exit
//! (internal `t` = paper's `a − 1`), and populations `n ≠ 3m³(m+1)` scatter
//! their leftover states over the traps as the paper prescribes.
//!
//! The module also implements the paper's analysis toolkit: the Lemma 5
//! settling recursion (final `ᾱ`, `δ̄` vectors and line surplus `s(C_l)`
//! computable from the configuration alone), the excess/token vectors `ρ`,
//! the global surplus `s(C)`, deficit `d(C)` and token count `r(C)`, and
//! the Lemma 10 identity `s(C) = d(C)`.
//!
//! # Examples
//!
//! ```
//! use ssr_core::line::LineOfTraps;
//! use ssr_engine::{JumpSimulation, Protocol};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = LineOfTraps::new(72); // m = 1: one line of 3 traps, plus X
//! assert_eq!(p.num_states(), 73);
//! let mut sim = JumpSimulation::new(&p, vec![p.x_state(); 72], 1)?;
//! sim.run_until_silent(u64::MAX)?;
//! assert!(sim.is_silent());
//! # Ok(())
//! # }
//! ```

use ssr_engine::protocol::{ClassSpec, CrossDirection, InteractionSchema, Protocol, State};
use ssr_topology::{distribute, CubicGraph, TrapChain};

/// How `X`-agents are routed to line entrances (ablation knob; the paper
/// uses [`RoutingMode::CubicGraph`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutingMode {
    /// The paper's §4.2 design: traps point at the three neighbours of
    /// their line in the cubic graph `G` (diameter `O(log m)`).
    #[default]
    CubicGraph,
    /// Every trap routes `X`-agents back to its **own** line's entrance —
    /// no spreading at all. Lines that start empty can then only be fed
    /// through the `X + X` seeding rule into line 0 and whatever chains
    /// from there; stabilisation slows dramatically.
    SelfLoop,
    /// Every trap routes to the cyclically **next** line — spreading with
    /// a diameter-`Θ(m²)` topology instead of `O(log m)`.
    NextLine,
}

/// Line-of-traps protocol instance for a population of `n` agents.
#[derive(Debug, Clone)]
pub struct LineOfTraps {
    n: usize,
    /// Size parameter: `3m` traps of nominal size `m + 1` per line, `m²`
    /// lines.
    m: usize,
    lines: Vec<TrapChain>,
    graph: CubicGraph,
    routing: RoutingMode,
    /// State id of the extra state `X` (= `n`).
    x_id: State,
    /// Per rank state: index of its line.
    line_of: Vec<u32>,
}

/// Largest `m ≥ 1` with `3m³(m+1) ≤ n`.
fn line_m(n: usize) -> usize {
    let mut m = 1usize;
    while 3 * (m + 1).pow(3) * (m + 2) <= n {
        m += 1;
    }
    m
}

/// Settled state of one line under the Lemma 5 recursion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SettledLine {
    /// Final inner occupancy `ᾱ_t` per trap (internal order, exit first).
    pub alpha: Vec<u32>,
    /// Final gate occupancy `δ̄_t ∈ {0, 1}` per trap.
    pub delta: Vec<u32>,
    /// Agents the line releases to `X` before settling: the surplus
    /// `s(C_l)`.
    pub released: u64,
}

impl LineOfTraps {
    /// Minimum population the construction supports (one line needs at
    /// least its three exit-side trap gates).
    pub const MIN_POPULATION: usize = 3;

    /// Build the protocol for population size `n`, choosing the largest
    /// `m` with `3m³(m+1) ≤ n` and scattering leftover states.
    ///
    /// # Panics
    ///
    /// Panics if `n < Self::MIN_POPULATION`.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= Self::MIN_POPULATION,
            "line-of-traps needs n ≥ {} (got {n})",
            Self::MIN_POPULATION
        );
        Self::with_parameter(n, if n >= 6 { line_m(n) } else { 1 })
    }

    /// Build with an explicit size parameter `m` (`m²` lines of `3m`
    /// traps). Useful for controlled experiments.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n < 3m³` (not enough states for the gates).
    pub fn with_parameter(n: usize, m: usize) -> Self {
        assert!(m > 0, "parameter m must be positive");
        let num_lines = m * m;
        let traps_per_line = 3 * m;
        assert!(
            n >= num_lines * traps_per_line,
            "n = {n} cannot host {num_lines} lines of {traps_per_line} traps"
        );
        let per_line = distribute(n, num_lines);
        let mut lines = Vec::with_capacity(num_lines);
        let mut line_of = vec![0u32; n];
        let mut base = 0u32;
        for (l, &states) in per_line.iter().enumerate() {
            let chain = TrapChain::spread(traps_per_line, states as usize, base);
            for s in chain.base_id()..chain.end_id() {
                line_of[s as usize] = l as u32;
            }
            base = chain.end_id();
            lines.push(chain);
        }
        debug_assert_eq!(base as usize, n);
        LineOfTraps {
            n,
            m,
            lines,
            graph: CubicGraph::routing_graph(num_lines),
            routing: RoutingMode::CubicGraph,
            x_id: n as State,
            line_of,
        }
    }

    /// Replace the routing policy (ablation experiments). The paper's
    /// design is [`RoutingMode::CubicGraph`]; see [`RoutingMode`] for the
    /// degraded alternatives.
    pub fn with_routing(mut self, routing: RoutingMode) -> Self {
        self.routing = routing;
        self
    }

    /// The active routing policy.
    pub fn routing(&self) -> RoutingMode {
        self.routing
    }

    /// Routing target line for an `X`-agent meeting an agent of line `l`,
    /// trap `t` (internal index).
    pub fn route_target(&self, l: usize, t: usize) -> usize {
        match self.routing {
            RoutingMode::CubicGraph => self.graph.neighbors(l)[self.pointer_group(t)],
            RoutingMode::SelfLoop => l,
            RoutingMode::NextLine => (l + 1) % self.num_lines(),
        }
    }

    /// Size parameter `m`.
    pub fn parameter_m(&self) -> usize {
        self.m
    }

    /// Number of lines (`m²`).
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// Traps per line (`3m`).
    pub fn traps_per_line(&self) -> usize {
        3 * self.m
    }

    /// State id of the extra state `X`.
    pub fn x_state(&self) -> State {
        self.x_id
    }

    /// The routing graph `G`.
    pub fn graph(&self) -> &CubicGraph {
        &self.graph
    }

    /// Layout of line `l`.
    pub fn line(&self, l: usize) -> &TrapChain {
        &self.lines[l]
    }

    /// Line index of a rank state.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a rank state.
    pub fn line_of(&self, s: State) -> usize {
        assert!((s as usize) < self.n, "state {s} is not a rank state");
        self.line_of[s as usize] as usize
    }

    /// Entrance gate (paper `(l, 3m, 0)`) of line `l`.
    pub fn entrance_gate(&self, l: usize) -> State {
        let chain = &self.lines[l];
        chain.gate(chain.num_traps() - 1)
    }

    /// Exit gate (paper `(l, 1, 0)`) of line `l`.
    pub fn exit_gate(&self, l: usize) -> State {
        self.lines[l].gate(0)
    }

    /// Which neighbour of its line a trap points to (`i ∈ {0,1,2}`,
    /// groups of `m` traps from the exit side).
    pub fn pointer_group(&self, t: usize) -> usize {
        (t / self.m).min(2)
    }

    /// Number of agents in line `l`.
    pub fn line_occupancy(&self, l: usize, counts: &[u32]) -> u64 {
        crate::trap::chain_occupancy(&self.lines[l], counts)
    }

    /// Per-trap `(β_t, γ_t)` vectors of line `l` (internal order, exit
    /// first): inner agents and gate agents.
    pub fn line_vectors(&self, l: usize, counts: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let chain = &self.lines[l];
        let mut beta = Vec::with_capacity(chain.num_traps());
        let mut gamma = Vec::with_capacity(chain.num_traps());
        for t in chain.traps() {
            gamma.push(counts[chain.gate(t) as usize]);
            let b: u32 = (1..chain.size(t))
                .map(|off| counts[chain.state(t, off) as usize])
                .sum();
            beta.push(b);
        }
        (beta, gamma)
    }

    /// Lemma 5: settle line `l` assuming no agents arrive at its entrance.
    /// The result depends only on the configuration, not on scheduling.
    pub fn settle_line(&self, l: usize, counts: &[u32]) -> SettledLine {
        let chain = &self.lines[l];
        let (beta, gamma) = self.line_vectors(l, counts);
        let traps = chain.num_traps();
        let mut alpha = vec![0u32; traps];
        let mut delta = vec![0u32; traps];
        let mut x: u64 = 0; // agents descending from the trap above
        for t in (0..traps).rev() {
            let cap = (chain.size(t) - 1) as u64;
            let b = beta[t] as u64;
            let y = x + gamma[t] as u64;
            if b + y / 2 <= cap {
                alpha[t] = (b + y / 2) as u32;
                delta[t] = (y % 2) as u32;
                x = y / 2;
            } else {
                alpha[t] = cap as u32;
                delta[t] = 1;
                x = b + y - cap - 1;
            }
        }
        SettledLine {
            alpha,
            delta,
            released: x,
        }
    }

    /// The paper's per-trap excess (token) vector `ρ` of line `l`.
    pub fn excess_vector(&self, l: usize, counts: &[u32]) -> Vec<u64> {
        let chain = &self.lines[l];
        let (beta, gamma) = self.line_vectors(l, counts);
        chain
            .traps()
            .map(|t| {
                let cap = (chain.size(t) - 1) as u64;
                let b = beta[t] as u64;
                let g = gamma[t] as u64;
                if b + g / 2 <= cap {
                    g / 2
                } else {
                    b + g - cap - 1
                }
            })
            .collect()
    }

    /// Line surplus `s(C_l)`: agents the line will release before settling.
    pub fn line_surplus(&self, l: usize, counts: &[u32]) -> u64 {
        self.settle_line(l, counts).released
    }

    /// Line token count `r(C_l) = Σ_t ρ_t`.
    pub fn line_tokens(&self, l: usize, counts: &[u32]) -> u64 {
        self.excess_vector(l, counts).iter().sum()
    }

    /// Global surplus `s(C) = |C_X| + Σ_l s(C_l)` — the paper's measure of
    /// global flow.
    pub fn surplus(&self, counts: &[u32]) -> u64 {
        counts[self.x_id as usize] as u64
            + (0..self.num_lines())
                .map(|l| self.line_surplus(l, counts))
                .sum::<u64>()
    }

    /// Global token count `r(C) = |C_X| + Σ_l r(C_l)`; satisfies
    /// `s(C) ≤ r(C)` and is non-increasing while no agents enter lines.
    pub fn tokens(&self, counts: &[u32]) -> u64 {
        counts[self.x_id as usize] as u64
            + (0..self.num_lines())
                .map(|l| self.line_tokens(l, counts))
                .sum::<u64>()
    }

    /// Global deficit `d(C) = Σ_l (states of line l − settled occupancy)`,
    /// the distance to the final configuration. Lemma 10: `d(C) = s(C)`.
    pub fn deficit(&self, counts: &[u32]) -> u64 {
        (0..self.num_lines())
            .map(|l| {
                let settled = self.settle_line(l, counts);
                let kept: u64 = settled
                    .alpha
                    .iter()
                    .zip(&settled.delta)
                    .map(|(&a, &d)| a as u64 + d as u64)
                    .sum();
                self.lines[l].num_states() as u64 - kept
            })
            .sum()
    }

    /// Lemma 2 tidiness over every trap of every line: within each trap,
    /// all overloaded inner states lie above all gaps. The paper's token
    /// and settling analysis (Lemmas 5–18) applies to tidy configurations.
    pub fn is_tidy(&self, counts: &[u32]) -> bool {
        self.lines
            .iter()
            .all(|chain| crate::trap::is_tidy(chain, counts))
    }

    /// Paper-style name of a state: `(l, a, b)` (1-based trap index from
    /// the exit as in the paper) or `X`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn describe_state(&self, s: State) -> String {
        if s == self.x_id {
            return "X".to_string();
        }
        let l = self.line_of(s);
        let (t, b) = self.lines[l].locate(s);
        if b == 0 {
            format!("line {l} trap {} gate", t + 1)
        } else {
            format!("line {l} trap {} inner {b}", t + 1)
        }
    }

    /// A line is *indicated* when more than `⅓` of the trap states
    /// pointing to it are occupied (paper: `> m(m+1)` of the `3m(m+1)`
    /// pointing states).
    pub fn indicated(&self, counts: &[u32]) -> Vec<bool> {
        let mut pointing_occupied = vec![0u64; self.num_lines()];
        let mut pointing_total = vec![0u64; self.num_lines()];
        for (l, chain) in self.lines.iter().enumerate() {
            for t in chain.traps() {
                let target = self.route_target(l, t);
                pointing_total[target] += chain.size(t) as u64;
                for b in 0..chain.size(t) {
                    if counts[chain.state(t, b) as usize] > 0 {
                        pointing_occupied[target] += 1;
                    }
                }
            }
        }
        pointing_occupied
            .iter()
            .zip(&pointing_total)
            .map(|(&occ, &tot)| 3 * occ > tot)
            .collect()
    }
}

impl Protocol for LineOfTraps {
    fn name(&self) -> &str {
        "line-of-traps (x = 1)"
    }

    fn population_size(&self) -> usize {
        self.n
    }

    fn num_states(&self) -> usize {
        self.n + 1
    }

    fn num_rank_states(&self) -> usize {
        self.n
    }

    #[inline]
    fn transition(&self, initiator: State, responder: State) -> Option<(State, State)> {
        if initiator == responder {
            if initiator == self.x_id {
                // X + X → X + (line 1 entrance).
                return Some((self.x_id, self.entrance_gate(0)));
            }
            let l = self.line_of[initiator as usize] as usize;
            let chain = &self.lines[l];
            let (t, b) = chain.locate(initiator);
            if b > 0 {
                // Inner descent.
                Some((initiator, initiator - 1))
            } else if t > 0 {
                // Gate: refill own top, pass one agent toward the exit.
                Some((chain.top(t), chain.gate(t - 1)))
            } else {
                // Exit gate releases to X.
                Some((chain.top(0), self.x_id))
            }
        } else if responder == self.x_id && initiator != self.x_id {
            // Routing: the rank initiator directs the X responder to the
            // entrance gate of the line its trap points at.
            let l = self.line_of[initiator as usize] as usize;
            let (t, _b) = self.lines[l].locate(initiator);
            let target = self.route_target(l, t);
            Some((initiator, self.entrance_gate(target)))
        } else {
            None
        }
    }
}

impl InteractionSchema for LineOfTraps {
    /// Three classes: trap descents on equal ranks, the `X + X` drift rule
    /// on every extra pair, and the routing rule `j + X` with the rank
    /// agent as initiator.
    fn interaction_classes(&self) -> Vec<ClassSpec> {
        vec![
            ClassSpec::equal_rank(),
            ClassSpec::extra_extra(),
            ClassSpec::rank_extra(CrossDirection::RankInitiator),
        ]
    }

    fn equal_rank_rule(&self, _s: State) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_engine::init::{self, DuplicatePlacement};
    use ssr_engine::protocol::validate_ranking_contract;
    use ssr_engine::rng::Xoshiro256;
    use ssr_engine::JumpSimulation;

    #[test]
    fn line_m_thresholds() {
        // 3m³(m+1): m=1 → 6, m=2 → 72, m=3 → 324.
        assert_eq!(line_m(6), 1);
        assert_eq!(line_m(71), 1);
        assert_eq!(line_m(72), 2);
    }

    #[test]
    fn parameter_choice_matches_formula() {
        // 3m³(m+1): m=1 → 6, m=2 → 72, m=3 → 324, m=4 → 960.
        assert_eq!(LineOfTraps::new(6).parameter_m(), 1);
        assert_eq!(LineOfTraps::new(71).parameter_m(), 1);
        assert_eq!(LineOfTraps::new(72).parameter_m(), 2);
        assert_eq!(LineOfTraps::new(323).parameter_m(), 2);
        assert_eq!(LineOfTraps::new(324).parameter_m(), 3);
        assert_eq!(LineOfTraps::new(960).parameter_m(), 4);
    }

    #[test]
    fn layout_counts() {
        let p = LineOfTraps::new(72);
        assert_eq!(p.num_lines(), 4);
        assert_eq!(p.traps_per_line(), 6);
        assert_eq!(p.num_states(), 73);
        assert_eq!(p.x_state(), 72);
        let total: usize = (0..4).map(|l| p.line(l).num_states()).sum();
        assert_eq!(total, 72);
    }

    #[test]
    fn contract_holds_various_n() {
        for n in [3usize, 4, 6, 10, 20, 72, 100, 150] {
            validate_ranking_contract(&LineOfTraps::new(n))
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn rules_match_paper() {
        let p = LineOfTraps::new(6); // m=1: 1 line, 3 traps of size 2.
        // Line layout: trap 0 (exit) = states {0 gate, 1 top},
        // trap 1 = {2, 3}, trap 2 (entrance) = {4, 5}.
        assert_eq!(p.entrance_gate(0), 4);
        assert_eq!(p.exit_gate(0), 0);
        // Inner descent.
        assert_eq!(p.transition(1, 1), Some((1, 0)));
        // Gate of a middle trap: refill own top, pass down.
        assert_eq!(p.transition(2, 2), Some((3, 0)));
        // Exit gate releases to X.
        assert_eq!(p.transition(0, 0), Some((1, 6)));
        // X + X seeds line 0's entrance.
        assert_eq!(p.transition(6, 6), Some((6, 4)));
        // Rank + X routes to a neighbour's entrance (single line → itself).
        assert_eq!(p.transition(3, 6), Some((3, 4)));
        // X as initiator with a rank responder: no rule.
        assert_eq!(p.transition(6, 3), None);
    }

    #[test]
    fn pointer_groups_split_in_thirds() {
        let p = LineOfTraps::new(72); // m=2: 6 traps per line.
        let groups: Vec<usize> = (0..6).map(|t| p.pointer_group(t)).collect();
        assert_eq!(groups, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn stabilises_from_all_x_start() {
        for n in [6usize, 20, 72] {
            let p = LineOfTraps::new(n);
            let mut sim =
                JumpSimulation::new(&p, vec![p.x_state(); n], n as u64).unwrap();
            sim.run_until_silent(u64::MAX).unwrap();
            assert!(sim.counts()[..n].iter().all(|&c| c == 1), "n={n}");
            assert_eq!(sim.counts()[n], 0);
        }
    }

    #[test]
    fn stabilises_from_random_and_k_distant_starts() {
        let mut rng = Xoshiro256::seed_from_u64(55);
        for n in [6usize, 24, 72] {
            let p = LineOfTraps::new(n);
            for trial in 0..4 {
                let cfg = init::uniform_random(n, n + 1, &mut rng);
                let mut sim = JumpSimulation::new(&p, cfg, trial).unwrap();
                sim.run_until_silent(u64::MAX).unwrap();
                assert!(sim.is_silent(), "n={n} trial={trial}");
            }
            let cfg = init::k_distant(n, n / 3, DuplicatePlacement::Stacked, &mut rng);
            let mut sim = JumpSimulation::new(&p, cfg, 99).unwrap();
            sim.run_until_silent(u64::MAX).unwrap();
            assert!(sim.is_silent());
        }
    }

    #[test]
    fn settle_line_conserves_agents() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let p = LineOfTraps::new(72);
        for trial in 0..20 {
            let cfg = init::uniform_random(72, 73, &mut rng);
            let counts = init::counts(&cfg, 73);
            for l in 0..p.num_lines() {
                let settled = p.settle_line(l, &counts);
                let kept: u64 = settled
                    .alpha
                    .iter()
                    .zip(&settled.delta)
                    .map(|(&a, &d)| a as u64 + d as u64)
                    .sum();
                assert_eq!(
                    kept + settled.released,
                    p.line_occupancy(l, &counts),
                    "trial {trial} line {l}"
                );
                // δ̄ is 0/1 and ᾱ within capacity.
                for (t, (&a, &d)) in
                    settled.alpha.iter().zip(&settled.delta).enumerate()
                {
                    assert!(d <= 1);
                    assert!(a < p.line(l).size(t));
                }
            }
        }
    }

    #[test]
    fn lemma_10_surplus_equals_deficit() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        for n in [6usize, 30, 72, 100] {
            let p = LineOfTraps::new(n);
            for trial in 0..25 {
                let cfg = init::uniform_random(n, n + 1, &mut rng);
                let counts = init::counts(&cfg, n + 1);
                assert_eq!(
                    p.surplus(&counts),
                    p.deficit(&counts),
                    "n={n} trial={trial}"
                );
            }
        }
    }

    #[test]
    fn surplus_bounded_by_tokens() {
        let mut rng = Xoshiro256::seed_from_u64(23);
        let p = LineOfTraps::new(72);
        for trial in 0..25 {
            let cfg = init::uniform_random(72, 73, &mut rng);
            let counts = init::counts(&cfg, 73);
            assert!(
                p.surplus(&counts) <= p.tokens(&counts),
                "trial {trial}: s(C) > r(C)"
            );
        }
    }

    #[test]
    fn perfect_ranking_has_zero_surplus_tokens_deficit() {
        let p = LineOfTraps::new(72);
        let counts = init::counts(&init::perfect_ranking(72), 73);
        assert_eq!(p.surplus(&counts), 0);
        assert_eq!(p.tokens(&counts), 0);
        assert_eq!(p.deficit(&counts), 0);
        let indicated = p.indicated(&counts);
        assert!(indicated.iter().all(|&b| b), "full lines are indicated");
    }

    #[test]
    fn settled_silent_configuration_matches_simulation_of_closed_line() {
        // Run the closed single-line instance (m=1 has one line; its exit
        // feeds X, and X feeds back only via interactions we can reach).
        // We instead verify Lemma 5 on the full protocol: after global
        // stabilisation every line's settled vectors equal its actual
        // occupancy, with zero further release.
        let p = LineOfTraps::new(24);
        let mut sim = JumpSimulation::new(&p, vec![p.x_state(); 24], 3).unwrap();
        sim.run_until_silent(u64::MAX).unwrap();
        let counts = sim.counts();
        for l in 0..p.num_lines() {
            let settled = p.settle_line(l, counts);
            assert_eq!(settled.released, 0);
            let (beta, gamma) = p.line_vectors(l, counts);
            assert_eq!(settled.alpha, beta);
            assert_eq!(settled.delta, gamma);
        }
    }

    #[test]
    #[should_panic(expected = "n ≥ 3")]
    fn too_small_population_rejected() {
        LineOfTraps::new(2);
    }
}

#[cfg(test)]
mod routing_tests {
    use super::*;
    use ssr_engine::protocol::validate_ranking_contract;
    use ssr_engine::JumpSimulation;

    #[test]
    fn ablation_routings_satisfy_contract() {
        for mode in [RoutingMode::CubicGraph, RoutingMode::SelfLoop, RoutingMode::NextLine] {
            let p = LineOfTraps::new(72).with_routing(mode);
            validate_ranking_contract(&p).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn route_targets_per_mode() {
        let p = LineOfTraps::new(72); // m = 2, 4 lines, 6 traps per line
        assert_eq!(p.route_target(1, 0), p.graph().neighbors(1)[0]);
        let p = p.with_routing(RoutingMode::SelfLoop);
        assert_eq!(p.route_target(1, 0), 1);
        assert_eq!(p.route_target(3, 5), 3);
        let p = p.with_routing(RoutingMode::NextLine);
        assert_eq!(p.route_target(3, 0), 0, "wraps around");
        assert_eq!(p.route_target(0, 4), 1);
    }

    #[test]
    fn degraded_routing_still_stabilises() {
        // Correctness (stability) is routing-independent; only speed
        // degrades. NextLine keeps full spreading, SelfLoop still seeds
        // line 0 through X + X and percolates from there.
        for mode in [RoutingMode::NextLine, RoutingMode::SelfLoop] {
            let p = LineOfTraps::new(24).with_routing(mode);
            let mut sim = JumpSimulation::new(&p, vec![p.x_state(); 24], 3).unwrap();
            sim.run_until_silent(u64::MAX)
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
            assert!(sim.is_silent(), "{mode:?}");
        }
    }
}

#[cfg(test)]
mod describe_tests {
    use super::*;

    #[test]
    fn state_names_follow_paper_coordinates() {
        let p = LineOfTraps::new(6); // 1 line, 3 traps of size 2
        assert_eq!(p.describe_state(0), "line 0 trap 1 gate");
        assert_eq!(p.describe_state(1), "line 0 trap 1 inner 1");
        assert_eq!(p.describe_state(4), "line 0 trap 3 gate");
        assert_eq!(p.describe_state(6), "X");
    }
}
