//! `ssr` — command-line driver for the self-stabilising ranking suite.
//!
//! ```text
//! ssr run    --protocol tree --n 1000 [--start uniform|stacked|k-distant]
//!            [--k 5] [--seed 7] [--engine auto|naive|jump|count] [--max 1000000000]
//!            [--fault-burst t:f[,t:f...]] [--fault-rate R] [--churn R] [--byzantine K]
//! ssr sweep  --protocol line --ns 72,324,960 [--trials 10] [--seed 0]
//! ssr elect  --protocol ring --n 100 [--k 5] [--seed 7]
//! ssr exact  --protocol generic --n 5 [--limit 200000] [--trials 20000]
//! ssr check  --protocol ring --n 6 [--limit 3000000]
//! ssr faults --protocol ring --n 100 --faults 8 [--trials 10]
//! ssr info   --protocol tree --n 1000
//! ssr serve  --dir SPOOL [--cores N] [--checkpoint-every K] [--drain true]
//! ssr submit --dir SPOOL --protocol tree --n 65536 [--seed 7] [--wait true]
//! ssr status --dir SPOOL [--key HEX]
//! ssr help
//! ```

// Audited: CLI argument handling narrows user-supplied f64/u64 sizes to usize/u32; values are validated population sizes well below 2^32.
#![allow(clippy::cast_possible_truncation)]

mod args;

use args::Args;
use ssr_analysis::sweep::{sweep, SweepOptions};
use ssr_analysis::Summary;
use ssr_core::{elect_leader, GenericRanking, LineOfTraps, RingOfTraps, TreeRanking};
use ssr_engine::init::{self, DuplicatePlacement};
use ssr_engine::rng::{derive_seed, Xoshiro256};
use ssr_engine::{
    run_with_plan, EngineKind, FaultPlan, Init, InteractionSchema, JumpSimulation, Protocol,
    Scenario, State,
};
use ssr_service::{daemon, Daemon, DaemonConfig, JobInit, JobKey, JobSpec};

/// The four ranking protocols behind one object-safe schema handle.
fn make_protocol(kind: &str, n: usize) -> Result<Box<dyn InteractionSchema + Sync>, String> {
    match kind {
        "generic" | "ag" => Ok(Box::new(GenericRanking::new(n))),
        "ring" => Ok(Box::new(RingOfTraps::new(n))),
        "line" => Ok(Box::new(LineOfTraps::new(n))),
        "tree" => Ok(Box::new(TreeRanking::new(n))),
        other => Err(format!(
            "unknown protocol '{other}' (expected generic|ring|line|tree)"
        )),
    }
}

fn make_start(
    p: &(impl Protocol + ?Sized),
    start: &str,
    k: usize,
    seed: u64,
) -> Result<Vec<State>, String> {
    let n = p.population_size();
    let mut rng = Xoshiro256::seed_from_u64(derive_seed(seed, 0x5EED));
    match start {
        "uniform" => Ok(init::uniform_random(n, p.num_states(), &mut rng)),
        "stacked" => Ok(init::all_in(n, 0)),
        "perfect" => Ok(init::perfect_ranking(n)),
        "k-distant" => {
            if k >= n {
                return Err(format!("--k must be below n (got {k})"));
            }
            Ok(init::k_distant(n, k, DuplicatePlacement::Random, &mut rng))
        }
        other => Err(format!(
            "unknown start '{other}' (expected uniform|stacked|perfect|k-distant)"
        )),
    }
}

/// Engine selection: `--engine auto|naive|jump|count` (default `auto` —
/// count at large `n`, jump below), with the legacy `--naive <anything>`
/// flag kept as an alias for `--engine naive`.
fn engine_kind(a: &Args) -> Result<EngineKind, String> {
    if a.has("naive") {
        return Ok(EngineKind::Naive);
    }
    EngineKind::parse(&a.str_or("engine", "auto"))
}

/// Assemble the `run` command's adversary flags into a [`FaultPlan`]:
/// `--fault-burst t:f[,t:f...]` (timed one-shot bursts), `--fault-rate R`
/// (background corruption probability per interaction), `--churn R`
/// (replacement churn) and `--byzantine K` (stuck-at agents). Returns
/// `None` when no adversary flag is present.
fn parse_fault_plan(a: &Args) -> Result<Option<FaultPlan>, String> {
    let mut plan = FaultPlan::new();
    let mut any = false;
    if a.has("fault-burst") {
        for part in a.str_or("fault-burst", "").split(',') {
            let (t, f) = part.trim().split_once(':').ok_or_else(|| {
                format!("--fault-burst expects time:faults entries, got '{part}'")
            })?;
            let t: u128 = t
                .trim()
                .parse()
                .map_err(|_| format!("--fault-burst: '{t}' is not an interaction time"))?;
            let f: u32 = f
                .trim()
                .parse()
                .map_err(|_| format!("--fault-burst: '{f}' is not a fault count"))?;
            plan = plan.burst_at(t, f);
        }
        any = true;
    }
    let rate = a.f64_or("fault-rate", 0.0)?;
    if rate != 0.0 {
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(format!("--fault-rate must be a probability, got {rate}"));
        }
        plan = plan.rate(rate);
        any = true;
    }
    let churn = a.f64_or("churn", 0.0)?;
    if churn != 0.0 {
        if !churn.is_finite() || !(0.0..=1.0).contains(&churn) {
            return Err(format!("--churn must be a probability, got {churn}"));
        }
        plan = plan.churn(churn);
        any = true;
    }
    let byz = a.usize_or("byzantine", 0)?;
    if byz > 0 {
        let byz = u32::try_from(byz).map_err(|_| "--byzantine is too large".to_string())?;
        plan = plan.byzantine(byz);
        any = true;
    }
    Ok(any.then_some(plan))
}

fn cmd_run(a: &Args) -> Result<(), String> {
    let n = a.usize_or("n", 100)?;
    let p = make_protocol(&a.str_or("protocol", "tree"), n)?;
    let seed = a.u64_or("seed", 1)?;
    let max = a.u64_or("max", u64::MAX)?;
    let threads = a.usize_or("threads", 0)?;
    let kind = engine_kind(a)?;
    let start = make_start(p.as_ref(), &a.str_or("start", "uniform"), a.usize_or("k", 1)?, seed)?;
    let make = move |_seed| start.clone();
    let scenario = Scenario::new(p.as_ref())
        .engine(kind)
        .init(Init::Custom(&make))
        .base_seed(seed)
        .threads(threads);
    let plan = parse_fault_plan(a)?;
    let mut sim = scenario.build_engine(0).map_err(|e| e.to_string())?;
    println!(
        "{}: n = {n}, {} states ({} extra), seed {seed}, engine {} ({kind})",
        p.name(),
        p.num_states(),
        p.num_extra_states(),
        sim.engine_name()
    );
    if let Some(plan) = plan {
        if plan.may_never_silence() && max == u64::MAX {
            return Err(
                "this fault plan has a persistent process (rate/churn/byzantine) and can \
                 run forever; set a finite --max"
                    .to_string(),
            );
        }
        // Same per-trial fault-seed derivation the Scenario runner uses.
        let fault_seed = derive_seed(seed, 0) ^ 0xFA17_FA17_FA17_FA17;
        let outcome = run_with_plan(sim.as_mut(), &plan, fault_seed, max);
        if outcome.silent {
            println!(
                "silent after {} interactions (parallel time {:.1}); {} productive",
                outcome.report.interactions,
                outcome.report.parallel_time,
                outcome.report.productive_interactions
            );
        } else {
            println!(
                "cap reached after {} interactions without lasting silence \
                 (parallel time {:.1}); {} productive",
                outcome.report.interactions,
                outcome.report.parallel_time,
                outcome.report.productive_interactions
            );
        }
        println!(
            "adversary: availability {:.4}, mean k {:.2}, max k {}, \
             {} faults injected, {} churn events",
            outcome.availability,
            outcome.mean_k,
            outcome.max_k,
            outcome.faults_injected,
            outcome.churn_events
        );
        for b in &outcome.bursts {
            match b.recovery {
                Some(r) => println!(
                    "  burst t={} f={}: k after = {}, recovered in {} interactions \
                     (parallel time {:.1})",
                    b.time,
                    b.faults,
                    b.k_after,
                    r,
                    r as f64 / n as f64
                ),
                None => println!(
                    "  burst t={} f={}: k after = {}, NOT recovered within the cap",
                    b.time, b.faults, b.k_after
                ),
            }
        }
        return Ok(());
    }
    let report = sim.run_until_silent(max).map_err(|e| e.to_string())?;
    println!(
        "silent after {} interactions (parallel time {:.1}); {} productive",
        report.interactions, report.parallel_time, report.productive_interactions
    );
    Ok(())
}

fn cmd_sweep(a: &Args) -> Result<(), String> {
    let kind = a.str_or("protocol", "tree");
    let ns = a.usize_list_or("ns", &[64, 128, 256, 512])?;
    let trials = a.usize_or("trials", 10)?;
    let seed = a.u64_or("seed", 0)?;
    let threads = a.usize_or("threads", 0)?;
    let engine = engine_kind(a)?;
    let grid: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    // The sweep driver needs a concrete type; dispatch per protocol.
    macro_rules! run_sweep {
        ($ctor:expr) => {{
            let res = sweep(
                &grid,
                $ctor,
                |p, s| {
                    let mut rng = Xoshiro256::seed_from_u64(s);
                    init::uniform_random(p.population_size(), p.num_states(), &mut rng)
                },
                &SweepOptions::new(trials)
                    .with_base_seed(seed)
                    .with_engine(engine)
                    .with_threads(threads),
            );
            print!("{}", res.to_table("n").render());
            if res.rows.len() >= 2 && res.rows.iter().all(|r| r.median > 0.0) {
                let fit = res.fit_median();
                println!(
                    "fit: median ≈ {:.3}·n^{:.2} (R² = {:.3})",
                    fit.constant, fit.exponent, fit.r_squared
                );
            }
        }};
    }
    match kind.as_str() {
        "generic" | "ag" => run_sweep!(|x: f64| GenericRanking::new(x as usize)),
        "ring" => run_sweep!(|x: f64| RingOfTraps::new(x as usize)),
        "line" => run_sweep!(|x: f64| LineOfTraps::new(x as usize)),
        "tree" => run_sweep!(|x: f64| TreeRanking::new(x as usize)),
        other => return Err(format!("unknown protocol '{other}'")),
    }
    Ok(())
}

fn cmd_elect(a: &Args) -> Result<(), String> {
    let n = a.usize_or("n", 100)?;
    let p = make_protocol(&a.str_or("protocol", "ring"), n)?;
    let seed = a.u64_or("seed", 1)?;
    let start = make_start(p.as_ref(), &a.str_or("start", "k-distant"), a.usize_or("k", 1)?, seed)?;
    let out = elect_leader(p.as_ref(), start, seed, u64::MAX).map_err(|e| e.to_string())?;
    println!(
        "{}: agent #{} elected leader after parallel time {:.1}",
        p.name(),
        out.leader,
        out.report.parallel_time
    );
    Ok(())
}

fn cmd_exact(a: &Args) -> Result<(), String> {
    let n = a.usize_or("n", 5)?;
    let kind = a.str_or("protocol", "generic");
    let p = make_protocol(&kind, n)?;
    let limit = a.usize_or("limit", 200_000)?;
    let trials = a.u64_or("trials", 20_000)?;
    let start = vec![0 as State; n];
    let exact = ssr_analysis::exact::expected_interactions(p.as_ref(), &start, limit)
        .map_err(|e| e.to_string())?;
    let times: Vec<f64> = (0..trials)
        .map(|t| {
            let mut sim = JumpSimulation::new(p.as_ref(), start.clone(), 50_000 + t)
                .expect("valid start");
            sim.run_until_silent(u64::MAX).expect("stable").interactions as f64
        })
        .collect();
    let s = Summary::of(&times);
    println!("{} at n = {n}, stacked start:", p.name());
    println!("  exact expected interactions: {exact:.4}");
    println!(
        "  simulated mean over {trials} trials: {:.4} ± {:.4}",
        s.mean,
        s.ci95_half_width()
    );
    let rel = (exact - s.mean).abs() / exact;
    println!("  relative gap: {:.4} ({})", rel, if rel < 0.02 { "OK" } else { "LARGE" });
    Ok(())
}

fn cmd_check(a: &Args) -> Result<(), String> {
    let n = a.usize_or("n", 6)?;
    let p = make_protocol(&a.str_or("protocol", "generic"), n)?;
    let limit = a.usize_or("limit", 3_000_000)?;
    println!(
        "model-checking {} at n = {n} over the full configuration space…",
        p.name()
    );
    let cert =
        ssr_analysis::verify_stability(p.as_ref(), limit).map_err(|e| e.to_string())?;
    println!(
        "certified stable & silent: {} configurations enumerated, \
         {} silent (the perfect ranking), {} transitions",
        cert.configurations, cert.silent_configurations, cert.transitions
    );
    Ok(())
}

fn cmd_faults(a: &Args) -> Result<(), String> {
    let n = a.usize_or("n", 100)?;
    let p = make_protocol(&a.str_or("protocol", "ring"), n)?;
    let faults = a.usize_or("faults", 4)?;
    let trials = a.u64_or("trials", 10)?;
    let seed = a.u64_or("seed", 1)?;
    let mut times = Vec::with_capacity(trials as usize);
    let mut ks = Vec::with_capacity(trials as usize);
    for t in 0..trials {
        let rep = ssr_engine::recovery_after_faults(p.as_ref(), faults, derive_seed(seed, t), u64::MAX)
            .map_err(|e| e.to_string())?;
        times.push(rep.recovered.parallel_time);
        ks.push(rep.distance_after_faults as f64);
    }
    let st = Summary::of(&times);
    let sk = Summary::of(&ks);
    println!(
        "{}: {faults} faults on a silent n = {n} population ({trials} trials)",
        p.name()
    );
    println!("  mean k-distance after faults: {:.1}", sk.mean);
    println!(
        "  recovery parallel time: median {:.0}, p95 {:.0}, max {:.0}",
        st.median, st.p95, st.max
    );
    Ok(())
}

fn cmd_info(a: &Args) -> Result<(), String> {
    let n = a.usize_or("n", 100)?;
    let p = make_protocol(&a.str_or("protocol", "tree"), n)?;
    println!("protocol:     {}", p.name());
    println!("population:   {n}");
    println!("rank states:  {}", p.num_rank_states());
    println!("extra states: {}", p.num_extra_states());
    println!("total states: {}", p.num_states());
    let classes = p.interaction_classes();
    println!(
        "interaction classes: {}",
        classes
            .iter()
            .map(|c| format!("{:?}", c.class))
            .collect::<Vec<_>>()
            .join(", ")
    );
    ssr_engine::protocol::validate_distinct_ranks_silent(p.as_ref())
        .map(|_| println!("perfect rankings are silent: yes"))
        .map_err(|e| format!("contract violation: {e}"))?;
    Ok(())
}

/// Assemble a service [`JobSpec`] from the `submit` command's flags (the
/// same protocol/start/engine/fault vocabulary as `run`).
fn parse_job_spec(a: &Args) -> Result<JobSpec, String> {
    let n = a.usize_or("n", 100)?;
    let mut spec = JobSpec::new(&a.str_or("protocol", "tree"), n, a.u64_or("seed", 1)?);
    spec.engine = engine_kind(a)?;
    spec.max_interactions = a.u64_or("max", u64::MAX)?;
    spec.threads = a.usize_or("threads", 0)?;
    spec.init = match a.str_or("start", "uniform").as_str() {
        "uniform" => JobInit::Uniform,
        "stacked" => JobInit::Stacked,
        "perfect" => JobInit::Perfect,
        "k-distant" => JobInit::KDistant(a.usize_or("k", 1)?),
        other => {
            return Err(format!(
                "unknown start '{other}' (expected uniform|stacked|perfect|k-distant)"
            ))
        }
    };
    if let Some(plan) = parse_fault_plan(a)? {
        spec.bursts = plan.bursts().to_vec();
        spec.fault_rate = plan.fault_rate();
        spec.churn = plan.churn_rate();
        spec.byzantine = plan.byzantine_agents();
    }
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

fn spool_dir(a: &Args) -> Result<std::path::PathBuf, String> {
    if !a.has("dir") {
        return Err("--dir <spool directory> is required".to_string());
    }
    Ok(std::path::PathBuf::from(a.str_or("dir", "")))
}

fn cmd_serve(a: &Args) -> Result<(), String> {
    let mut cfg = DaemonConfig::new(spool_dir(a)?);
    cfg.cores = a.usize_or("cores", 0)?;
    cfg.checkpoint_every = a.u64_or("checkpoint-every", 1 << 22)? as u128;
    cfg.poll_ms = a.u64_or("poll-ms", 20)?;
    cfg.drain = a.str_or("drain", "false") == "true";
    cfg.max_jobs = match a.usize_or("max-jobs", 0)? {
        0 => None,
        m => Some(m),
    };
    cfg.kill_after_checkpoints = match a.usize_or("kill-after-ckpts", 0)? {
        0 => None,
        k => Some(k as u32),
    };
    let dir = cfg.dir.display().to_string();
    let mut daemon = Daemon::new(cfg).map_err(|e| e.to_string())?;
    println!("serving jobs from {dir} (ctrl-c to stop)");
    let stats = daemon.run().map_err(|e| e.to_string())?;
    println!(
        "daemon done: {} completed ({} cache hits, {} resumed), {} failed, \
         {} interrupted, {} recovered at startup",
        stats.completed,
        stats.cache_hits,
        stats.resumed,
        stats.failed,
        stats.interrupted,
        stats.recovered
    );
    Ok(())
}

fn cmd_submit(a: &Args) -> Result<(), String> {
    let dir = spool_dir(a)?;
    let spec = parse_job_spec(a)?;
    let key = ssr_service::submit_job(&dir, &spec).map_err(|e| e.to_string())?;
    println!("submitted {key}");
    if a.str_or("wait", "false") == "true" {
        loop {
            match daemon::job_status(&dir, key) {
                daemon::JobStatus::Done { source } => {
                    let result = daemon::job_result(&dir, key)
                        .ok_or("done marker exists but the result is unreadable")?;
                    print_job_result(key, &source, &result);
                    return Ok(());
                }
                daemon::JobStatus::Failed => {
                    return Err(format!("job {key} failed (see failed/{key}.err)"));
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(50)),
            }
        }
    }
    Ok(())
}

fn print_job_result(key: JobKey, source: &str, r: &ssr_service::JobResult) {
    let status = match r.status {
        ssr_service::JobStatusKind::Silent => "silent",
        ssr_service::JobStatusKind::Timeout => "timeout",
    };
    println!(
        "{key}: {status} after {} interactions (parallel time {:.1}), \
         {} productive [{source}]",
        r.interactions_wide, r.parallel_time, r.productive
    );
    if let Some(o) = &r.outcome {
        println!(
            "  adversary: availability {:.4}, mean k {:.2}, max k {}, \
             {} faults, {} churn events, {} bursts",
            o.availability,
            o.mean_k,
            o.max_k,
            o.faults_injected,
            o.churn_events,
            o.bursts.len()
        );
    }
}

fn cmd_status(a: &Args) -> Result<(), String> {
    let dir = spool_dir(a)?;
    if a.has("key") {
        let key = JobKey::from_hex(&a.str_or("key", ""))
            .ok_or("--key expects the 32-hex-digit job key")?;
        match daemon::job_status(&dir, key) {
            daemon::JobStatus::Done { source } => {
                let result = daemon::job_result(&dir, key)
                    .ok_or("done marker exists but the result is unreadable")?;
                print_job_result(key, &source, &result);
            }
            state => println!("{key}: {state:?}"),
        }
        return Ok(());
    }
    let count = |sub: &str, ext: &str| -> usize {
        std::fs::read_dir(dir.join(sub)).map_or(0, |d| {
            d.flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == ext))
                .count()
        })
    };
    println!(
        "{}: {} pending, {} running, {} done, {} failed",
        dir.display(),
        count("pending", "job"),
        count("running", "job"),
        count("done", "result"),
        count("failed", "err"),
    );
    Ok(())
}

fn help() {
    println!(
        "ssr — self-stabilising ranking & leader election (PODC 2025 reproduction)

commands:
  run    --protocol generic|ring|line|tree --n N
         [--start uniform|stacked|perfect|k-distant] [--k K]
         [--seed S] [--max M] [--engine auto|naive|jump|count]
         [--threads T]
         [--fault-burst t:f[,t:f...]] [--fault-rate R]
         [--churn R] [--byzantine K]
                                               simulate one run to silence
                                               (auto: count at n ≥ 4096,
                                               jump below; count batches in
                                               parallel over T threads and
                                               scales to n = 10⁹; results
                                               are seed-deterministic
                                               regardless of T)
                                               adversary flags attach a timed
                                               fault plan: bursts of f faults
                                               at interaction t, background
                                               corruption/churn at rate R per
                                               interaction, K stuck-at agents;
                                               persistent processes need a
                                               finite --max, and the run then
                                               reports availability, k-distance
                                               excursions and per-burst
                                               recovery instead of failing
  sweep  --protocol P --ns 64,128,256 [--trials T] [--seed S] [--engine E]
         [--threads T]
                                               time-vs-n table + power fit
  elect  --protocol P --n N [--start ...] [--k K] [--seed S]
                                               run leader election
  exact  --protocol P --n N [--limit L] [--trials T]
                                               exact vs simulated E[time]
  check  --protocol P --n N [--limit L]        exhaustive stability proof
                                               (small n; full config space)
  faults --protocol P --n N --faults F [--trials T] [--seed S]
                                               corrupt-and-recover report
  info   --protocol P --n N                    state-space summary
  serve  --dir SPOOL [--cores N] [--checkpoint-every K] [--poll-ms P]
         [--drain true] [--max-jobs J] [--kill-after-ckpts X]
                                               run the job daemon over a spool
                                               directory: schedules submitted
                                               jobs across N cores (admission
                                               via the engine's thread-split
                                               policy), checkpoints every K
                                               interactions so killed jobs
                                               resume bit-identically, and
                                               serves repeated jobs from a
                                               keyed result cache; --drain
                                               exits once the queue is empty
  submit --dir SPOOL <run flags: --protocol --n --start --k --seed --max
         --engine --threads --fault-burst --fault-rate --churn --byzantine>
         [--wait true]
                                               queue one job (prints its
                                               content key); --wait blocks
                                               until a daemon completes it
                                               and prints the result
  status --dir SPOOL [--key HEX]               spool totals, or one job's
                                               state/result
  help                                         this text"
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        help();
        return;
    }
    let result = Args::parse(argv).and_then(|a| match a.command.as_str() {
        "run" => cmd_run(&a),
        "sweep" => cmd_sweep(&a),
        "elect" => cmd_elect(&a),
        "exact" => cmd_exact(&a),
        "check" => cmd_check(&a),
        "faults" => cmd_faults(&a),
        "info" => cmd_info(&a),
        "serve" => cmd_serve(&a),
        "submit" => cmd_submit(&a),
        "status" => cmd_status(&a),
        "help" | "--help" => {
            help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try `ssr help`)")),
    });
    if let Err(msg) = result {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_factory_covers_all_kinds() {
        for kind in ["generic", "ag", "ring", "line", "tree"] {
            let p = make_protocol(kind, 20).unwrap();
            assert_eq!(p.population_size(), 20, "{kind}");
        }
        let err = match make_protocol("unknown", 20) {
            Ok(_) => panic!("unknown protocol kind must be rejected"),
            Err(e) => e,
        };
        assert!(err.contains("unknown protocol"));
    }

    #[test]
    fn start_factory_covers_all_kinds() {
        let p = make_protocol("tree", 16).unwrap();
        for start in ["uniform", "stacked", "perfect", "k-distant"] {
            let cfg = make_start(p.as_ref(), start, 3, 7).unwrap();
            assert_eq!(cfg.len(), 16, "{start}");
            assert!(cfg.iter().all(|&s| (s as usize) < p.num_states()));
        }
        assert!(make_start(p.as_ref(), "nope", 0, 7).is_err());
        assert!(make_start(p.as_ref(), "k-distant", 16, 7).is_err());
    }

    #[test]
    fn k_distant_start_hits_requested_distance() {
        let p = make_protocol("ring", 24).unwrap();
        let cfg = make_start(p.as_ref(), "k-distant", 5, 1).unwrap();
        assert_eq!(ssr_engine::init::distance(&cfg, 24), 5);
    }

    #[test]
    fn engine_flag_parses_all_kinds_and_legacy_alias() {
        let args = |v: &[&str]| Args::parse(v.iter().map(|s| s.to_string())).unwrap();
        for kind in ["auto", "naive", "jump", "count"] {
            let a = args(&["run", "--engine", kind]);
            assert_eq!(engine_kind(&a).unwrap().name(), kind);
        }
        assert_eq!(engine_kind(&args(&["run"])).unwrap(), EngineKind::Auto);
        let legacy = args(&["run", "--naive", "true"]);
        assert_eq!(engine_kind(&legacy).unwrap(), EngineKind::Naive);
        assert!(engine_kind(&args(&["run", "--engine", "warp"])).is_err());
    }

    #[test]
    fn fault_plan_flags_assemble_a_plan() {
        let args = |v: &[&str]| Args::parse(v.iter().map(|s| s.to_string())).unwrap();
        assert_eq!(parse_fault_plan(&args(&["run"])).unwrap(), None);
        let plan = parse_fault_plan(&args(&[
            "run",
            "--fault-burst",
            "0:4, 5000:2",
            "--fault-rate",
            "1e-6",
            "--churn",
            "1e-7",
            "--byzantine",
            "3",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(plan.bursts(), &[(0, 4), (5_000, 2)]);
        assert_eq!(plan.fault_rate(), 1e-6);
        assert_eq!(plan.churn_rate(), 1e-7);
        assert_eq!(plan.byzantine_agents(), 3);
        assert!(plan.may_never_silence());
        // Malformed entries fail loudly.
        assert!(parse_fault_plan(&args(&["run", "--fault-burst", "40"])).is_err());
        assert!(parse_fault_plan(&args(&["run", "--fault-rate", "2.0"])).is_err());
        assert!(parse_fault_plan(&args(&["run", "--churn", "-0.5"])).is_err());
    }

    #[test]
    fn every_engine_drives_every_protocol_through_a_scenario() {
        for proto in ["generic", "ring", "line", "tree"] {
            let p = make_protocol(proto, 12).unwrap();
            for kind in EngineKind::ALL.into_iter().chain([EngineKind::Auto]) {
                let start = make_start(p.as_ref(), "stacked", 0, 3).unwrap();
                let make = move |_| start.clone();
                let mut e = Scenario::new(p.as_ref())
                    .engine(kind)
                    .init(Init::Custom(&make))
                    .base_seed(3)
                    .build_engine(0)
                    .unwrap();
                e.run_until_silent(u64::MAX).unwrap();
                assert!(e.is_silent(), "{proto}/{kind}");
            }
        }
    }

    #[test]
    fn submit_flags_assemble_a_job_spec() {
        let args = |v: &[&str]| Args::parse(v.iter().map(|s| s.to_string())).unwrap();
        let a = args(&[
            "submit", "--protocol", "tree", "--n", "4096", "--seed", "9", "--start",
            "k-distant", "--k", "3", "--engine", "count", "--threads", "2", "--max",
            "1000000", "--fault-burst", "100:4",
        ]);
        let spec = parse_job_spec(&a).unwrap();
        assert_eq!(spec.protocol, "tree");
        assert_eq!(spec.n, 4096);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.init, JobInit::KDistant(3));
        assert_eq!(spec.engine, EngineKind::Count);
        assert_eq!(spec.threads, 2);
        assert_eq!(spec.bursts, vec![(100, 4)]);
        // Invalid combinations are rejected at parse time.
        assert!(parse_job_spec(&args(&["submit", "--protocol", "warp"])).is_err());
        assert!(parse_job_spec(&args(&["submit", "--churn", "0.1"])).is_err());
    }

    #[test]
    fn schema_validates_for_every_cli_protocol() {
        for proto in ["generic", "ring", "line", "tree"] {
            let p = make_protocol(proto, 14).unwrap();
            ssr_engine::validate_interaction_schema(p.as_ref())
                .unwrap_or_else(|e| panic!("{proto}: {e}"));
        }
    }
}
