//! Minimal dependency-free argument parsing for the `ssr` binary.
//!
//! Grammar: `ssr <command> [--flag value]...`. Flags are long-form only;
//! unknown flags are errors so typos fail loudly.

use std::collections::HashMap;

/// Parsed command line: a command word plus `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a message for missing command, stray positionals, or a
    /// flag without a value.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut it = args.into_iter();
        let command = it.next().ok_or("missing command (try `ssr help`)")?;
        if command.starts_with("--") {
            return Err(format!("expected a command before {command}"));
        }
        let mut flags = HashMap::new();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected positional argument '{arg}'"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            if flags.insert(key.to_string(), value).is_some() {
                return Err(format!("flag --{key} given twice"));
            }
        }
        Ok(Args { command, flags })
    }

    /// String flag with a default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Integer flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message for unparseable values.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    /// `u64` flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message for unparseable values.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    /// Floating-point flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message for unparseable values.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got '{v}'")),
        }
    }

    /// Comma-separated integer list flag.
    ///
    /// # Errors
    ///
    /// Returns a message for unparseable entries.
    pub fn usize_list_or(&self, key: &str, default: &[usize]) -> Result<Vec<usize>, String> {
        match self.flags.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse()
                        .map_err(|_| format!("--{key}: '{p}' is not an integer"))
                })
                .collect(),
        }
    }

    /// True when a flag is present (any value).
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Args, String> {
        Args::parse(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["run", "--n", "100", "--protocol", "tree"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.usize_or("n", 0).unwrap(), 100);
        assert_eq!(a.str_or("protocol", "x"), "tree");
        assert_eq!(a.str_or("missing", "dflt"), "dflt");
    }

    #[test]
    fn missing_command_rejected() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--n", "3"]).is_err());
    }

    #[test]
    fn flag_without_value_rejected() {
        assert!(parse(&["run", "--n"]).is_err());
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert!(parse(&["run", "--n", "1", "--n", "2"]).is_err());
    }

    #[test]
    fn stray_positional_rejected() {
        assert!(parse(&["run", "extra"]).is_err());
    }

    #[test]
    fn lists_parse() {
        let a = parse(&["sweep", "--ns", "72, 324,960"]).unwrap();
        assert_eq!(a.usize_list_or("ns", &[]).unwrap(), vec![72, 324, 960]);
        assert_eq!(a.usize_list_or("ks", &[1, 2]).unwrap(), vec![1, 2]);
        assert!(parse(&["sweep", "--ns", "72,x"])
            .unwrap()
            .usize_list_or("ns", &[])
            .is_err());
    }

    #[test]
    fn floats_parse() {
        let a = parse(&["run", "--fault-rate", "1e-6"]).unwrap();
        assert_eq!(a.f64_or("fault-rate", 0.0).unwrap(), 1e-6);
        assert_eq!(a.f64_or("churn", 0.25).unwrap(), 0.25);
        assert!(parse(&["run", "--fault-rate", "x"])
            .unwrap()
            .f64_or("fault-rate", 0.0)
            .is_err());
    }

    #[test]
    fn has_detects_presence() {
        let a = parse(&["run", "--naive", "true"]).unwrap();
        assert!(a.has("naive"));
        assert!(!a.has("jump"));
    }
}
