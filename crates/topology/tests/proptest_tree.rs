//! Property tests: the implicit `BalancedTree` arithmetic must agree with
//! the materialised oracle (`MaterialisedTree`, the pre-implicit seven-array
//! build) on every geometric query.

use proptest::prelude::*;
use ssr_topology::balanced_tree::{BalancedTree, MaterialisedTree, NodeKind};

/// Compare every query at node `p` between the implicit tree and the oracle.
fn assert_node_matches(t: &BalancedTree, o: &MaterialisedTree, n: usize, p: usize) {
    assert_eq!(t.kind(p), o.kind(p), "kind n={n} p={p}");
    assert_eq!(t.children(p), o.children(p), "children n={n} p={p}");
    assert_eq!(t.parent(p), o.parent(p), "parent n={n} p={p}");
    assert_eq!(t.depth(p), o.depth(p), "depth n={n} p={p}");
    assert_eq!(t.subtree_size(p), o.subtree_size(p), "subtree n={n} p={p}");
    if t.kind(p) == NodeKind::Branching {
        assert_eq!(t.branch_half(p), o.branch_half(p), "branch_half n={n} p={p}");
    }
    let (l, r) = o.children(p);
    assert_eq!(t.left_child(p), l, "left_child n={n} p={p}");
    assert_eq!(t.right_child(p), r, "right_child n={n} p={p}");
    assert_eq!(t.is_leaf(p), o.kind(p) == NodeKind::Leaf, "is_leaf n={n} p={p}");
    assert_eq!(
        t.is_branching(p),
        o.kind(p) == NodeKind::Branching,
        "is_branching n={n} p={p}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exhaustive node-by-node equivalence over random sizes in 1..4096.
    #[test]
    fn implicit_matches_oracle_all_nodes(n in 1usize..4096) {
        let t = BalancedTree::new(n);
        let o = MaterialisedTree::new(n);
        prop_assert_eq!(t.len(), o.len());
        prop_assert_eq!(t.height(), o.height());
        for p in 0..n {
            assert_node_matches(&t, &o, n, p);
        }
        prop_assert_eq!(t.leaves(), o.leaves());
    }

    /// Random probes into large trees: same equivalence at spot sizes the
    /// exhaustive sweep cannot afford.
    #[test]
    fn implicit_matches_oracle_large_spot_sizes(probe in 0usize..usize::MAX) {
        for n in [(1usize << 20) + 1, 99_991] {
            let t = BalancedTree::new(n);
            let o = MaterialisedTree::new(n);
            prop_assert_eq!(t.height(), o.height());
            assert_node_matches(&t, &o, n, probe % n);
            // Always probe the structurally interesting ids too.
            for p in [0, 1, n / 2, n - 2, n - 1] {
                assert_node_matches(&t, &o, n, p);
            }
        }
    }
}

/// Small sizes exhaustively (not sampled): every n in 1..=256, every node.
#[test]
fn implicit_matches_oracle_exhaustive_small() {
    for n in 1usize..=256 {
        let t = BalancedTree::new(n);
        let o = MaterialisedTree::new(n);
        assert_eq!(t.height(), o.height(), "n={n}");
        for p in 0..n {
            assert_node_matches(&t, &o, n, p);
        }
        assert_eq!(t.leaves(), o.leaves(), "n={n}");
    }
}

/// The leaf iterator agrees with the oracle's materialised leaf list.
#[test]
fn leaves_iter_matches_oracle() {
    for n in [1usize, 2, 9, 1024, 4095, 99_991] {
        let t = BalancedTree::new(n);
        let o = MaterialisedTree::new(n);
        let implicit: Vec<usize> = t.leaves_iter().collect();
        assert_eq!(implicit, o.leaves(), "n={n}");
    }
}
