//! Perfectly balanced binary trees (paper §5, Figure 2) with **implicit**,
//! allocation-free geometry.
//!
//! The tree of size `k` is defined recursively from its root:
//!
//! * `k` odd, `k = 2l + 1`: the root is a **branching node** with two
//!   children, each the root of an identical perfectly balanced subtree of
//!   size `l` (for `k = 1` both subtrees are empty, i.e. the root is a
//!   **leaf**);
//! * `k` even: the root is a **non-branching node** whose single child
//!   roots a subtree of size `k − 1`.
//!
//! Nodes carry the **pre-order numbers** `0..n`: the root is `0`; the lone
//! child of a non-branching node `p` is `p + 1`; the children of a
//! branching node `p` with subtree halves of size `l` are `p + 1` (left)
//! and `p + l + 1` (right). The paper uses these numbers directly as the
//! `n` rank states of the §5 protocol.
//!
//! # Arithmetic derivation
//!
//! Every geometric attribute of a node is a pure function of `(n, p)`, so
//! nothing needs to be materialised. The recursion gives a *descent rule*:
//! starting from the root `(q, s) = (0, n)`, the subtree containing a
//! target id `p > q` is found by
//!
//! * `s` even: the only child subtree is `(q + 1, s − 1)`;
//! * `s` odd, `l = (s − 1) / 2`: the left subtree is `(q + 1, l)` and
//!   covers ids `q + 1 ..= q + l`; otherwise `p` lies in the right subtree
//!   `(q + l + 1, l)`.
//!
//! Iterating until `q == p` yields the subtree size, depth, and parent of
//! `p` in at most `height` steps, i.e. `O(log n)` (the height satisfies
//! `h ≤ 2 log₂ n`: sizes alternate between at most one even step and a
//! halving odd step). The node kind falls out of the subtree size
//! (`1 → Leaf`, even → `NonBranching`, odd → `Branching`), and children
//! follow from the pre-order arithmetic above.
//!
//! Two consequences of the recursion used throughout:
//!
//! * **level uniformity** — all nodes at the same depth root subtrees of
//!   the same size (hence the same kind): the level sizes are the sequence
//!   `s₀ = n`, `s_{d+1} = s_d − 1` if `s_d` even else `(s_d − 1) / 2`;
//! * the struct therefore stores only `n` and the (precomputed) height —
//!   **O(1) memory regardless of `n`**, where previous revisions
//!   materialised seven per-node arrays (~21 bytes/node).
//!
//! The old materialised build survives as [`MaterialisedTree`], a
//! test-only oracle the property tests compare against.
//!
//! # Examples
//!
//! ```
//! use ssr_topology::balanced_tree::{BalancedTree, NodeKind};
//!
//! // Figure 2 of the paper: n = 9.
//! let t = BalancedTree::new(9);
//! assert_eq!(t.kind(0), NodeKind::Branching);
//! assert_eq!(t.children(0), (Some(1), Some(5)));
//! assert_eq!(t.children(2), (Some(3), Some(4)));
//! assert!(t.is_leaf(8));
//! // O(1) memory: no per-node arrays.
//! assert!(std::mem::size_of::<BalancedTree>() <= 16);
//! ```

/// Role of a node in a perfectly balanced binary tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Root of an odd-size subtree `> 1`: has two children.
    Branching,
    /// Root of an even-size subtree: has exactly one child.
    NonBranching,
    /// Size-1 subtree: no children.
    Leaf,
}

/// Result of a root descent: everything known about one node.
#[derive(Debug, Clone, Copy)]
struct Locus {
    /// Size of the subtree rooted at the node.
    size: usize,
    /// Distance from the root.
    depth: u32,
    /// Parent id, `usize::MAX` for the root.
    parent: usize,
}

/// A perfectly balanced binary tree over pre-order node ids `0..n`.
///
/// Geometry is implicit: the struct stores only the population size and the
/// precomputed height, and answers every query by arithmetic on pre-order
/// ids (an `O(log n)` descent from the root — see the module docs). It is
/// therefore `O(1)`-sized however large `n` grows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalancedTree {
    n: usize,
    height: u32,
}

/// Kind of the root of a subtree of size `s`.
#[inline]
fn kind_of_size(s: usize) -> NodeKind {
    if s == 1 {
        NodeKind::Leaf
    } else if s.is_multiple_of(2) {
        NodeKind::NonBranching
    } else {
        NodeKind::Branching
    }
}

impl BalancedTree {
    /// Build the perfectly balanced binary tree of size `n`.
    ///
    /// Costs `O(log n)` time (to walk the level-size sequence once for the
    /// height) and allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a balanced tree needs at least one node");
        // The level sizes are the same for every node at a given depth, so
        // the height is the length of the size sequence down to 1.
        let mut s = n;
        let mut height = 0u32;
        while s > 1 {
            s = if s.is_multiple_of(2) { s - 1 } else { (s - 1) / 2 };
            height += 1;
        }
        BalancedTree { n, height }
    }

    /// Descend from the root to node `p`, returning its subtree size,
    /// depth, and parent in `O(log n)`.
    #[inline]
    fn locate(&self, p: usize) -> Locus {
        assert!(p < self.n, "node id {p} out of range for size {}", self.n);
        let mut q = 0usize;
        let mut s = self.n;
        let mut depth = 0u32;
        let mut parent = usize::MAX;
        while q != p {
            parent = q;
            depth += 1;
            if s.is_multiple_of(2) {
                // Chain node: the only child is q + 1 with size s − 1.
                q += 1;
                s -= 1;
            } else {
                // Branching node: halves of size l at q + 1 and q + l + 1.
                let l = (s - 1) / 2;
                if p <= q + l {
                    q += 1;
                } else {
                    q += l + 1;
                }
                s = l;
            }
        }
        Locus {
            size: s,
            depth,
            parent,
        }
    }

    /// Number of nodes (also the number of rank states it spans).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the impossible empty tree (kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Kind of node `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= len()`.
    pub fn kind(&self, p: usize) -> NodeKind {
        kind_of_size(self.locate(p).size)
    }

    /// True if `p` is a leaf.
    pub fn is_leaf(&self, p: usize) -> bool {
        self.locate(p).size == 1
    }

    /// True if `p` is a branching node.
    pub fn is_branching(&self, p: usize) -> bool {
        let s = self.locate(p).size;
        s > 1 && s % 2 == 1
    }

    /// Children `(left, right)` of node `p`; non-branching nodes have only
    /// a left child, leaves none.
    pub fn children(&self, p: usize) -> (Option<usize>, Option<usize>) {
        let s = self.locate(p).size;
        match kind_of_size(s) {
            NodeKind::Leaf => (None, None),
            NodeKind::NonBranching => (Some(p + 1), None),
            NodeKind::Branching => (Some(p + 1), Some(p + (s - 1) / 2 + 1)),
        }
    }

    /// Left (or only) child of `p`.
    pub fn left_child(&self, p: usize) -> Option<usize> {
        (self.locate(p).size > 1).then_some(p + 1)
    }

    /// Right child of `p` (branching nodes only).
    pub fn right_child(&self, p: usize) -> Option<usize> {
        let s = self.locate(p).size;
        (s > 1 && s % 2 == 1).then_some(p + (s - 1) / 2 + 1)
    }

    /// Parent of `p`, `None` for the root.
    pub fn parent(&self, p: usize) -> Option<usize> {
        let par = self.locate(p).parent;
        (par != usize::MAX).then_some(par)
    }

    /// Distance of `p` from the root.
    pub fn depth(&self, p: usize) -> u32 {
        self.locate(p).depth
    }

    /// Size of the subtree rooted at `p`.
    pub fn subtree_size(&self, p: usize) -> usize {
        self.locate(p).size
    }

    /// Height of the tree (depth of the deepest node).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Half-size `l` at a branching node `p` — the size of each of its two
    /// identical subtrees, i.e. the offset such that the right child is
    /// `p + l + 1`. Used by the §5 rule `R1`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a branching node.
    pub fn branch_half(&self, p: usize) -> usize {
        let s = self.locate(p).size;
        assert!(s > 1 && s % 2 == 1, "node {p} is not branching");
        (s - 1) / 2
    }

    /// All leaf node ids, ascending.
    ///
    /// Prefer [`Self::leaves_iter`] in hot paths: it yields the same ids
    /// without collecting them into a `Vec`.
    pub fn leaves(&self) -> Vec<usize> {
        self.leaves_iter().collect()
    }

    /// Iterate over all leaf ids in ascending (pre-order) order without
    /// allocating: a pre-order walk with a fixed-size stack of pending
    /// right subtrees (at most one per branching level, ≤ 64 entries).
    pub fn leaves_iter(&self) -> Leaves {
        let mut it = Leaves {
            stack: [(0, 0); LEAF_STACK],
            top: 0,
        };
        it.stack[0] = (0, self.n as u64);
        it.top = 1;
        it
    }

    /// The root-to-leaf path ending at `leaf` (root first).
    ///
    /// Prefer [`Self::root_path_iter`] in hot paths: it yields the same
    /// ids without collecting them into a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not a leaf.
    pub fn root_path(&self, leaf: usize) -> Vec<usize> {
        self.root_path_iter(leaf).collect()
    }

    /// Iterate over the root-to-leaf path ending at `leaf`, root first,
    /// without allocating. With implicit geometry a parent walk and a root
    /// descent are the same `O(log n)` arithmetic; descending from the
    /// root yields the ids directly in the order [`Self::root_path`]
    /// returns them.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not a leaf.
    pub fn root_path_iter(&self, leaf: usize) -> RootPath {
        assert!(
            self.locate(leaf).size == 1,
            "node {leaf} is not a leaf"
        );
        RootPath {
            target: leaf,
            cur: 0,
            size: self.n,
            done: false,
        }
    }

    /// Verify the structural invariants: child arithmetic round-trips
    /// through `parent`, same-depth nodes have uniform kind and subtree
    /// size, and `height ≤ 2 log₂ n` (for `n ≥ 2`).
    ///
    /// Costs `O(n log n)`: intended for tests and debugging.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.parent(0).is_some() {
            return Err("root has a parent edge".into());
        }
        let mut level_kind: Vec<Option<(NodeKind, usize)>> =
            vec![None; self.height as usize + 1];
        for p in 0..self.n {
            let loc = self.locate(p);
            let kind = kind_of_size(loc.size);
            // Children must exist, be in range, and point back to p.
            let (l, r) = self.children(p);
            match kind {
                NodeKind::Leaf => {
                    if l.is_some() || r.is_some() {
                        return Err(format!("leaf {p} has children"));
                    }
                }
                NodeKind::NonBranching => {
                    if l != Some(p + 1) || r.is_some() {
                        return Err(format!("chain node {p} has children {l:?}/{r:?}"));
                    }
                }
                NodeKind::Branching => {
                    let half = (loc.size - 1) / 2;
                    if l != Some(p + 1) || r != Some(p + half + 1) {
                        return Err(format!("branching node {p} has children {l:?}/{r:?}"));
                    }
                }
            }
            for c in [l, r].into_iter().flatten() {
                if c >= self.n {
                    return Err(format!("node {p} has out-of-range child {c}"));
                }
                if self.parent(c) != Some(p) {
                    return Err(format!("child {c} does not point back to {p}"));
                }
                if self.depth(c) != loc.depth + 1 {
                    return Err(format!("child {c} is not one level below {p}"));
                }
            }
            // Level uniformity of both kind and subtree size.
            let d = loc.depth as usize;
            match level_kind[d] {
                None => level_kind[d] = Some((kind, loc.size)),
                Some(e) if e == (kind, loc.size) => {}
                Some((k, s)) => {
                    return Err(format!(
                        "level {d} mixes ({:?}, {}) and ({k:?}, {s})",
                        kind, loc.size
                    ))
                }
            }
        }
        // Height bound.
        if self.n >= 2 {
            let bound = 2.0 * (self.n as f64).log2();
            if (self.height as f64) > bound + 1e-9 {
                return Err(format!(
                    "height {} exceeds 2·log₂ n = {bound:.2}",
                    self.height
                ));
            }
        }
        Ok(())
    }
}

/// Stack capacity for [`Leaves`]: one pending right subtree per branching
/// level, and odd sizes halve, so ≤ 64 on 64-bit targets (+ slack).
const LEAF_STACK: usize = 66;

/// Allocation-free iterator over the leaf ids of a [`BalancedTree`],
/// ascending. Created by [`BalancedTree::leaves_iter`].
#[derive(Debug, Clone)]
pub struct Leaves {
    /// Pending `(preorder id, subtree size)` pairs, innermost last.
    stack: [(u64, u64); LEAF_STACK],
    top: usize,
}

impl Iterator for Leaves {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.top == 0 {
            return None;
        }
        self.top -= 1;
        let (mut p, mut s) = self.stack[self.top];
        loop {
            if s == 1 {
                return Some(p as usize);
            }
            if s.is_multiple_of(2) {
                p += 1;
                s -= 1;
            } else {
                let l = (s - 1) / 2;
                self.stack[self.top] = (p + l + 1, l);
                self.top += 1;
                p += 1;
                s = l;
            }
        }
    }
}

/// Allocation-free iterator over a root-to-leaf path, root first. Created
/// by [`BalancedTree::root_path_iter`].
#[derive(Debug, Clone)]
pub struct RootPath {
    target: usize,
    cur: usize,
    size: usize,
    done: bool,
}

impl Iterator for RootPath {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.done {
            return None;
        }
        let out = self.cur;
        if self.cur == self.target {
            self.done = true;
        } else if self.size.is_multiple_of(2) {
            self.cur += 1;
            self.size -= 1;
        } else {
            let l = (self.size - 1) / 2;
            if self.target <= self.cur + l {
                self.cur += 1;
            } else {
                self.cur += l + 1;
            }
            self.size = l;
        }
        Some(out)
    }
}

const NONE: u32 = u32::MAX;

/// The pre-implicit materialised build: seven per-node arrays filled by an
/// explicit stack recursion. Kept **only** as the oracle the property
/// tests compare [`BalancedTree`]'s arithmetic against — production code
/// must use [`BalancedTree`], which answers the same queries in `O(1)`
/// memory.
#[doc(hidden)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterialisedTree {
    n: usize,
    kind: Vec<NodeKind>,
    left: Vec<u32>,
    right: Vec<u32>,
    parent: Vec<u32>,
    depth: Vec<u32>,
    subtree: Vec<u32>,
    height: u32,
}

impl MaterialisedTree {
    /// Build the materialised oracle tree of size `n` (`O(n)` memory).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a balanced tree needs at least one node");
        let mut kind = vec![NodeKind::Leaf; n];
        let mut left = vec![NONE; n];
        let mut right = vec![NONE; n];
        let mut parent = vec![NONE; n];
        let mut depth = vec![0u32; n];
        let mut subtree = vec![0u32; n];
        let mut height = 0u32;

        // (preorder id, size, depth, parent)
        let mut stack: Vec<(usize, usize, u32, u32)> = vec![(0, n, 0, NONE)];
        while let Some((p, k, d, par)) = stack.pop() {
            subtree[p] = k as u32;
            depth[p] = d;
            parent[p] = par;
            height = height.max(d);
            if k == 1 {
                kind[p] = NodeKind::Leaf;
            } else if k % 2 == 0 {
                kind[p] = NodeKind::NonBranching;
                left[p] = (p + 1) as u32;
                stack.push((p + 1, k - 1, d + 1, p as u32));
            } else {
                kind[p] = NodeKind::Branching;
                let l = (k - 1) / 2;
                left[p] = (p + 1) as u32;
                right[p] = (p + l + 1) as u32;
                stack.push((p + 1, l, d + 1, p as u32));
                stack.push((p + l + 1, l, d + 1, p as u32));
            }
        }

        MaterialisedTree {
            n,
            kind,
            left,
            right,
            parent,
            depth,
            subtree,
            height,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the impossible empty tree.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Kind of node `p`.
    pub fn kind(&self, p: usize) -> NodeKind {
        self.kind[p]
    }

    /// Children `(left, right)` of node `p`.
    pub fn children(&self, p: usize) -> (Option<usize>, Option<usize>) {
        let conv = |v: u32| (v != NONE).then_some(v as usize);
        (conv(self.left[p]), conv(self.right[p]))
    }

    /// Parent of `p`, `None` for the root.
    pub fn parent(&self, p: usize) -> Option<usize> {
        (self.parent[p] != NONE).then_some(self.parent[p] as usize)
    }

    /// Distance of `p` from the root.
    pub fn depth(&self, p: usize) -> u32 {
        self.depth[p]
    }

    /// Size of the subtree rooted at `p`.
    pub fn subtree_size(&self, p: usize) -> usize {
        self.subtree[p] as usize
    }

    /// Height of the tree.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Half-size `l` at a branching node `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a branching node.
    pub fn branch_half(&self, p: usize) -> usize {
        assert!(
            self.kind[p] == NodeKind::Branching,
            "node {p} is not branching"
        );
        (self.subtree[p] as usize - 1) / 2
    }

    /// All leaf node ids, ascending.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&p| self.kind[p] == NodeKind::Leaf)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_layout_n9() {
        // Matches Figure 2 of the paper exactly.
        let t = BalancedTree::new(9);
        assert_eq!(t.kind(0), NodeKind::Branching);
        assert_eq!(t.children(0), (Some(1), Some(5)));
        assert_eq!(t.kind(1), NodeKind::NonBranching);
        assert_eq!(t.children(1), (Some(2), None));
        assert_eq!(t.kind(2), NodeKind::Branching);
        assert_eq!(t.children(2), (Some(3), Some(4)));
        assert!(t.is_leaf(3) && t.is_leaf(4));
        assert_eq!(t.kind(5), NodeKind::NonBranching);
        assert_eq!(t.children(5), (Some(6), None));
        assert_eq!(t.children(6), (Some(7), Some(8)));
        assert!(t.is_leaf(7) && t.is_leaf(8));
        t.validate().unwrap();
    }

    #[test]
    fn singleton_tree() {
        let t = BalancedTree::new(1);
        assert!(t.is_leaf(0));
        assert_eq!(t.height(), 0);
        t.validate().unwrap();
    }

    #[test]
    fn even_root_is_non_branching_odd_is_branching() {
        for n in 2..200 {
            let t = BalancedTree::new(n);
            if n % 2 == 0 {
                assert_eq!(t.kind(0), NodeKind::NonBranching, "n={n}");
            } else {
                assert_eq!(t.kind(0), NodeKind::Branching, "n={n}");
            }
        }
    }

    #[test]
    fn validate_holds_for_many_sizes() {
        for n in 1..=512 {
            BalancedTree::new(n).validate().unwrap_or_else(|e| {
                panic!("n={n}: {e}");
            });
        }
        for n in [1000, 1023, 1024, 1025, 4096, 99_991] {
            BalancedTree::new(n).validate().unwrap();
        }
    }

    #[test]
    fn preorder_child_arithmetic() {
        let t = BalancedTree::new(37);
        for p in 0..37 {
            match t.kind(p) {
                NodeKind::NonBranching => {
                    assert_eq!(t.left_child(p), Some(p + 1));
                    assert_eq!(t.right_child(p), None);
                }
                NodeKind::Branching => {
                    let l = t.branch_half(p);
                    assert_eq!(t.left_child(p), Some(p + 1));
                    assert_eq!(t.right_child(p), Some(p + l + 1));
                    assert_eq!(t.subtree_size(p + 1), l);
                    assert_eq!(t.subtree_size(p + l + 1), l);
                }
                NodeKind::Leaf => {
                    assert_eq!(t.children(p), (None, None));
                }
            }
        }
    }

    #[test]
    fn subtree_sizes_sum_consistently() {
        let t = BalancedTree::new(100);
        for p in 0..100 {
            let expect = 1 + t
                .children(p)
                .0
                .map(|c| t.subtree_size(c))
                .unwrap_or(0)
                + t.children(p).1.map(|c| t.subtree_size(c)).unwrap_or(0);
            assert_eq!(t.subtree_size(p), expect, "node {p}");
        }
    }

    #[test]
    fn root_paths_descend_via_children() {
        let t = BalancedTree::new(57);
        for leaf in t.leaves() {
            let path = t.root_path(leaf);
            assert_eq!(path[0], 0);
            assert_eq!(*path.last().unwrap(), leaf);
            for w in path.windows(2) {
                let (l, r) = t.children(w[0]);
                assert!(l == Some(w[1]) || r == Some(w[1]));
            }
            // Path length = depth + 1 ≤ height + 1.
            assert_eq!(path.len() as u32, t.depth(leaf) + 1);
        }
    }

    #[test]
    fn height_bound_tight_cases() {
        // Powers of two minus one give perfect trees: height exactly log n.
        let t = BalancedTree::new(127);
        assert_eq!(t.height(), 6);
        // Even chains add non-branching levels but stay under 2 log n.
        for n in [6usize, 14, 62, 1022] {
            let t = BalancedTree::new(n);
            assert!((t.height() as f64) <= 2.0 * (n as f64).log2());
        }
    }

    #[test]
    fn leaves_count_matches_branching_structure() {
        // In any binary tree, #leaves = #branching + 1.
        for n in [9usize, 10, 33, 100, 255] {
            let t = BalancedTree::new(n);
            let leaves = t.leaves().len();
            let branching = (0..n).filter(|&p| t.is_branching(p)).count();
            assert_eq!(leaves, branching + 1, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_size_rejected() {
        BalancedTree::new(0);
    }

    #[test]
    fn struct_is_constant_size() {
        // The whole point of the implicit representation: no O(n) arrays.
        assert!(std::mem::size_of::<BalancedTree>() <= 16);
    }

    #[test]
    fn leaves_iter_matches_leaves_vec() {
        for n in [1usize, 2, 9, 37, 100, 255, 1022, 4096] {
            let t = BalancedTree::new(n);
            let collected: Vec<usize> = t.leaves_iter().collect();
            assert_eq!(collected, t.leaves(), "n={n}");
            // Ascending and all leaves.
            assert!(collected.windows(2).all(|w| w[0] < w[1]));
            assert!(collected.iter().all(|&p| t.is_leaf(p)));
        }
    }

    #[test]
    fn root_path_iter_matches_root_path() {
        let t = BalancedTree::new(99);
        for leaf in t.leaves_iter() {
            let path: Vec<usize> = t.root_path_iter(leaf).collect();
            assert_eq!(path, t.root_path(leaf));
        }
    }

    #[test]
    fn implicit_matches_materialised_oracle_spot_sizes() {
        // Full sweep lives in tests/proptest_tree.rs; keep a quick
        // in-module sanity check.
        for n in [1usize, 2, 9, 64, 129, 1000] {
            let t = BalancedTree::new(n);
            let o = MaterialisedTree::new(n);
            assert_eq!(t.height(), o.height(), "n={n}");
            for p in 0..n {
                assert_eq!(t.kind(p), o.kind(p), "n={n} p={p}");
                assert_eq!(t.children(p), o.children(p), "n={n} p={p}");
                assert_eq!(t.parent(p), o.parent(p), "n={n} p={p}");
                assert_eq!(t.depth(p), o.depth(p), "n={n} p={p}");
                assert_eq!(t.subtree_size(p), o.subtree_size(p), "n={n} p={p}");
            }
            assert_eq!(t.leaves(), o.leaves(), "n={n}");
        }
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn depths_increase_by_one_along_edges() {
        let t = BalancedTree::new(200);
        for p in 0..200 {
            for c in [t.children(p).0, t.children(p).1].into_iter().flatten() {
                assert_eq!(t.depth(c), t.depth(p) + 1);
            }
        }
    }

    #[test]
    fn branch_half_only_on_branching() {
        let t = BalancedTree::new(9);
        assert_eq!(t.branch_half(0), 4);
        assert_eq!(t.branch_half(2), 1);
    }

    #[test]
    #[should_panic(expected = "not branching")]
    fn branch_half_rejects_non_branching() {
        BalancedTree::new(9).branch_half(1);
    }

    #[test]
    #[should_panic(expected = "not a leaf")]
    fn root_path_rejects_internal_nodes() {
        BalancedTree::new(9).root_path(0);
    }

    #[test]
    fn perfect_tree_shape_for_power_of_two_minus_one() {
        // n = 2^h − 1 gives a perfect binary tree: every level branching
        // until the leaves, height h − 1.
        let t = BalancedTree::new(31);
        assert_eq!(t.height(), 4);
        assert_eq!(t.leaves().len(), 16);
        for p in 0..31 {
            if t.kind(p) == NodeKind::NonBranching { panic!("perfect tree has no chains") }
        }
    }

    #[test]
    fn chain_tree_for_small_even_sizes() {
        // n = 2: root (even) → child leaf.
        let t = BalancedTree::new(2);
        assert_eq!(t.kind(0), NodeKind::NonBranching);
        assert!(t.is_leaf(1));
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(0), None);
    }

    #[test]
    fn subtree_sizes_at_same_level_are_equal() {
        let t = BalancedTree::new(500);
        let mut by_depth: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        for p in 0..500 {
            let d = t.depth(p);
            let s = t.subtree_size(p);
            let e = by_depth.entry(d).or_insert(s);
            assert_eq!(*e, s, "level {d} mixes subtree sizes");
        }
    }

    #[test]
    fn huge_tree_is_cheap_to_build_and_query() {
        // At n = 2^40 a materialised tree would need ~23 TiB; the implicit
        // tree is 16 bytes and answers queries by descent.
        let n = 1usize << 40;
        let t = BalancedTree::new(n);
        assert_eq!(t.kind(0), NodeKind::NonBranching);
        assert_eq!(t.subtree_size(0), n);
        assert_eq!(t.subtree_size(1), n - 1);
        let first_leaf = t.leaves_iter().next().unwrap();
        assert!(t.is_leaf(first_leaf));
        assert_eq!(t.depth(first_leaf), t.height());
        assert!(t.parent(first_leaf).is_some());
    }
}
