//! Perfectly balanced binary trees (paper §5, Figure 2).
//!
//! The tree of size `k` is defined recursively from its root:
//!
//! * `k` odd, `k = 2l + 1`: the root is a **branching node** with two
//!   children, each the root of an identical perfectly balanced subtree of
//!   size `l` (for `k = 1` both subtrees are empty, i.e. the root is a
//!   **leaf**);
//! * `k` even: the root is a **non-branching node** whose single child
//!   roots a subtree of size `k − 1`.
//!
//! Nodes carry the **pre-order numbers** `0..n`: the root is `0`; the lone
//! child of a non-branching node `p` is `p + 1`; the children of a
//! branching node `p` with subtree halves of size `l` are `p + 1` (left)
//! and `p + l + 1` (right). The paper uses these numbers directly as the
//! `n` rank states of the §5 protocol.
//!
//! Properties guaranteed by the recursion (and verified in tests):
//! all nodes at the same depth have the same kind, and the height satisfies
//! `h ≤ 2 log₂ n`.
//!
//! # Examples
//!
//! ```
//! use ssr_topology::balanced_tree::{BalancedTree, NodeKind};
//!
//! // Figure 2 of the paper: n = 9.
//! let t = BalancedTree::new(9);
//! assert_eq!(t.kind(0), NodeKind::Branching);
//! assert_eq!(t.children(0), (Some(1), Some(5)));
//! assert_eq!(t.children(2), (Some(3), Some(4)));
//! assert!(t.is_leaf(8));
//! ```

/// Role of a node in a perfectly balanced binary tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Root of an odd-size subtree `> 1`: has two children.
    Branching,
    /// Root of an even-size subtree: has exactly one child.
    NonBranching,
    /// Size-1 subtree: no children.
    Leaf,
}

const NONE: u32 = u32::MAX;

/// A perfectly balanced binary tree over pre-order node ids `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalancedTree {
    n: usize,
    kind: Vec<NodeKind>,
    left: Vec<u32>,
    right: Vec<u32>,
    parent: Vec<u32>,
    depth: Vec<u32>,
    subtree: Vec<u32>,
    height: u32,
}

impl BalancedTree {
    /// Build the perfectly balanced binary tree of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a balanced tree needs at least one node");
        let mut kind = vec![NodeKind::Leaf; n];
        let mut left = vec![NONE; n];
        let mut right = vec![NONE; n];
        let mut parent = vec![NONE; n];
        let mut depth = vec![0u32; n];
        let mut subtree = vec![0u32; n];
        let mut height = 0u32;

        // (preorder id, size, depth, parent)
        let mut stack: Vec<(usize, usize, u32, u32)> = vec![(0, n, 0, NONE)];
        while let Some((p, k, d, par)) = stack.pop() {
            subtree[p] = k as u32;
            depth[p] = d;
            parent[p] = par;
            height = height.max(d);
            if k == 1 {
                kind[p] = NodeKind::Leaf;
            } else if k % 2 == 0 {
                kind[p] = NodeKind::NonBranching;
                left[p] = (p + 1) as u32;
                stack.push((p + 1, k - 1, d + 1, p as u32));
            } else {
                kind[p] = NodeKind::Branching;
                let l = (k - 1) / 2;
                left[p] = (p + 1) as u32;
                right[p] = (p + l + 1) as u32;
                stack.push((p + 1, l, d + 1, p as u32));
                stack.push((p + l + 1, l, d + 1, p as u32));
            }
        }

        BalancedTree {
            n,
            kind,
            left,
            right,
            parent,
            depth,
            subtree,
            height,
        }
    }

    /// Number of nodes (also the number of rank states it spans).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the impossible empty tree (kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Kind of node `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= len()`.
    pub fn kind(&self, p: usize) -> NodeKind {
        self.kind[p]
    }

    /// True if `p` is a leaf.
    pub fn is_leaf(&self, p: usize) -> bool {
        self.kind[p] == NodeKind::Leaf
    }

    /// True if `p` is a branching node.
    pub fn is_branching(&self, p: usize) -> bool {
        self.kind[p] == NodeKind::Branching
    }

    /// Children `(left, right)` of node `p`; non-branching nodes have only
    /// a left child, leaves none.
    pub fn children(&self, p: usize) -> (Option<usize>, Option<usize>) {
        let conv = |v: u32| (v != NONE).then_some(v as usize);
        (conv(self.left[p]), conv(self.right[p]))
    }

    /// Left (or only) child of `p`.
    pub fn left_child(&self, p: usize) -> Option<usize> {
        (self.left[p] != NONE).then_some(self.left[p] as usize)
    }

    /// Right child of `p` (branching nodes only).
    pub fn right_child(&self, p: usize) -> Option<usize> {
        (self.right[p] != NONE).then_some(self.right[p] as usize)
    }

    /// Parent of `p`, `None` for the root.
    pub fn parent(&self, p: usize) -> Option<usize> {
        (self.parent[p] != NONE).then_some(self.parent[p] as usize)
    }

    /// Distance of `p` from the root.
    pub fn depth(&self, p: usize) -> u32 {
        self.depth[p]
    }

    /// Size of the subtree rooted at `p`.
    pub fn subtree_size(&self, p: usize) -> usize {
        self.subtree[p] as usize
    }

    /// Height of the tree (depth of the deepest node).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Half-size `l` at a branching node `p` — the size of each of its two
    /// identical subtrees, i.e. the offset such that the right child is
    /// `p + l + 1`. Used by the §5 rule `R1`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a branching node.
    pub fn branch_half(&self, p: usize) -> usize {
        assert!(self.is_branching(p), "node {p} is not branching");
        (self.subtree[p] as usize - 1) / 2
    }

    /// All leaf node ids, ascending.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.n).filter(|&p| self.is_leaf(p)).collect()
    }

    /// The root-to-leaf path ending at `leaf` (root first).
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not a leaf.
    pub fn root_path(&self, leaf: usize) -> Vec<usize> {
        assert!(self.is_leaf(leaf), "node {leaf} is not a leaf");
        let mut path = vec![leaf];
        let mut cur = leaf;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Verify the structural invariants: pre-order ids form a bijection,
    /// child arithmetic is consistent, same-depth nodes have uniform kind,
    /// and `height ≤ 2 log₂ n` (for `n ≥ 2`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        // Each non-root node must be the child of exactly one parent.
        let mut child_of = vec![0u32; self.n];
        for p in 0..self.n {
            for c in [self.left[p], self.right[p]] {
                if c != NONE {
                    let c = c as usize;
                    if c >= self.n {
                        return Err(format!("node {p} has out-of-range child {c}"));
                    }
                    child_of[c] += 1;
                    if self.parent[c] as usize != p {
                        return Err(format!("child {c} does not point back to {p}"));
                    }
                }
            }
        }
        if child_of[0] != 0 {
            return Err("root has a parent edge".into());
        }
        if let Some(bad) = (1..self.n).find(|&p| child_of[p] != 1) {
            return Err(format!("node {bad} has {} parents", child_of[bad]));
        }
        // Level uniformity.
        let mut level_kind: Vec<Option<NodeKind>> = vec![None; self.height as usize + 1];
        for p in 0..self.n {
            let d = self.depth[p] as usize;
            match level_kind[d] {
                None => level_kind[d] = Some(self.kind[p]),
                Some(k) if k == self.kind[p] => {}
                Some(k) => {
                    return Err(format!(
                        "level {d} mixes kinds {:?} and {k:?}",
                        self.kind[p]
                    ))
                }
            }
        }
        // Height bound.
        if self.n >= 2 {
            let bound = 2.0 * (self.n as f64).log2();
            if (self.height as f64) > bound + 1e-9 {
                return Err(format!(
                    "height {} exceeds 2·log₂ n = {bound:.2}",
                    self.height
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_layout_n9() {
        // Matches Figure 2 of the paper exactly.
        let t = BalancedTree::new(9);
        assert_eq!(t.kind(0), NodeKind::Branching);
        assert_eq!(t.children(0), (Some(1), Some(5)));
        assert_eq!(t.kind(1), NodeKind::NonBranching);
        assert_eq!(t.children(1), (Some(2), None));
        assert_eq!(t.kind(2), NodeKind::Branching);
        assert_eq!(t.children(2), (Some(3), Some(4)));
        assert!(t.is_leaf(3) && t.is_leaf(4));
        assert_eq!(t.kind(5), NodeKind::NonBranching);
        assert_eq!(t.children(5), (Some(6), None));
        assert_eq!(t.children(6), (Some(7), Some(8)));
        assert!(t.is_leaf(7) && t.is_leaf(8));
        t.validate().unwrap();
    }

    #[test]
    fn singleton_tree() {
        let t = BalancedTree::new(1);
        assert!(t.is_leaf(0));
        assert_eq!(t.height(), 0);
        t.validate().unwrap();
    }

    #[test]
    fn even_root_is_non_branching_odd_is_branching() {
        for n in 2..200 {
            let t = BalancedTree::new(n);
            if n % 2 == 0 {
                assert_eq!(t.kind(0), NodeKind::NonBranching, "n={n}");
            } else {
                assert_eq!(t.kind(0), NodeKind::Branching, "n={n}");
            }
        }
    }

    #[test]
    fn validate_holds_for_many_sizes() {
        for n in 1..=512 {
            BalancedTree::new(n).validate().unwrap_or_else(|e| {
                panic!("n={n}: {e}");
            });
        }
        for n in [1000, 1023, 1024, 1025, 4096, 99_991] {
            BalancedTree::new(n).validate().unwrap();
        }
    }

    #[test]
    fn preorder_child_arithmetic() {
        let t = BalancedTree::new(37);
        for p in 0..37 {
            match t.kind(p) {
                NodeKind::NonBranching => {
                    assert_eq!(t.left_child(p), Some(p + 1));
                    assert_eq!(t.right_child(p), None);
                }
                NodeKind::Branching => {
                    let l = t.branch_half(p);
                    assert_eq!(t.left_child(p), Some(p + 1));
                    assert_eq!(t.right_child(p), Some(p + l + 1));
                    assert_eq!(t.subtree_size(p + 1), l);
                    assert_eq!(t.subtree_size(p + l + 1), l);
                }
                NodeKind::Leaf => {
                    assert_eq!(t.children(p), (None, None));
                }
            }
        }
    }

    #[test]
    fn subtree_sizes_sum_consistently() {
        let t = BalancedTree::new(100);
        for p in 0..100 {
            let expect = 1 + t
                .children(p)
                .0
                .map(|c| t.subtree_size(c))
                .unwrap_or(0)
                + t.children(p).1.map(|c| t.subtree_size(c)).unwrap_or(0);
            assert_eq!(t.subtree_size(p), expect, "node {p}");
        }
    }

    #[test]
    fn root_paths_descend_via_children() {
        let t = BalancedTree::new(57);
        for leaf in t.leaves() {
            let path = t.root_path(leaf);
            assert_eq!(path[0], 0);
            assert_eq!(*path.last().unwrap(), leaf);
            for w in path.windows(2) {
                let (l, r) = t.children(w[0]);
                assert!(l == Some(w[1]) || r == Some(w[1]));
            }
            // Path length = depth + 1 ≤ height + 1.
            assert_eq!(path.len() as u32, t.depth(leaf) + 1);
        }
    }

    #[test]
    fn height_bound_tight_cases() {
        // Powers of two minus one give perfect trees: height exactly log n.
        let t = BalancedTree::new(127);
        assert_eq!(t.height(), 6);
        // Even chains add non-branching levels but stay under 2 log n.
        for n in [6usize, 14, 62, 1022] {
            let t = BalancedTree::new(n);
            assert!((t.height() as f64) <= 2.0 * (n as f64).log2());
        }
    }

    #[test]
    fn leaves_count_matches_branching_structure() {
        // In any binary tree, #leaves = #branching + 1.
        for n in [9usize, 10, 33, 100, 255] {
            let t = BalancedTree::new(n);
            let leaves = t.leaves().len();
            let branching = (0..n).filter(|&p| t.is_branching(p)).count();
            assert_eq!(leaves, branching + 1, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_size_rejected() {
        BalancedTree::new(0);
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn depths_increase_by_one_along_edges() {
        let t = BalancedTree::new(200);
        for p in 0..200 {
            for c in [t.children(p).0, t.children(p).1].into_iter().flatten() {
                assert_eq!(t.depth(c), t.depth(p) + 1);
            }
        }
    }

    #[test]
    fn branch_half_only_on_branching() {
        let t = BalancedTree::new(9);
        assert_eq!(t.branch_half(0), 4);
        assert_eq!(t.branch_half(2), 1);
    }

    #[test]
    #[should_panic(expected = "not branching")]
    fn branch_half_rejects_non_branching() {
        BalancedTree::new(9).branch_half(1);
    }

    #[test]
    #[should_panic(expected = "not a leaf")]
    fn root_path_rejects_internal_nodes() {
        BalancedTree::new(9).root_path(0);
    }

    #[test]
    fn perfect_tree_shape_for_power_of_two_minus_one() {
        // n = 2^h − 1 gives a perfect binary tree: every level branching
        // until the leaves, height h − 1.
        let t = BalancedTree::new(31);
        assert_eq!(t.height(), 4);
        assert_eq!(t.leaves().len(), 16);
        for p in 0..31 {
            if t.kind(p) == NodeKind::NonBranching { panic!("perfect tree has no chains") }
        }
    }

    #[test]
    fn chain_tree_for_small_even_sizes() {
        // n = 2: root (even) → child leaf.
        let t = BalancedTree::new(2);
        assert_eq!(t.kind(0), NodeKind::NonBranching);
        assert!(t.is_leaf(1));
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(0), None);
    }

    #[test]
    fn subtree_sizes_at_same_level_are_equal() {
        let t = BalancedTree::new(500);
        let mut by_depth: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        for p in 0..500 {
            let d = t.depth(p);
            let s = t.subtree_size(p);
            let e = by_depth.entry(d).or_insert(s);
            assert_eq!(*e, s, "level {d} mixes subtree sizes");
        }
    }
}
