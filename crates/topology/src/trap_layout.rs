//! State-id layouts for chains of agent traps (paper §2.1, §3.1, §4.1).
//!
//! A *trap* of size `s` occupies `s` consecutive state ids: offset `0` is
//! the **gate** state, offsets `1..s` the **inner** states (offset `s − 1`
//! is the *top* inner state that the gate rule refills). A [`TrapChain`]
//! lays several traps of (possibly different) sizes out consecutively and
//! provides O(1) id ↔ (trap, offset) conversions via a precomputed reverse
//! map.
//!
//! The paper's constructions use uniform trap size `m + 1` and population
//! sizes of the special forms `n = m(m+1)` (ring) and `n = 3m³(m+1)`
//! (lines); to support **arbitrary** `n` it scatters the leftover states
//! over the traps. [`distribute`] implements that scattering: parts as
//! equal as possible, larger parts first, preserving the `Θ(m)` trap-size
//! asymptotics.
//!
//! # Examples
//!
//! ```
//! use ssr_topology::trap_layout::TrapChain;
//!
//! // A ring of 3 traps of size 4 (m = 3): states 0..12.
//! let chain = TrapChain::uniform(3, 4, 0);
//! assert_eq!(chain.gate(1), 4);
//! assert_eq!(chain.top(1), 7);
//! assert_eq!(chain.locate(6), (1, 2));
//! ```

/// Split `total` into `parts` non-negative integers that are as equal as
/// possible (differing by at most one, larger parts first).
///
/// # Panics
///
/// Panics if `parts == 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(ssr_topology::trap_layout::distribute(10, 3), vec![4, 3, 3]);
/// ```
pub fn distribute(total: usize, parts: usize) -> Vec<u32> {
    assert!(parts > 0, "cannot distribute over zero parts");
    let base = (total / parts) as u32;
    let rem = total % parts;
    (0..parts)
        .map(|i| base + u32::from(i < rem))
        .collect()
}

/// A consecutive layout of traps with per-trap sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapChain {
    base_id: u32,
    sizes: Vec<u32>,
    /// `starts[t]` = first (gate) state id of trap `t`; `starts[m]` = end.
    starts: Vec<u32>,
    /// Reverse map: for local id `i` (0-based from `base_id`),
    /// `trap_of[i]` is the trap index.
    trap_of: Vec<u32>,
}

impl TrapChain {
    /// Build a chain from explicit per-trap sizes, with global state ids
    /// starting at `base_id`.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or any size is zero.
    pub fn new(sizes: Vec<u32>, base_id: u32) -> Self {
        assert!(!sizes.is_empty(), "a trap chain needs at least one trap");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "every trap needs at least its gate state"
        );
        let mut starts = Vec::with_capacity(sizes.len() + 1);
        let mut acc = base_id;
        let mut trap_of = Vec::new();
        for (t, &s) in sizes.iter().enumerate() {
            starts.push(acc);
            trap_of.extend(std::iter::repeat_n(t as u32, s as usize));
            acc += s;
        }
        starts.push(acc);
        TrapChain {
            base_id,
            sizes,
            starts,
            trap_of,
        }
    }

    /// Chain of `traps` traps, all of the same `size`.
    ///
    /// # Panics
    ///
    /// Panics if `traps == 0` or `size == 0`.
    pub fn uniform(traps: usize, size: u32, base_id: u32) -> Self {
        Self::new(vec![size; traps], base_id)
    }

    /// Chain of `traps` traps sharing `total_states` states distributed as
    /// equally as possible (paper's leftover scattering).
    ///
    /// # Panics
    ///
    /// Panics if `traps == 0` or `total_states < traps`.
    pub fn spread(traps: usize, total_states: usize, base_id: u32) -> Self {
        assert!(
            total_states >= traps,
            "need at least one state per trap ({traps} traps, {total_states} states)"
        );
        Self::new(distribute(total_states, traps), base_id)
    }

    /// Number of traps.
    pub fn num_traps(&self) -> usize {
        self.sizes.len()
    }

    /// Number of states spanned by the chain.
    pub fn num_states(&self) -> usize {
        (self.starts[self.sizes.len()] - self.base_id) as usize
    }

    /// First state id of the chain.
    pub fn base_id(&self) -> u32 {
        self.base_id
    }

    /// One past the last state id of the chain.
    pub fn end_id(&self) -> u32 {
        self.starts[self.sizes.len()]
    }

    /// Size (gate + inner states) of trap `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn size(&self, t: usize) -> u32 {
        self.sizes[t]
    }

    /// Gate state id of trap `t`.
    pub fn gate(&self, t: usize) -> u32 {
        self.starts[t]
    }

    /// Top inner state id of trap `t` (the state the gate rule refills).
    /// Equals the gate itself for degenerate size-1 traps (the paper's
    /// `m = 0` case).
    pub fn top(&self, t: usize) -> u32 {
        self.starts[t] + self.sizes[t] - 1
    }

    /// State id of trap `t`, offset `b` (0 = gate).
    ///
    /// # Panics
    ///
    /// Panics (in debug) if `b >= size(t)`.
    pub fn state(&self, t: usize, b: u32) -> u32 {
        debug_assert!(b < self.sizes[t]);
        self.starts[t] + b
    }

    /// True if `id` lies within this chain.
    pub fn contains(&self, id: u32) -> bool {
        id >= self.base_id && id < self.end_id()
    }

    /// `(trap, offset)` of a state id in the chain.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the chain.
    #[inline]
    pub fn locate(&self, id: u32) -> (usize, u32) {
        assert!(self.contains(id), "state {id} outside chain");
        let local = (id - self.base_id) as usize;
        let t = self.trap_of[local] as usize;
        (t, id - self.starts[t])
    }

    /// True if `id` is a gate state of this chain.
    pub fn is_gate(&self, id: u32) -> bool {
        self.contains(id) && {
            let (t, b) = self.locate(id);
            let _ = t;
            b == 0
        }
    }

    /// Iterator over trap indices.
    pub fn traps(&self) -> std::ops::Range<usize> {
        0..self.num_traps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribute_equalises() {
        assert_eq!(distribute(12, 4), vec![3, 3, 3, 3]);
        assert_eq!(distribute(13, 4), vec![4, 3, 3, 3]);
        assert_eq!(distribute(15, 4), vec![4, 4, 4, 3]);
        assert_eq!(distribute(0, 3), vec![0, 0, 0]);
        let d = distribute(1_000_003, 997);
        assert_eq!(d.iter().map(|&x| x as usize).sum::<usize>(), 1_000_003);
        let (min, max) = (d.iter().min().unwrap(), d.iter().max().unwrap());
        assert!(max - min <= 1);
    }

    #[test]
    fn uniform_chain_ids() {
        let c = TrapChain::uniform(4, 3, 10);
        assert_eq!(c.num_states(), 12);
        assert_eq!(c.base_id(), 10);
        assert_eq!(c.end_id(), 22);
        assert_eq!(c.gate(0), 10);
        assert_eq!(c.top(0), 12);
        assert_eq!(c.gate(3), 19);
        assert_eq!(c.state(2, 1), 17);
    }

    #[test]
    fn locate_roundtrips_every_state() {
        let c = TrapChain::new(vec![1, 4, 2, 7], 5);
        for t in c.traps() {
            for b in 0..c.size(t) {
                let id = c.state(t, b);
                assert_eq!(c.locate(id), (t, b));
                assert_eq!(c.is_gate(id), b == 0);
            }
        }
    }

    #[test]
    fn degenerate_size_one_trap() {
        let c = TrapChain::new(vec![1], 0);
        assert_eq!(c.gate(0), 0);
        assert_eq!(c.top(0), 0, "top == gate for the m = 0 trap");
    }

    #[test]
    fn spread_covers_total() {
        let c = TrapChain::spread(7, 30, 100);
        assert_eq!(c.num_states(), 30);
        assert_eq!(c.num_traps(), 7);
        let sizes: Vec<u32> = c.traps().map(|t| c.size(t)).collect();
        assert_eq!(sizes.iter().sum::<u32>(), 30);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    #[should_panic(expected = "at least one state per trap")]
    fn spread_rejects_too_few_states() {
        TrapChain::spread(5, 4, 0);
    }

    #[test]
    #[should_panic(expected = "outside chain")]
    fn locate_rejects_foreign_ids() {
        TrapChain::uniform(2, 2, 0).locate(4);
    }

    #[test]
    fn contains_boundaries() {
        let c = TrapChain::uniform(2, 3, 7);
        assert!(!c.contains(6));
        assert!(c.contains(7));
        assert!(c.contains(12));
        assert!(!c.contains(13));
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn chains_tile_disjointly() {
        // Consecutive chains with increasing base ids partition a range.
        let a = TrapChain::spread(3, 10, 0);
        let b = TrapChain::spread(4, 12, a.end_id());
        assert_eq!(a.end_id(), 10);
        assert_eq!(b.base_id(), 10);
        assert_eq!(b.end_id(), 22);
        for id in 0..22u32 {
            let in_a = a.contains(id);
            let in_b = b.contains(id);
            assert!(in_a ^ in_b, "id {id} must be in exactly one chain");
        }
    }

    #[test]
    fn distribute_single_part() {
        assert_eq!(distribute(7, 1), vec![7]);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn distribute_rejects_zero_parts() {
        distribute(5, 0);
    }

    #[test]
    fn traps_iterator_covers_all() {
        let c = TrapChain::uniform(5, 2, 0);
        assert_eq!(c.traps().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn gate_top_relationship() {
        let c = TrapChain::new(vec![3, 1, 5], 0);
        for t in c.traps() {
            assert_eq!(c.top(t) - c.gate(t) + 1, c.size(t));
            assert!(c.is_gate(c.gate(t)));
            if c.size(t) > 1 {
                assert!(!c.is_gate(c.top(t)));
            }
        }
    }
}
