//! The routing graph `G` of paper §4.2 (Figure 1).
//!
//! `G` spreads agents in the extra state `X` roughly evenly over the
//! entrance gates of the `m²` lines of traps: each trap of a line points to
//! one of the line's three neighbours in `G`, so an `X`-agent interacting
//! with a random agent performs one hop of a random walk on `G`, whose
//! diameter is `O(log m)`.
//!
//! Construction (paper, verbatim): start from `G′`, a balanced full binary
//! tree with `V + 1` vertices (`V/2 + 1` leaves, every internal node has two
//! children, the root has degree 2). Merge the root with one of the leaves
//! into a single vertex, then add a cycle through all remaining leaves. For
//! even `V ≥ 8` the result is a simple 3-regular (cubic) graph of diameter
//! `≤ 4⌈log₂ m⌉ + O(1)` where `V = m²`.
//!
//! For completeness the constructor also accepts odd or tiny `V` (the
//! padded neighbour table may then repeat an edge; routing only needs
//! *some* three outgoing labels per vertex, not simplicity). The paper uses
//! `V = m²` with even `m`, where the construction is exactly cubic.
//!
//! # Examples
//!
//! ```
//! use ssr_topology::cubic_graph::CubicGraph;
//!
//! // Figure 1 of the paper: m² = 16.
//! let g = CubicGraph::routing_graph(16);
//! assert_eq!(g.num_vertices(), 16);
//! assert!(g.is_three_regular());
//! assert!(g.is_connected());
//! assert!(g.diameter() <= 4 * 2 + 2); // 4⌈log₂ 4⌉ + O(1)
//! ```

/// An undirected graph where every vertex stores exactly three neighbour
/// labels (repeats allowed for degenerate sizes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubicGraph {
    nbr: Vec<[u32; 3]>,
}

impl CubicGraph {
    /// Build the paper's routing graph on `v` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `v == 0`.
    pub fn routing_graph(v: usize) -> Self {
        assert!(v > 0, "routing graph needs at least one vertex");
        if v <= 6 {
            return Self::tiny(v);
        }
        if v % 2 == 1 {
            // Odd v: tree with (v+1)/2 leaves has exactly v vertices; keep
            // the root (degree 2, padded) and cycle through all leaves.
            return Self::tree_cycle(v, false);
        }
        Self::tree_cycle(v, true)
    }

    /// Degenerate graphs for `v ≤ 4`: ring plus chord, padded to 3 labels.
    fn tiny(v: usize) -> Self {
        let mut nbr = Vec::with_capacity(v);
        for i in 0..v {
            if v == 1 {
                nbr.push([0, 0, 0]);
            } else {
                let a = ((i + 1) % v) as u32;
                let b = ((i + v - 1) % v) as u32;
                let c = ((i + v / 2) % v) as u32;
                let c = if c as usize == i { a } else { c };
                nbr.push([a, b, c]);
            }
        }
        CubicGraph { nbr }
    }

    /// Balanced full binary tree with `leaves = v/2 + 1` (merge = true,
    /// even `v`) or `(v+1)/2` (merge = false, odd `v`) leaves, then the
    /// merge-and-cycle step.
    fn tree_cycle(v: usize, merge: bool) -> Self {
        let leaves_n = if merge { v / 2 + 1 } else { v.div_ceil(2) };
        // Recursive complete splitting: every internal node has exactly two
        // children; leaf depths differ by at most one, so the height is
        // ⌈log₂ leaves_n⌉ ≤ 2⌈log₂ m⌉ for leaves_n ≤ m²/2 + 1.
        struct Builder {
            adj: Vec<Vec<u32>>,
            leaves: Vec<usize>,
        }
        impl Builder {
            fn node(&mut self) -> usize {
                self.adj.push(Vec::new());
                self.adj.len() - 1
            }
            fn build(&mut self, leaves: usize) -> usize {
                let id = self.node();
                if leaves == 1 {
                    self.leaves.push(id);
                } else {
                    let l = self.build(leaves.div_ceil(2));
                    let r = self.build(leaves / 2);
                    self.adj[id].push(l as u32);
                    self.adj[l].push(id as u32);
                    self.adj[id].push(r as u32);
                    self.adj[r].push(id as u32);
                }
                id
            }
        }
        let mut b = Builder {
            adj: Vec::new(),
            leaves: Vec::new(),
        };
        let root = b.build(leaves_n);
        debug_assert_eq!(root, 0);
        let mut adj = b.adj;
        let mut leaves = b.leaves;

        if merge {
            // Merge the root with a leaf: reattach the leaf's parent edge
            // to the root, delete the leaf. To keep the graph simple the
            // leaf's parent must not already neighbour the root, so pick a
            // deepest such leaf (one exists whenever the tree has ≥ 3
            // levels, i.e. v ≥ 8; smaller sizes use the tiny fallback).
            let depth = {
                let mut d = vec![u32::MAX; adj.len()];
                d[root] = 0;
                let mut q = std::collections::VecDeque::from([root]);
                while let Some(u) = q.pop_front() {
                    for &w in &adj[u] {
                        if d[w as usize] == u32::MAX {
                            d[w as usize] = d[u] + 1;
                            q.push_back(w as usize);
                        }
                    }
                }
                d
            };
            let pos = leaves
                .iter()
                .rposition(|&l| {
                    let parent = adj[l][0] as usize;
                    parent != root && !adj[root].contains(&(parent as u32))
                })
                .map(|p| {
                    // Prefer a deepest qualifying leaf for the height bound.
                    let best = leaves
                        .iter()
                        .enumerate()
                        .filter(|&(_, &l)| {
                            let parent = adj[l][0] as usize;
                            parent != root && !adj[root].contains(&(parent as u32))
                        })
                        .max_by_key(|&(_, &l)| depth[l])
                        .map(|(i, _)| i)
                        .unwrap_or(p);
                    best
                })
                .unwrap_or(leaves.len() - 1);
            let doomed = leaves.remove(pos);
            let parent = adj[doomed][0] as usize;
            adj[doomed].clear();
            for e in adj[parent].iter_mut() {
                if *e as usize == doomed {
                    *e = root as u32;
                }
            }
            adj[root].push(parent as u32);
            // Compact ids: shift every id above `doomed` down by one.
            let remap = |x: u32| if x as usize > doomed { x - 1 } else { x };
            adj.remove(doomed);
            for lst in adj.iter_mut() {
                for e in lst.iter_mut() {
                    *e = remap(*e);
                }
            }
            for l in leaves.iter_mut() {
                if *l > doomed {
                    *l -= 1;
                }
            }
        }

        // Cycle through the remaining leaves (in tree left-to-right order).
        let c = leaves.len();
        if c >= 2 {
            for i in 0..c {
                let a = leaves[i];
                let b2 = leaves[(i + 1) % c];
                if c == 2 && i == 1 {
                    break; // avoid a doubled edge for the 2-leaf "cycle"
                }
                adj[a].push(b2 as u32);
                adj[b2].push(a as u32);
            }
        }

        debug_assert_eq!(adj.len(), v);
        // Pad every vertex to exactly three labels.
        let nbr = adj
            .into_iter()
            .enumerate()
            .map(|(i, lst)| {
                let mut out = [0u32; 3];
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = *lst
                        .get(k)
                        .or_else(|| lst.last())
                        .unwrap_or(&(((i + 1) % v) as u32));
                }
                out
            })
            .collect();
        CubicGraph { nbr }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.nbr.len()
    }

    /// The three neighbour labels of `vertex` (`l₀, l₁, l₂` of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `vertex` is out of range.
    pub fn neighbors(&self, vertex: usize) -> [usize; 3] {
        let n = self.nbr[vertex];
        [n[0] as usize, n[1] as usize, n[2] as usize]
    }

    /// True when every vertex has three *distinct* neighbours, none equal
    /// to itself, and adjacency is symmetric — i.e. the graph is a simple
    /// cubic graph.
    pub fn is_three_regular(&self) -> bool {
        let v = self.num_vertices();
        for i in 0..v {
            let ns = self.neighbors(i);
            if ns[0] == ns[1] || ns[0] == ns[2] || ns[1] == ns[2] {
                return false;
            }
            for &j in &ns {
                if j == i || j >= v || !self.neighbors(j).contains(&i) {
                    return false;
                }
            }
        }
        true
    }

    /// True when all vertices are reachable from vertex 0.
    pub fn is_connected(&self) -> bool {
        self.bfs(0).iter().all(|&d| d != u32::MAX)
    }

    /// BFS distances from `src` (unreached = `u32::MAX`).
    pub fn bfs(&self, src: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_vertices()];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for w in self.neighbors(u) {
                if dist[w] == u32::MAX {
                    dist[w] = dist[u] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Exact diameter via all-pairs BFS (`O(v²)`; fine for the `m²`-sized
    /// routing graphs used here).
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn diameter(&self) -> u32 {
        (0..self.num_vertices())
            .map(|s| {
                *self
                    .bfs(s)
                    .iter()
                    .max()
                    .expect("non-empty graph")
            })
            .max()
            .inspect(|&d| {
                assert_ne!(d, u32::MAX, "graph is disconnected");
            })
            .expect("non-empty graph")
    }

    /// Adjacency in `vertex: a b c` lines (1-based like Figure 1).
    pub fn render_adjacency(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for i in 0..self.num_vertices() {
            let ns = self.neighbors(i);
            let _ = writeln!(out, "{:>4}: {} {} {}", i + 1, ns[0] + 1, ns[1] + 1, ns[2] + 1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_m2_16_is_cubic_connected_small_diameter() {
        let g = CubicGraph::routing_graph(16);
        assert_eq!(g.num_vertices(), 16);
        assert!(g.is_three_regular(), "{}", g.render_adjacency());
        assert!(g.is_connected());
        // m = 4 → bound 4⌈log₂ 4⌉ = 8 (+O(1) slack not needed here).
        assert!(g.diameter() <= 8, "diameter {}", g.diameter());
    }

    #[test]
    fn even_sizes_are_simple_cubic() {
        for v in [8usize, 10, 16, 36, 64, 100, 144, 256, 1024] {
            let g = CubicGraph::routing_graph(v);
            assert_eq!(g.num_vertices(), v);
            assert!(g.is_three_regular(), "v={v}\n{}", g.render_adjacency());
            assert!(g.is_connected(), "v={v}");
        }
    }

    #[test]
    fn odd_and_tiny_sizes_still_route() {
        for v in [1usize, 2, 3, 4, 5, 7, 9, 15, 49] {
            let g = CubicGraph::routing_graph(v);
            assert_eq!(g.num_vertices(), v);
            assert!(g.is_connected(), "v={v}");
            for i in 0..v {
                for w in g.neighbors(i) {
                    assert!(w < v);
                }
            }
        }
    }

    #[test]
    fn diameter_is_logarithmic() {
        for m in [4usize, 6, 8, 10, 16] {
            let v = m * m;
            let g = CubicGraph::routing_graph(v);
            let bound = 4 * (m as f64).log2().ceil() as u32 + 2;
            assert!(
                g.diameter() <= bound,
                "m={m}: diameter {} > {bound}",
                g.diameter()
            );
        }
    }

    #[test]
    fn edge_count_matches_cubic() {
        // 3-regular graph has 3v/2 undirected edges; count directed stubs.
        let g = CubicGraph::routing_graph(64);
        let mut edges = std::collections::HashSet::new();
        for i in 0..64 {
            for w in g.neighbors(i) {
                edges.insert((i.min(w), i.max(w)));
            }
        }
        assert_eq!(edges.len(), 3 * 64 / 2);
    }

    #[test]
    fn bfs_distances_sane() {
        let g = CubicGraph::routing_graph(16);
        let d = g.bfs(0);
        assert_eq!(d[0], 0);
        for w in g.neighbors(0) {
            assert_eq!(d[w], 1);
        }
    }

    #[test]
    fn render_adjacency_is_one_based() {
        let g = CubicGraph::routing_graph(8);
        let s = g.render_adjacency();
        assert!(s.lines().count() == 8);
        assert!(s.contains("   1:"));
    }
}
