//! # ssr-topology — combinatorial substrates for the ranking protocols
//!
//! The paper's protocols are built from three combinatorial tools, all
//! implemented here from scratch:
//!
//! * [`balanced_tree`] — *perfectly balanced binary trees* (§5, Figure 2)
//!   spanning all `n` rank states in pre-order; the backbone of the
//!   `O(n log n)` near-state-optimal protocol.
//! * [`cubic_graph`] — the cubic *routing graph `G`* (§4.2, Figure 1) that
//!   spreads `X`-agents over the `m²` lines of traps in `O(log m)` hops.
//! * [`trap_layout`] — state-id layouts for chains of *agent traps* (§2.1)
//!   with variable trap sizes, supporting arbitrary population sizes `n`
//!   via the paper's leftover-scattering.
//!
//! ```
//! use ssr_topology::{BalancedTree, CubicGraph, TrapChain};
//!
//! let tree = BalancedTree::new(9);          // Figure 2
//! let graph = CubicGraph::routing_graph(16); // Figure 1
//! let ring = TrapChain::uniform(3, 4, 0);    // (3, 4)-ring of traps
//! assert_eq!(tree.children(0), (Some(1), Some(5)));
//! assert!(graph.is_three_regular());
//! assert_eq!(ring.num_states(), 12);
//! ```

// `unsafe_code = "forbid"` comes from [workspace.lints] in the root manifest.
// Truncation-cast audit (workspace denies `cast_possible_truncation`):
// geometry code converts between u64 pre-order node ids and usize
// indices; every narrow is bounded by the tree size `n`, which fits
// usize by construction (the tree is addressable memory).
#![allow(clippy::cast_possible_truncation)]
#![warn(missing_docs)]

pub mod balanced_tree;
pub mod cubic_graph;
pub mod trap_layout;

pub use balanced_tree::{BalancedTree, NodeKind};
pub use cubic_graph::CubicGraph;
pub use trap_layout::{distribute, TrapChain};
