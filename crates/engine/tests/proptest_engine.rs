//! Property tests for the engine primitives: Fenwick trees against a
//! naive reference, RNG range invariants, geometric sampling, and the
//! configuration generators.

use proptest::prelude::*;
use ssr_engine::fenwick::Fenwick;
use ssr_engine::init;
use ssr_engine::rng::{derive_seed, Xoshiro256};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fenwick tree behaves exactly like a plain weight vector under an
    /// arbitrary sequence of set operations.
    #[test]
    fn fenwick_matches_reference(
        len in 1usize..200,
        ops in prop::collection::vec((0usize..200, 0u64..1000), 1..100),
    ) {
        let mut f = Fenwick::new(len);
        let mut reference = vec![0u64; len];
        for (idx, w) in ops {
            let idx = idx % len;
            f.set(idx, w);
            reference[idx] = w;
        }
        prop_assert_eq!(f.total(), reference.iter().sum::<u64>());
        let mut acc = 0;
        for (i, &w) in reference.iter().enumerate() {
            acc += w;
            prop_assert_eq!(f.prefix_sum(i), acc, "prefix at {}", i);
        }
        // Every weighted slot is hit by sampling its range boundaries.
        let mut offset = 0u64;
        for (i, &w) in reference.iter().enumerate() {
            if w > 0 {
                prop_assert_eq!(f.sample(offset), i);
                prop_assert_eq!(f.sample(offset + w - 1), i);
                offset += w;
            }
        }
    }

    /// `below` stays in range for arbitrary bounds and seeds.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Derived seeds are collision-free over small index windows.
    #[test]
    fn derived_seeds_distinct(base in any::<u64>()) {
        let seeds: std::collections::HashSet<u64> =
            (0..64).map(|i| derive_seed(base, i)).collect();
        prop_assert_eq!(seeds.len(), 64);
    }

    /// Geometric samples are finite and their mean tracks (1-p)/p within
    /// loose statistical tolerance.
    #[test]
    fn geometric_mean_tracks(seed in any::<u64>(), pk in 1u32..50) {
        let p = pk as f64 / 100.0;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let trials = 4000;
        let mean = (0..trials).map(|_| rng.geometric(p) as f64).sum::<f64>()
            / trials as f64;
        let expected = (1.0 - p) / p;
        // 5 sigma of the geometric std over 4000 trials.
        let sigma = ((1.0 - p).sqrt() / p) / (trials as f64).sqrt();
        prop_assert!(
            (mean - expected).abs() < 5.0 * sigma + 0.05,
            "p={} mean={} expected={}", p, mean, expected
        );
    }

    /// Configuration helpers agree: counts/from_counts round-trip and the
    /// distance function counts exactly the unoccupied ranks.
    #[test]
    fn config_roundtrip(n in 1usize..300, s in 1usize..50, seed in any::<u64>()) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let cfg = init::uniform_random(n, s, &mut rng);
        let counts = init::counts(&cfg, s);
        prop_assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), n);
        let mut back = init::from_counts(&counts);
        let mut sorted = cfg.clone();
        sorted.sort_unstable();
        back.sort_unstable();
        prop_assert_eq!(back, sorted);
        let occupied = counts.iter().filter(|&&c| c > 0).count();
        prop_assert_eq!(init::distance(&cfg, s), s - occupied);
    }
}
