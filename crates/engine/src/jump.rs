//! Exact jump-chain (Gillespie-style) simulation.
//!
//! Null interactions — ordered pairs whose transition is a no-op — do not
//! change the configuration, so the embedded chain of *productive*
//! interactions together with geometrically distributed null-gap lengths is
//! **exactly** the same stochastic process as the naive simulator, only
//! without spending time sampling nulls. Near stabilisation, where the
//! probability of a productive pair drops to `Θ(1/n²)`, this is faster by
//! orders of magnitude; it is what makes the paper's `Θ(n²)`-time baseline
//! and `k`-distant experiments tractable.
//!
//! The simulator needs to know the total number of productive ordered pairs
//! `W(C)` in the current configuration `C` and to sample one uniformly.
//! Protocols declare their productive-pair structure via
//! [`InteractionSchema`]; the engine compiles the declared classes once and
//! keeps all per-class weights incrementally up to date (see
//! [`crate::classes`] for the weight decomposition).
//!
//! # Examples
//!
//! ```
//! use ssr_engine::protocol::{ClassSpec, InteractionSchema, Protocol, State};
//! use ssr_engine::jump::JumpSimulation;
//!
//! struct Ag { n: usize }
//! impl Protocol for Ag {
//!     fn name(&self) -> &str { "A_G" }
//!     fn population_size(&self) -> usize { self.n }
//!     fn num_states(&self) -> usize { self.n }
//!     fn num_rank_states(&self) -> usize { self.n }
//!     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
//!         (i == r).then(|| (i, (r + 1) % self.n as State))
//!     }
//! }
//! impl InteractionSchema for Ag {
//!     fn interaction_classes(&self) -> Vec<ClassSpec> {
//!         vec![ClassSpec::equal_rank()]
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = Ag { n: 64 };
//! let mut sim = JumpSimulation::new(&p, vec![0; 64], 42)?;
//! let report = sim.run_until_silent(u64::MAX)?;
//! assert!(sim.is_silent());
//! assert!(report.interactions >= report.productive_interactions);
//! # Ok(())
//! # }
//! ```

use crate::classes::ClassState;
use crate::engine::{ByzOverlay, CappedAdvance};
use crate::error::{ConfigError, StabilisationTimeout};
use crate::init;
use crate::protocol::{InteractionSchema, State};
use crate::rng::Xoshiro256;
use crate::sim::StabilisationReport;

/// Jump-chain simulation over per-state occupancy counts.
///
/// Operates on the (anonymous) counts representation: agents are
/// indistinguishable, so the multiset of states is the full configuration.
pub struct JumpSimulation<'a, P: InteractionSchema + ?Sized> {
    protocol: &'a P,
    state: ClassState,
    interactions: u64,
    productive: u64,
    ordered_pairs: u64,
    rng: Xoshiro256,
    byz: Option<ByzOverlay>,
}

impl<'a, P: InteractionSchema + ?Sized> JumpSimulation<'a, P> {
    /// Start from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on population or state-range mismatch.
    pub fn new(protocol: &'a P, config: Vec<State>, seed: u64) -> Result<Self, ConfigError> {
        let n = protocol.population_size();
        if config.len() != n {
            return Err(ConfigError::WrongPopulation {
                expected: n,
                got: config.len(),
            });
        }
        init::validate(&config, protocol.num_states())?;
        Self::from_counts(
            protocol,
            init::counts(&config, protocol.num_states()),
            seed,
        )
    }

    /// Start from per-state occupancy counts (must sum to the population).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::WrongPopulation`] if counts do not sum to `n`
    /// or the counts vector length differs from the state-space size.
    pub fn from_counts(
        protocol: &'a P,
        counts: Vec<u32>,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        let n = protocol.population_size();
        let state = ClassState::new(protocol, counts)?;
        Ok(JumpSimulation {
            protocol,
            state,
            interactions: 0,
            productive: 0,
            // lint:allow(A001): widening usize→u64 casts of n, not a
            // truncation — the product fits u64 for every n the 4n-byte
            // agent/count memory model can reach (n < 2³²).
            ordered_pairs: (n as u64) * (n as u64).saturating_sub(1),
            rng: Xoshiro256::seed_from_u64(seed),
            byz: None,
        })
    }

    /// Current per-state occupancy counts.
    pub fn counts(&self) -> &[u32] {
        &self.state.counts
    }

    /// Total interactions simulated (nulls included, counted exactly).
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Productive interactions executed.
    pub fn productive_interactions(&self) -> u64 {
        self.productive
    }

    /// Parallel time elapsed: interactions / n.
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.protocol.population_size() as f64
    }

    /// Number of productive ordered pairs in the current configuration.
    pub fn productive_pairs(&self) -> u64 {
        self.state.productive_pairs()
    }

    /// Silent iff no ordered pair is productive.
    pub fn is_silent(&self) -> bool {
        self.productive_pairs() == 0
    }

    /// Execute one productive interaction (plus the geometric number of
    /// preceding nulls). Returns the ordered state pair rewritten, or
    /// `None` if the configuration is silent.
    pub fn step_productive(&mut self) -> Option<((State, State), (State, State))> {
        let w = self.state.productive_pairs();
        if w == 0 {
            return None;
        }
        debug_assert!(w <= self.ordered_pairs);
        let p = w as f64 / self.ordered_pairs as f64;
        // geometric() saturates at u64::MAX — add saturating so the +1
        // cannot wrap the clock (the count engine owns the u128 regime).
        self.interactions = self
            .interactions
            .saturating_add(self.rng.geometric(p))
            .saturating_add(1);
        self.productive += 1;
        Some(self.sample_and_apply())
    }

    /// Sample the productive pair for an already-scheduled chain event,
    /// apply the transition (subject to Byzantine vetoes) and return the
    /// rewrite. Shared by [`step_productive`](Self::step_productive) and
    /// the capped stepper so both consume the RNG identically.
    fn sample_and_apply(&mut self) -> ((State, State), (State, State)) {
        let (si, sr) = self.state.sample_pair(&mut self.rng);
        let (mut si2, mut sr2) = self
            .protocol
            .transition(si, sr)
            .unwrap_or_else(|| {
                panic!(
                    "schema declared ({si},{sr}) productive but transition \
                     returned None (protocol contract violation)"
                )
            });
        match &self.byz {
            Some(byz) => {
                let (veto_i, veto_r) = byz.veto(&mut self.rng, &self.state.counts, si, sr);
                if veto_i {
                    si2 = si;
                }
                if veto_r {
                    sr2 = sr;
                }
            }
            None => {
                debug_assert!(si2 != si || sr2 != sr, "identity rewrite for ({si},{sr})");
            }
        }
        if si != si2 {
            self.state.update_count(si, -1);
            self.state.update_count(si2, 1);
        }
        if sr != sr2 {
            self.state.update_count(sr, -1);
            self.state.update_count(sr2, 1);
        }
        ((si, sr), (si2, sr2))
    }

    /// Run until silent or until more than `max_interactions` have elapsed.
    ///
    /// Semantics match the naive simulator: success is reported only when
    /// the last productive interaction falls within the cap.
    ///
    /// # Errors
    ///
    /// Returns [`StabilisationTimeout`] when the cap is exceeded first.
    pub fn run_until_silent(
        &mut self,
        max_interactions: u64,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        loop {
            if self.is_silent() {
                if self.interactions <= max_interactions {
                    return Ok(StabilisationReport {
                        interactions: self.interactions,
                        interactions_wide: self.interactions as u128,
                        productive_interactions: self.productive,
                        parallel_time: self.parallel_time(),
                    });
                }
                return Err(StabilisationTimeout {
                    interactions: max_interactions,
                });
            }
            if self.interactions >= max_interactions {
                return Err(StabilisationTimeout {
                    interactions: self.interactions,
                });
            }
            self.step_productive();
        }
    }

    /// Move one agent from state `from` to state `to` (transient-fault
    /// injection). All sampling weights are kept consistent; the
    /// interaction clock is not advanced.
    ///
    /// # Panics
    ///
    /// Panics if `from` is unoccupied or either state id is out of range.
    pub fn inject_fault(&mut self, from: State, to: State) {
        assert!(
            (from as usize) < self.state.counts.len()
                && (to as usize) < self.state.counts.len(),
            "state out of range"
        );
        let reserved = self
            .byz
            .as_ref()
            .map_or(0, |byz| byz.counts[from as usize]);
        assert!(
            self.state.counts[from as usize] > reserved,
            "state {from} has no non-Byzantine occupant"
        );
        if from == to {
            return;
        }
        self.state.update_count(from, -1);
        self.state.update_count(to, 1);
    }

    /// Consume the simulation and return the final occupancy counts.
    pub fn into_counts(self) -> Vec<u32> {
        self.state.counts
    }
}

impl<P: InteractionSchema + ?Sized> crate::engine::Engine for JumpSimulation<'_, P> {
    fn engine_name(&self) -> &'static str {
        "jump"
    }

    fn population_size(&self) -> usize {
        self.protocol.population_size()
    }

    fn counts(&self) -> &[u32] {
        &self.state.counts
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn productive_interactions(&self) -> u64 {
        self.productive
    }

    fn is_silent(&self) -> bool {
        JumpSimulation::is_silent(self)
    }

    /// One productive interaction (plus its skipped nulls): always
    /// `Some(1)` unless silent.
    fn advance(&mut self) -> Option<u64> {
        self.step_productive().map(|_| 1)
    }

    fn run_until_silent(
        &mut self,
        max_interactions: u64,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        JumpSimulation::run_until_silent(self, max_interactions)
    }

    fn run_until_silent_observed(
        &mut self,
        max_interactions: u64,
        observer: &mut dyn crate::engine::CountObserver,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        loop {
            if JumpSimulation::is_silent(self) {
                if self.interactions <= max_interactions {
                    return Ok(StabilisationReport {
                        interactions: self.interactions,
                        interactions_wide: self.interactions as u128,
                        productive_interactions: self.productive,
                        parallel_time: JumpSimulation::parallel_time(self),
                    });
                }
                return Err(StabilisationTimeout {
                    interactions: max_interactions,
                });
            }
            if self.interactions >= max_interactions {
                return Err(StabilisationTimeout {
                    interactions: self.interactions,
                });
            }
            if let Some((before, after)) = self.step_productive() {
                observer.on_productive(
                    self.interactions,
                    before,
                    after,
                    1,
                    &self.state.counts,
                );
            }
        }
    }

    fn advance_to(
        &mut self,
        cap: u128,
        observer: &mut dyn crate::engine::CountObserver,
    ) -> CappedAdvance {
        let w = self.state.productive_pairs();
        if w == 0 {
            return CappedAdvance::Silent;
        }
        if (self.interactions as u128) >= cap {
            return CappedAdvance::CapReached;
        }
        debug_assert!(w <= self.ordered_pairs);
        let p = w as f64 / self.ordered_pairs as f64;
        let gap = self.rng.geometric(p);
        let next = (self.interactions as u128) + gap as u128 + 1;
        if next > cap {
            // Exact truncation: by memorylessness the time to the next
            // productive interaction, measured from the cap, is again
            // geometric under whatever weights then hold.
            // lint:allow(A001): saturating clamp at the u64 clock width.
            self.interactions = cap.min(u64::MAX as u128) as u64;
            return CappedAdvance::CapReached;
        }
        // lint:allow(A001): exact — `next ≤ cap ≤ u64::MAX` was checked above.
        self.interactions = next as u64;
        self.productive += 1;
        let (before, after) = self.sample_and_apply();
        observer.on_productive(self.interactions, before, after, 1, &self.state.counts);
        CappedAdvance::Applied(1)
    }

    fn set_byzantine(&mut self, byz: &[u32]) {
        self.byz = ByzOverlay::build(byz, &self.state.counts);
    }

    fn num_rank_states(&self) -> usize {
        self.state.num_ranks
    }

    fn skip_nulls(&mut self, nulls: u128) {
        self.interactions = self
            .interactions
            // lint:allow(A001): saturating clamp at the u64 clock width.
            .saturating_add(nulls.min(u64::MAX as u128) as u64);
    }

    fn inject_state_fault(&mut self, from: State, to: State) {
        JumpSimulation::inject_fault(self, from, to);
    }

    fn snapshot(&self) -> crate::engine::EngineSnapshot {
        crate::engine::EngineSnapshot {
            agents: None,
            counts: self.state.counts.clone(),
            interactions: self.interactions as u128,
            productive: self.productive,
            rng: self.rng.clone(),
            count_ctl: None,
        }
    }

    fn restore(&mut self, snapshot: &crate::engine::EngineSnapshot) {
        let mut fresh =
            JumpSimulation::from_counts(self.protocol, snapshot.counts.clone(), 0)
                .expect("snapshot counts do not match this protocol");
        // The jump engine's clock is u64; count-engine snapshots past
        // u64::MAX cannot be represented here and saturate.
        // lint:allow(A001): that documented saturation, deliberately.
        fresh.interactions = snapshot.interactions.min(u64::MAX as u128) as u64;
        fresh.productive = snapshot.productive;
        fresh.rng = snapshot.rng.clone();
        // The Byzantine overlay is an engine-level property, not part of
        // the captured configuration: it survives the restore.
        fresh.byz = self.byz.take();
        *self = fresh;
    }
}

impl<P: InteractionSchema + ?Sized> std::fmt::Debug for JumpSimulation<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JumpSimulation")
            .field("protocol", &self.protocol.name())
            .field("n", &self.protocol.population_size())
            .field("interactions", &self.interactions)
            .field("productive", &self.productive)
            .field("silent", &self.is_silent())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ClassSpec, Protocol};
    use crate::sim::Simulation;

    struct Ag {
        n: usize,
    }
    impl Protocol for Ag {
        fn name(&self) -> &str {
            "A_G"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            if i == r {
                Some((i, (r + 1) % self.n as State))
            } else {
                None
            }
        }
    }
    impl InteractionSchema for Ag {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::equal_rank()]
        }
    }

    #[test]
    fn stabilises_to_perfect_ranking() {
        let p = Ag { n: 32 };
        let mut sim = JumpSimulation::new(&p, vec![0; 32], 5).unwrap();
        sim.run_until_silent(u64::MAX).unwrap();
        assert!(sim.counts().iter().all(|&c| c == 1));
    }

    #[test]
    fn silent_start_reports_zero() {
        let p = Ag { n: 8 };
        let mut sim = JumpSimulation::new(&p, (0..8).collect(), 5).unwrap();
        let rep = sim.run_until_silent(10).unwrap();
        assert_eq!(rep.interactions, 0);
        assert_eq!(rep.productive_interactions, 0);
    }

    #[test]
    fn from_counts_validates_total() {
        let p = Ag { n: 4 };
        assert!(JumpSimulation::from_counts(&p, vec![1, 1, 1, 0], 1).is_err());
        assert!(JumpSimulation::from_counts(&p, vec![4, 0, 0, 0], 1).is_ok());
        assert!(JumpSimulation::from_counts(&p, vec![4, 0, 0], 1).is_err());
    }

    #[test]
    fn timeout_semantics() {
        let p = Ag { n: 16 };
        let mut sim = JumpSimulation::new(&p, vec![0; 16], 3).unwrap();
        let err = sim.run_until_silent(2).unwrap_err();
        assert!(err.interactions >= 2);
    }

    #[test]
    fn interactions_always_at_least_productive() {
        let p = Ag { n: 16 };
        let mut sim = JumpSimulation::new(&p, vec![0; 16], 7).unwrap();
        let rep = sim.run_until_silent(u64::MAX).unwrap();
        assert!(rep.interactions >= rep.productive_interactions);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = Ag { n: 24 };
        let run = |seed| {
            let mut s = JumpSimulation::new(&p, vec![3; 24], seed).unwrap();
            s.run_until_silent(u64::MAX).unwrap().interactions
        };
        assert_eq!(run(11), run(11));
    }

    /// The jump chain and naive chain are the same process: compare mean
    /// stabilisation times from a stacked start over many trials.
    #[test]
    fn statistically_matches_naive_simulator() {
        let p = Ag { n: 12 };
        let trials = 300;
        let mean = |jump: bool| -> f64 {
            let total: u64 = (0..trials)
                .map(|t| {
                    let cfg = vec![0u32; 12];
                    if jump {
                        let mut s =
                            JumpSimulation::new(&p, cfg, 1000 + t).unwrap();
                        s.run_until_silent(u64::MAX).unwrap().interactions
                    } else {
                        let mut s = Simulation::new(&p, cfg, 2000 + t).unwrap();
                        s.run_until_silent(u64::MAX).unwrap().interactions
                    }
                })
                .sum();
            total as f64 / trials as f64
        };
        let mj = mean(true);
        let mn = mean(false);
        let rel = (mj - mn).abs() / mn;
        assert!(
            rel < 0.15,
            "jump mean {mj:.0} vs naive mean {mn:.0} (rel diff {rel:.3})"
        );
    }

    #[test]
    fn productive_pairs_counts_equal_rule_weight() {
        let p = Ag { n: 6 };
        // counts: 3 agents in state 0, 2 in state 1, 1 in state 2.
        let sim =
            JumpSimulation::from_counts(&p, vec![3, 2, 1, 0, 0, 0], 1).unwrap();
        // 3·2 + 2·1 = 8 productive ordered pairs.
        assert_eq!(sim.productive_pairs(), 8);
    }

    /// A sparse-pair protocol runs on the jump engine end to end: rule
    /// (0,1) → (0,2) drains state 1, rule (2,2) → (1,2) refills it; from
    /// [2,2,0] the chain must reach the silent support [2,0,2]... which is
    /// not all-distinct — this is a non-ranking protocol, silence simply
    /// means no productive pair remains.
    struct Sparse;
    impl Protocol for Sparse {
        fn name(&self) -> &str {
            "sparse"
        }
        fn population_size(&self) -> usize {
            4
        }
        fn num_states(&self) -> usize {
            3
        }
        fn num_rank_states(&self) -> usize {
            3
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            match (i, r) {
                (0, 1) => Some((0, 2)),
                _ => None,
            }
        }
    }
    impl InteractionSchema for Sparse {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::pair(0, 1)]
        }
    }

    #[test]
    fn sparse_pair_protocol_runs_to_silence() {
        crate::protocol::validate_interaction_schema(&Sparse).unwrap();
        let p = Sparse;
        let mut sim = JumpSimulation::from_counts(&p, vec![2, 2, 0], 7).unwrap();
        assert_eq!(sim.productive_pairs(), 4); // 2·2 ordered (0,1) pairs
        let rep = sim.run_until_silent(u64::MAX).unwrap();
        assert_eq!(rep.productive_interactions, 2);
        assert_eq!(sim.counts(), &[2, 0, 2]);
    }
}
