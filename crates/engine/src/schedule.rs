//! Pluggable interaction schedulers (robustness extension).
//!
//! The paper's model fixes the *uniform* random scheduler: every ordered
//! pair of distinct agents is equally likely in every step. The
//! correctness of the protocols, however, only relies on the scheduler
//! being "fair enough" — every pair keeps a positive probability — while
//! the *time bounds* are proved for the uniform case. This module makes
//! the scheduler a first-class, swappable component so that robustness to
//! scheduler skew can be measured (experiment ES in `exp_schedulers`):
//!
//! * [`UniformScheduler`] — the paper's model (identical in distribution
//!   to the built-in [`crate::sim::Simulation`] loop);
//! * [`ZipfScheduler`] — agents are picked with Zipf-like weights
//!   `w_i ∝ 1/(i+1)^θ`, modelling heterogeneous contact rates (some
//!   agents meet others far more often);
//! * [`ClusteredScheduler`] — the population is split into two blocks and
//!   cross-block pairs fire with probability `ε`, modelling a weakly
//!   connected two-community contact graph.
//!
//! Every scheduler must return **ordered pairs of distinct agents** and
//! give every pair positive probability; [`validate_scheduler`] spot-checks
//! both requirements empirically. Non-uniform schedulers preserve
//! stabilisation (silence is a property of the configuration alone) but
//! stretch time — by how much is exactly what the experiment measures.
//!
//! # Examples
//!
//! ```
//! use ssr_engine::schedule::{Scheduler, ZipfScheduler};
//! use ssr_engine::rng::Xoshiro256;
//!
//! let mut sched = ZipfScheduler::new(10, 1.0);
//! let mut rng = Xoshiro256::seed_from_u64(1);
//! let (i, r) = sched.next_pair(&mut rng);
//! assert_ne!(i, r);
//! ```

use crate::rng::Xoshiro256;

/// A source of ordered (initiator, responder) agent pairs.
///
/// Implementations must return pairs of **distinct** indices in
/// `0..population` and should give every ordered pair positive
/// probability, otherwise stabilisation from some configurations can be
/// lost entirely (cf. the self-loop routing ablation in EXPERIMENTS.md).
pub trait Scheduler {
    /// Population size this scheduler draws from.
    fn population(&self) -> usize;

    /// Draw the next ordered pair using the provided RNG.
    fn next_pair(&mut self, rng: &mut Xoshiro256) -> (usize, usize);

    /// Short human-readable description for reports.
    fn describe(&self) -> String;
}

/// The paper's uniform random scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformScheduler {
    n: usize,
}

impl UniformScheduler {
    /// Uniform scheduler over `n ≥ 2` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least two agents");
        UniformScheduler { n }
    }
}

impl Scheduler for UniformScheduler {
    fn population(&self) -> usize {
        self.n
    }

    fn next_pair(&mut self, rng: &mut Xoshiro256) -> (usize, usize) {
        rng.ordered_pair(self.n)
    }

    fn describe(&self) -> String {
        "uniform".into()
    }
}

/// Zipf-weighted scheduler: agent `i` is drawn with probability
/// proportional to `1/(i+1)^θ`, independently for the initiator and the
/// responder (rejecting equal picks). `θ = 0` recovers the uniform
/// scheduler; larger `θ` concentrates interactions on low-index agents.
///
/// Draws use a Walker/Vose **alias table**: O(n) construction, O(1) per
/// draw — the scheduler sits in the inner loop of every scheduled
/// interaction, where the previous CDF binary search cost O(log n).
#[derive(Debug, Clone)]
pub struct ZipfScheduler {
    /// Per-slot acceptance probability (Vose `prob` array).
    prob: Vec<f64>,
    /// Per-slot alias target when the acceptance test fails.
    alias: Vec<u32>,
    theta: f64,
}

impl ZipfScheduler {
    /// Zipf scheduler over `n ≥ 2` agents with skew exponent `θ ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `θ` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 2, "need at least two agents");
        assert!(theta >= 0.0 && theta.is_finite(), "invalid skew exponent");
        assert!(n <= u32::MAX as usize, "population too large for alias table");
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        // Vose's method: scale to mean 1, then pair each under-full slot
        // with an over-full donor.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // The donor gives away (1 − prob[s]) of its mass.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers are full slots.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        ZipfScheduler { prob, alias, theta }
    }

    #[inline]
    fn draw(&self, rng: &mut Xoshiro256) -> usize {
        let i = rng.below_usize(self.prob.len());
        if rng.unit_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

impl Scheduler for ZipfScheduler {
    fn population(&self) -> usize {
        self.prob.len()
    }

    fn next_pair(&mut self, rng: &mut Xoshiro256) -> (usize, usize) {
        let i = self.draw(rng);
        loop {
            let r = self.draw(rng);
            if r != i {
                return (i, r);
            }
        }
    }

    fn describe(&self) -> String {
        format!("zipf(θ = {})", self.theta)
    }
}

/// Two-community scheduler: agents `0..split` form block A, the rest
/// block B; with probability `ε` the pair crosses blocks (one endpoint
/// uniform in each block, order random), otherwise it is uniform within a
/// block chosen proportionally to the number of ordered pairs it contains.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredScheduler {
    n: usize,
    split: usize,
    epsilon: f64,
}

impl ClusteredScheduler {
    /// Clustered scheduler with blocks `0..split` and `split..n` and
    /// cross-block probability `ε ∈ (0, 1]`.
    ///
    /// `ε` must be strictly positive: with `ε = 0` the blocks never talk
    /// and ranking (which needs global coordination) becomes unsolvable.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ split ≤ n − 2` and `0 < ε ≤ 1`.
    pub fn new(n: usize, split: usize, epsilon: f64) -> Self {
        assert!(split >= 2 && n >= split + 2, "each block needs ≥ 2 agents");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "cross-block probability must be in (0, 1]"
        );
        ClusteredScheduler { n, split, epsilon }
    }
}

impl Scheduler for ClusteredScheduler {
    fn population(&self) -> usize {
        self.n
    }

    fn next_pair(&mut self, rng: &mut Xoshiro256) -> (usize, usize) {
        if rng.unit_f64() < self.epsilon {
            let a = rng.below_usize(self.split);
            let b = self.split + rng.below_usize(self.n - self.split);
            if rng.next_u64() & 1 == 0 {
                (a, b)
            } else {
                (b, a)
            }
        } else {
            let a_pairs = (self.split * (self.split - 1)) as u64;
            let rest = self.n - self.split;
            let b_pairs = (rest * (rest - 1)) as u64;
            if rng.below(a_pairs + b_pairs) < a_pairs {
                let (i, r) = rng.ordered_pair(self.split);
                (i, r)
            } else {
                let (i, r) = rng.ordered_pair(rest);
                (self.split + i, self.split + r)
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "clustered(split = {}, ε = {})",
            self.split, self.epsilon
        )
    }
}

/// Empirically validate a scheduler: draws `samples` pairs and checks that
/// (a) all pairs are ordered pairs of distinct in-range agents, and
/// (b) every **agent** appears at least once as initiator and as responder
/// (a cheap positive-probability proxy; full pair coverage would need
/// `Ω(n²)` samples).
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_scheduler<S: Scheduler>(
    sched: &mut S,
    rng: &mut Xoshiro256,
    samples: u64,
) -> Result<(), String> {
    let n = sched.population();
    let mut seen_i = vec![false; n];
    let mut seen_r = vec![false; n];
    for _ in 0..samples {
        let (i, r) = sched.next_pair(rng);
        if i >= n || r >= n {
            return Err(format!("pair ({i},{r}) out of range for n = {n}"));
        }
        if i == r {
            return Err(format!("self-pair ({i},{i}) drawn"));
        }
        seen_i[i] = true;
        seen_r[r] = true;
    }
    if let Some(a) = (0..n).find(|&a| !seen_i[a]) {
        return Err(format!("agent {a} never drawn as initiator"));
    }
    if let Some(a) = (0..n).find(|&a| !seen_r[a]) {
        return Err(format!("agent {a} never drawn as responder"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(42)
    }

    #[test]
    fn uniform_matches_builtin_distribution() {
        // Chi-square-style sanity: all n(n−1) ordered pairs roughly equal.
        let n = 6;
        let mut sched = UniformScheduler::new(n);
        let mut r = rng();
        let mut counts = vec![0u32; n * n];
        let samples = 300_000;
        for _ in 0..samples {
            let (i, j) = sched.next_pair(&mut r);
            counts[i * n + j] += 1;
        }
        let expected = samples as f64 / (n * (n - 1)) as f64;
        for i in 0..n {
            for j in 0..n {
                let c = counts[i * n + j] as f64;
                if i == j {
                    assert_eq!(c, 0.0);
                } else {
                    assert!(
                        (c - expected).abs() < 0.05 * expected,
                        "pair ({i},{j}): {c} vs {expected}"
                    );
                }
            }
        }
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let n = 5;
        let mut sched = ZipfScheduler::new(n, 0.0);
        let mut r = rng();
        let mut init_counts = vec![0u32; n];
        for _ in 0..100_000 {
            let (i, _) = sched.next_pair(&mut r);
            init_counts[i] += 1;
        }
        let expected = 100_000.0 / n as f64;
        for (a, &c) in init_counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 0.05 * expected,
                "agent {a}: {c}"
            );
        }
    }

    #[test]
    fn zipf_alias_table_matches_exact_distribution() {
        // The alias table must reproduce the w_i ∝ 1/(i+1)^θ marginals
        // exactly (up to sampling noise), not just the ordering.
        let n = 12;
        let theta = 1.3;
        let sched = ZipfScheduler::new(n, theta);
        let mut r = rng();
        let samples = 400_000;
        let mut counts = vec![0u64; n];
        for _ in 0..samples {
            counts[sched.draw(&mut r)] += 1;
        }
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let expected = samples as f64 * weights[i] / total;
            assert!(
                (c as f64 - expected).abs() < 0.05 * expected + 50.0,
                "agent {i}: {c} vs ~{expected:.0}"
            );
        }
    }

    #[test]
    fn zipf_skews_toward_low_indices() {
        let n = 20;
        let mut sched = ZipfScheduler::new(n, 1.5);
        let mut r = rng();
        let mut init_counts = vec![0u64; n];
        for _ in 0..200_000 {
            let (i, _) = sched.next_pair(&mut r);
            init_counts[i] += 1;
        }
        assert!(init_counts[0] > 10 * init_counts[n - 1]);
    }

    #[test]
    fn clustered_cross_rate_matches_epsilon() {
        let n = 20;
        let split = 10;
        let eps = 0.05;
        let mut sched = ClusteredScheduler::new(n, split, eps);
        let mut r = rng();
        let mut cross = 0u64;
        let samples = 400_000;
        for _ in 0..samples {
            let (i, j) = sched.next_pair(&mut r);
            if (i < split) != (j < split) {
                cross += 1;
            }
        }
        let rate = cross as f64 / samples as f64;
        assert!((rate - eps).abs() < 0.01, "cross rate {rate}");
    }

    #[test]
    fn clustered_cross_pairs_cover_both_orders() {
        let mut sched = ClusteredScheduler::new(6, 3, 1.0);
        let mut r = rng();
        let (mut ab, mut ba) = (false, false);
        for _ in 0..1_000 {
            let (i, j) = sched.next_pair(&mut r);
            if i < 3 && j >= 3 {
                ab = true;
            }
            if i >= 3 && j < 3 {
                ba = true;
            }
        }
        assert!(ab && ba, "both orders of cross pairs must occur");
    }

    #[test]
    fn all_schedulers_pass_validation() {
        let mut r = rng();
        validate_scheduler(&mut UniformScheduler::new(8), &mut r, 20_000).unwrap();
        validate_scheduler(&mut ZipfScheduler::new(8, 1.0), &mut r, 60_000).unwrap();
        validate_scheduler(&mut ClusteredScheduler::new(8, 4, 0.2), &mut r, 20_000).unwrap();
    }

    #[test]
    fn validation_catches_self_pairs() {
        struct Selfish;
        impl Scheduler for Selfish {
            fn population(&self) -> usize {
                4
            }
            fn next_pair(&mut self, _rng: &mut Xoshiro256) -> (usize, usize) {
                (2, 2)
            }
            fn describe(&self) -> String {
                "selfish".into()
            }
        }
        let err = validate_scheduler(&mut Selfish, &mut rng(), 10).unwrap_err();
        assert!(err.contains("self-pair"));
    }

    #[test]
    fn validation_catches_starved_agents() {
        struct FirstTwo;
        impl Scheduler for FirstTwo {
            fn population(&self) -> usize {
                5
            }
            fn next_pair(&mut self, rng: &mut Xoshiro256) -> (usize, usize) {
                let (i, r) = rng.ordered_pair(2);
                (i, r)
            }
            fn describe(&self) -> String {
                "first-two".into()
            }
        }
        let err = validate_scheduler(&mut FirstTwo, &mut rng(), 1_000).unwrap_err();
        assert!(err.contains("never drawn"));
    }

    #[test]
    #[should_panic(expected = "cross-block probability")]
    fn clustered_rejects_zero_epsilon() {
        ClusteredScheduler::new(8, 4, 0.0);
    }

    #[test]
    fn descriptions_are_informative() {
        assert_eq!(UniformScheduler::new(4).describe(), "uniform");
        assert!(ZipfScheduler::new(4, 1.0).describe().contains("zipf"));
        assert!(ClusteredScheduler::new(8, 4, 0.5)
            .describe()
            .contains("clustered"));
    }
}
