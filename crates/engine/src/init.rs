//! Initial-configuration generators.
//!
//! Self-stabilising protocols must recover from **arbitrary** starting
//! configurations; the generators here produce the families used in the
//! paper's analysis: exact rankings, `k`-distant configurations (exactly `k`
//! rank states unoccupied, no extra states used), uniformly random
//! configurations over the whole state space, and single-state stacks.
//!
//! A configuration is a `Vec<State>` of length `n` (one state per agent).
//!
//! # Examples
//!
//! ```
//! use ssr_engine::init;
//! use ssr_engine::rng::Xoshiro256;
//!
//! let mut rng = Xoshiro256::seed_from_u64(1);
//! let cfg = init::k_distant(10, 3, init::DuplicatePlacement::Random, &mut rng);
//! assert_eq!(init::distance(&cfg, 10), 3);
//! ```

use crate::protocol::State;
use crate::rng::Xoshiro256;

/// Where the duplicated agents of a `k`-distant configuration are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DuplicatePlacement {
    /// Each of the `k` displaced agents lands on a uniformly random occupied
    /// rank state (duplicates may themselves stack further).
    Random,
    /// All `k` displaced agents stack on a single occupied rank state —
    /// the adversarial "tall column" start.
    Stacked,
    /// Displaced agents are spread round-robin over the occupied rank
    /// states with the lowest ids.
    SpreadLow,
}

/// The silent target configuration: agent `i` in rank state `i`.
///
/// # Examples
///
/// ```
/// assert_eq!(ssr_engine::init::perfect_ranking(3), vec![0, 1, 2]);
/// ```
pub fn perfect_ranking(n: usize) -> Vec<State> {
    (0..n as State).collect()
}

/// A `k`-distant configuration: `n` agents all in rank states, with exactly
/// `k` of the `n` rank states unoccupied. The missing rank states are chosen
/// uniformly at random; `placement` controls where the `k` displaced agents
/// go.
///
/// # Panics
///
/// Panics if `k >= n` (at least one rank state must be occupied) unless
/// `n == 0`.
pub fn k_distant(
    n: usize,
    k: usize,
    placement: DuplicatePlacement,
    rng: &mut Xoshiro256,
) -> Vec<State> {
    if n == 0 {
        return Vec::new();
    }
    assert!(
        k < n,
        "a k-distant configuration needs k < n (got k = {k}, n = {n})"
    );
    // lint:allow(D002): membership-only — queried with `contains` in a
    // deterministic 0..n scan; never iterated.
    let missing: std::collections::HashSet<usize> =
        rng.sample_distinct(n, k).into_iter().collect();
    let present: Vec<State> = (0..n)
        .filter(|i| !missing.contains(i))
        .map(|i| i as State)
        .collect();
    let mut cfg: Vec<State> = present.clone();
    match placement {
        DuplicatePlacement::Random => {
            for _ in 0..k {
                let host = present[rng.below_usize(present.len())];
                cfg.push(host);
            }
        }
        DuplicatePlacement::Stacked => {
            let host = present[rng.below_usize(present.len())];
            cfg.extend(std::iter::repeat_n(host, k));
        }
        DuplicatePlacement::SpreadLow => {
            for j in 0..k {
                cfg.push(present[j % present.len()]);
            }
        }
    }
    rng.shuffle(&mut cfg);
    debug_assert_eq!(cfg.len(), n);
    cfg
}

/// A uniformly random configuration: each agent independently uniform over
/// **all** `num_states` states (rank and extra alike). This is the paper's
/// "arbitrary initial configuration" in the average case.
pub fn uniform_random(n: usize, num_states: usize, rng: &mut Xoshiro256) -> Vec<State> {
    assert!(num_states > 0, "need at least one state");
    (0..n)
        .map(|_| rng.below(num_states as u64) as State)
        .collect()
}

/// [`uniform_random`] delivered directly as per-state occupancy counts:
/// the same `n` draws from the same RNG stream (so for a given seed the
/// multiset of states is identical), but without materialising the
/// `4n`-byte agent vector — the constructor path count-based engines use
/// at `n = 10⁸…10⁹`.
pub fn uniform_random_counts(n: usize, num_states: usize, rng: &mut Xoshiro256) -> Vec<u32> {
    assert!(num_states > 0, "need at least one state");
    let mut counts = vec![0u32; num_states];
    for _ in 0..n {
        counts[rng.below(num_states as u64) as usize] += 1;
    }
    counts
}

/// All `n` agents stacked in a single state `s` — the extreme adversarial
/// start (an `(n-1)`-distant configuration when `s` is a rank state).
pub fn all_in(n: usize, s: State) -> Vec<State> {
    vec![s; n]
}

/// Number of **unoccupied rank states** (the paper's distance `k` of a
/// configuration from the final configuration).
///
/// Agents in extra states simply do not contribute occupancy.
pub fn distance(cfg: &[State], num_rank_states: usize) -> usize {
    let mut occupied = vec![false; num_rank_states];
    for &s in cfg {
        if (s as usize) < num_rank_states {
            occupied[s as usize] = true;
        }
    }
    occupied.iter().filter(|&&o| !o).count()
}

/// True when the configuration is a perfect ranking: every rank state
/// occupied by exactly one agent and no agent in an extra state.
pub fn is_perfect_ranking(cfg: &[State], num_rank_states: usize) -> bool {
    if cfg.len() != num_rank_states {
        return false;
    }
    let mut seen = vec![false; num_rank_states];
    for &s in cfg {
        let s = s as usize;
        if s >= num_rank_states || seen[s] {
            return false;
        }
        seen[s] = true;
    }
    true
}

/// Occupancy counts per state for a configuration.
pub fn counts(cfg: &[State], num_states: usize) -> Vec<u32> {
    let mut c = vec![0u32; num_states];
    for &s in cfg {
        c[s as usize] += 1;
    }
    c
}

/// Expand per-state counts back into a configuration (agents sorted by
/// state id). Inverse of [`counts`] up to agent permutation — agents are
/// anonymous, so any order represents the same configuration.
pub fn from_counts(counts: &[u32]) -> Vec<State> {
    let mut cfg = Vec::with_capacity(counts.iter().map(|&c| c as usize).sum());
    for (s, &c) in counts.iter().enumerate() {
        cfg.extend(std::iter::repeat_n(s as State, c as usize));
    }
    cfg
}

/// Validate that every state id in `cfg` is below `num_states`.
///
/// # Errors
///
/// Returns the offending agent index and state.
pub fn validate(cfg: &[State], num_states: usize) -> Result<(), crate::error::ConfigError> {
    for (agent, &s) in cfg.iter().enumerate() {
        if (s as usize) >= num_states {
            return Err(crate::error::ConfigError::StateOutOfRange {
                agent,
                state: s,
                num_states,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(99)
    }

    #[test]
    fn perfect_ranking_is_zero_distant() {
        let cfg = perfect_ranking(12);
        assert_eq!(distance(&cfg, 12), 0);
        assert!(is_perfect_ranking(&cfg, 12));
    }

    #[test]
    fn k_distant_has_exact_distance_all_placements() {
        let mut r = rng();
        for placement in [
            DuplicatePlacement::Random,
            DuplicatePlacement::Stacked,
            DuplicatePlacement::SpreadLow,
        ] {
            for k in [0usize, 1, 5, 19] {
                let cfg = k_distant(20, k, placement, &mut r);
                assert_eq!(cfg.len(), 20);
                assert_eq!(distance(&cfg, 20), k, "{placement:?} k={k}");
                assert!(cfg.iter().all(|&s| (s as usize) < 20));
            }
        }
    }

    #[test]
    #[should_panic(expected = "k < n")]
    fn k_distant_rejects_k_equal_n() {
        k_distant(5, 5, DuplicatePlacement::Random, &mut rng());
    }

    #[test]
    fn stacked_places_all_duplicates_on_one_state() {
        let mut r = rng();
        let cfg = k_distant(30, 10, DuplicatePlacement::Stacked, &mut r);
        let c = counts(&cfg, 30);
        let max = *c.iter().max().unwrap();
        assert_eq!(max, 11, "one state hosts 1 + k agents");
    }

    #[test]
    fn uniform_random_in_range() {
        let mut r = rng();
        let cfg = uniform_random(1000, 37, &mut r);
        assert!(cfg.iter().all(|&s| (s as usize) < 37));
        // All 37 states should appear at n = 1000 with overwhelming prob.
        let c = counts(&cfg, 37);
        assert!(c.iter().all(|&x| x > 0));
    }

    #[test]
    fn all_in_distance() {
        let cfg = all_in(10, 3);
        assert_eq!(distance(&cfg, 10), 9);
    }

    #[test]
    fn counts_roundtrip() {
        let mut r = rng();
        let cfg = uniform_random(50, 10, &mut r);
        let c = counts(&cfg, 10);
        assert_eq!(c.iter().sum::<u32>(), 50);
        let back = from_counts(&c);
        let mut sorted = cfg.clone();
        sorted.sort_unstable();
        assert_eq!(back, sorted);
    }

    #[test]
    fn is_perfect_ranking_rejects_duplicates_and_extras() {
        assert!(!is_perfect_ranking(&[0, 0, 2], 3));
        assert!(!is_perfect_ranking(&[0, 1, 3], 3)); // 3 is an extra state
        assert!(!is_perfect_ranking(&[0, 1], 3)); // wrong population
        assert!(is_perfect_ranking(&[2, 0, 1], 3));
    }

    #[test]
    fn validate_flags_out_of_range() {
        assert!(validate(&[0, 1, 2], 3).is_ok());
        let err = validate(&[0, 5], 3).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains('5'), "{msg}");
    }

    #[test]
    fn distance_ignores_extra_states() {
        // 4 rank states; one agent parked in extra state 5.
        assert_eq!(distance(&[0, 1, 5, 2], 4), 1);
    }
}
