//! # ssr-engine — population-protocol simulation substrate
//!
//! A from-scratch implementation of the probabilistic population-protocol
//! model used by the paper *"Improving Efficiency in Near-State and
//! State-Optimal Self-Stabilising Leader Election Population Protocols"*
//! (PODC 2025): `n` anonymous agents, each holding one state; in every step
//! the random scheduler draws an ordered pair (initiator, responder)
//! uniformly among the `n(n−1)` ordered pairs of distinct agents and applies
//! the protocol's deterministic transition function. *Parallel time* is the
//! number of interactions divided by `n`.
//!
//! ## Components
//!
//! * [`protocol`] — the [`Protocol`](protocol::Protocol) trait, the ranking
//!   contract, and the [`ProductiveClasses`](protocol::ProductiveClasses)
//!   declaration that enables exact null-skipping.
//! * [`sim`] — the naive step-by-step simulator with observer hooks.
//! * [`jump`] — the exact jump-chain simulator (skips null interactions,
//!   same stochastic process, orders of magnitude faster near silence).
//! * [`init`] — initial-configuration generators (`k`-distant, uniform
//!   random, stacked, …).
//! * [`runner`] — parallel multi-trial driver with deterministic seeding.
//! * [`observer`] — invariant checkers and time-series recorders.
//! * [`rng`], [`fenwick`] — deterministic RNG and weighted sampling.
//!
//! ## Quickstart
//!
//! ```
//! use ssr_engine::protocol::{Protocol, ProductiveClasses, State};
//! use ssr_engine::jump::JumpSimulation;
//!
//! /// The generic state-optimal ranking protocol A_G.
//! struct Ag { n: usize }
//! impl Protocol for Ag {
//!     fn name(&self) -> &str { "A_G" }
//!     fn population_size(&self) -> usize { self.n }
//!     fn num_states(&self) -> usize { self.n }
//!     fn num_rank_states(&self) -> usize { self.n }
//!     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
//!         (i == r).then(|| (i, (r + 1) % self.n as State))
//!     }
//! }
//! impl ProductiveClasses for Ag {}
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let protocol = Ag { n: 100 };
//! let mut sim = JumpSimulation::new(&protocol, vec![0; 100], 1)?;
//! let report = sim.run_until_silent(u64::MAX)?;
//! println!("stabilised in parallel time {:.1}", report.parallel_time);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod faults;
pub mod fenwick;
pub mod init;
pub mod jump;
pub mod observer;
pub mod protocol;
pub mod rng;
pub mod runner;
pub mod schedule;
pub mod sim;

pub use error::{ConfigError, StabilisationTimeout};
pub use faults::{perturb_counts, rank_distance, recovery_after_faults, RecoveryReport};
pub use jump::JumpSimulation;
pub use protocol::{ExtraRankCross, ProductiveClasses, Protocol, State};
pub use runner::{run_trials, Backend, TrialConfig, TrialResults};
pub use schedule::{ClusteredScheduler, Scheduler, UniformScheduler, ZipfScheduler};
pub use sim::{Simulation, StabilisationReport};
