//! # ssr-engine — population-protocol simulation substrate
//!
//! A from-scratch implementation of the probabilistic population-protocol
//! model used by the paper *"Improving Efficiency in Near-State and
//! State-Optimal Self-Stabilising Leader Election Population Protocols"*
//! (PODC 2025): `n` anonymous agents, each holding one state; in every step
//! the random scheduler draws an ordered pair (initiator, responder)
//! uniformly among the `n(n−1)` ordered pairs of distinct agents and applies
//! the protocol's deterministic transition function. *Parallel time* is the
//! number of interactions divided by `n`.
//!
//! ## The interaction schema
//!
//! One declarative contract connects protocols to engines: a protocol
//! implements [`InteractionSchema`](protocol::InteractionSchema) by
//! enumerating its productive **interaction classes** — equal-rank pairs,
//! all extra–extra pairs, rank–extra cross pairs by direction, plus an
//! escape hatch of enumerated sparse pairs — each with a weight formula
//! over occupancy counts and an exchangeability flag. The same schema
//! drives exact null-skipping (which pairs can fire and with what weight),
//! per-class batching (which classes may be executed as multinomially
//! split batches), and exhaustive validation
//! ([`protocol::validate_interaction_schema`]).
//!
//! ## The engine hierarchy
//!
//! Three interchangeable engines simulate the identical stochastic process
//! behind the unified [`Engine`](engine::Engine) trait (select one at
//! runtime with [`engine::EngineKind`] — `Auto` resolves per population
//! size — through the [`Scenario`](runner::Scenario) builder,
//! [`engine::make_engine`], or `--engine auto|naive|jump|count` in the
//! CLI):
//!
//! | Engine | Memory | Cost model | Use when |
//! |--------|--------|-----------|----------|
//! | [`Simulation`] (`naive`) | `O(n)` agent vector | O(1) per *interaction*, nulls included | small `n`; agent-level observers; external [`Scheduler`]s |
//! | [`JumpSimulation`] (`jump`) | `O(#states)` counts | O(log #states) per *productive* interaction; nulls skipped exactly | long runs near silence; `n ≲ 10⁶` |
//! | [`CountSimulation`] (`count`) | `O(#states)` counts (block sums over derived leaves — ≈ `1.1n` bytes of weight overhead beyond the counts) | amortised **sub-productive-interaction**: far from silence a whole batch of exchangeable steps costs O(occupied) binomial draws, across *every* exchangeable class, fanned out over a thread pool with seed-derived per-task RNG streams | `n = 10⁶…10⁹`; scale experiments |
//!
//! The naive engine is the literal model — use it as ground truth and for
//! anything that needs agent identities. The jump engine simulates the
//! embedded chain of productive interactions with geometric null gaps —
//! *exactly* the same process, orders of magnitude faster once the
//! configuration approaches silence. The count engine additionally batches
//! statistically-exchangeable productive steps via per-class multinomial
//! splitting when far from silence — equal-rank mass through a binary
//! weight tree, extra–extra and rank–extra mass through two-population
//! splits — and falls back to exact jump-chain stepping (same RNG
//! consumption, identical per-seed trajectory) near silence; its
//! stabilisation-time distribution is KS-indistinguishable from the other
//! two (asserted in `tests/cross_simulator.rs`). Batch splits are
//! conditionally independent given the class totals, so the count engine
//! fans them out over a small thread pool
//! ([`CountSimulation::with_threads`](count::CountSimulation::with_threads),
//! threaded through [`Scenario::threads`](runner::Scenario::threads) and
//! `--threads` in the CLI) — with per-task RNG streams derived from the
//! seed, so a run is bit-identical at any thread count.
//!
//! ## Components
//!
//! * [`protocol`] — the [`Protocol`](protocol::Protocol) trait, the
//!   declarative [`InteractionSchema`](protocol::InteractionSchema), the
//!   ranking contract, and the schema validators.
//! * [`engine`] — the unified [`Engine`](engine::Engine) trait: stepping,
//!   run-to-silence, count-level observers, fault injection,
//!   snapshot/restore, and the engine factory with `Auto` selection.
//! * [`runner`] — the [`Scenario`](runner::Scenario) builder: protocol +
//!   engine + init family + fault plan + trials, run in parallel with
//!   deterministic seeding.
//! * [`faults`] — the adversary subsystem: timed [`FaultPlan`]s (bursts,
//!   periodic bursts, rate faults, churn, Byzantine agents) executed
//!   deterministically by every engine via [`run_with_plan`], with
//!   graceful non-convergence reporting ([`RunOutcome`]: availability,
//!   `k`-excursions, per-burst recovery times).
//! * [`sim`] — the naive step-by-step simulator with observer hooks.
//! * [`jump`] — the exact jump-chain simulator (skips null interactions,
//!   same stochastic process, orders of magnitude faster near silence).
//! * [`count`] — the count-based batched simulator (O(#states) memory,
//!   amortised sub-interaction stepping far from silence).
//! * [`init`] — initial-configuration generators (`k`-distant, uniform
//!   random, stacked, …).
//! * [`observer`] — invariant checkers and time-series recorders.
//! * [`rng`], [`fenwick`] — deterministic RNG and weighted sampling.
//!
//! ## Quickstart
//!
//! ```
//! use ssr_engine::protocol::{ClassSpec, InteractionSchema, Protocol, State};
//! use ssr_engine::jump::JumpSimulation;
//!
//! /// The generic state-optimal ranking protocol A_G.
//! struct Ag { n: usize }
//! impl Protocol for Ag {
//!     fn name(&self) -> &str { "A_G" }
//!     fn population_size(&self) -> usize { self.n }
//!     fn num_states(&self) -> usize { self.n }
//!     fn num_rank_states(&self) -> usize { self.n }
//!     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
//!         (i == r).then(|| (i, (r + 1) % self.n as State))
//!     }
//! }
//! impl InteractionSchema for Ag {
//!     fn interaction_classes(&self) -> Vec<ClassSpec> {
//!         vec![ClassSpec::equal_rank()]
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let protocol = Ag { n: 100 };
//! let mut sim = JumpSimulation::new(&protocol, vec![0; 100], 1)?;
//! let report = sim.run_until_silent(u64::MAX)?;
//! println!("stabilised in parallel time {:.1}", report.parallel_time);
//! # Ok(())
//! # }
//! ```

// `unsafe_code = "forbid"` comes from [workspace.lints] in the root manifest.
#![warn(missing_docs)]
// Truncation-cast audit (workspace denies `cast_possible_truncation`):
// the engine is pervasively numeric — u32 counts, usize indices, u64
// weights, u128 clock — and narrows deliberately at documented
// boundaries. The dangerous narrows (interaction clock, weight totals)
// are machine-checked by ssr-lint's A-series rules instead.
#![allow(clippy::cast_possible_truncation)]

mod classes;
pub mod count;
pub mod engine;
pub mod error;
pub mod faults;
pub mod fenwick;
pub mod init;
pub mod jump;
pub mod observer;
pub mod protocol;
pub mod rng;
pub mod runner;
pub mod schedule;
pub mod sim;
pub mod wire;

pub use count::CountSimulation;
pub use engine::{
    make_engine, make_engine_from_counts, make_engine_threaded, CappedAdvance, CountObserver,
    Engine, EngineKind, EngineSnapshot,
};
pub use error::{ConfigError, StabilisationTimeout};
pub use faults::{
    perturb_counts, rank_distance, recovery_after_faults, run_with_plan, BurstRecord, FaultPlan,
    RecoveryReport, RunOutcome,
};
pub use observer::RecoveryTracker;
pub use jump::JumpSimulation;
pub use protocol::{
    validate_interaction_schema, ClassSpec, CrossDirection, InteractionClass, InteractionSchema,
    Protocol, State,
};
pub use runner::{run_trials, Init, Scenario, TrialConfig, TrialResults};
pub use schedule::{ClusteredScheduler, Scheduler, UniformScheduler, ZipfScheduler};
pub use sim::{Simulation, StabilisationReport};
pub use wire::{SnapshotDecodeError, SnapshotShape, SNAPSHOT_WIRE_VERSION};
