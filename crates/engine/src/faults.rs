//! The adversary subsystem: timed fault plans, churn, Byzantine agents,
//! and recovery measurement.
//!
//! Self-stabilisation is exactly the promise that the system recovers from
//! *any* transient corruption of agent states. The paper formalises the
//! corrupted configuration as the adversarial start (§1) and measures
//! distance as the number `k` of missing rank states (§3). This module
//! generalises the one-shot corrupt-at-time-zero experiment to **timed
//! fault processes on the interaction clock**, described by a
//! [`FaultPlan`]:
//!
//! * **one-shot bursts** ([`FaultPlan::burst_at`]) — `f` uniformly random
//!   agents rewritten to uniformly random states at an arbitrary clock
//!   time `t` (not just `t = 0`);
//! * **periodic bursts** ([`FaultPlan::periodic`]) — the same burst every
//!   `period` interactions;
//! * **rate faults** ([`FaultPlan::rate`]) — background corruption where
//!   every scheduler draw is independently a fault with probability `r`
//!   (arrival gaps are geometric, the discrete Poisson-process analogue);
//! * **replacement churn** ([`FaultPlan::churn`]) — at rate `r`, an agent
//!   leaves and a fresh agent with a uniformly random state joins.
//!   Operationally this is the continuous version of the transient-fault
//!   model: the population size is preserved and the replacement is
//!   indistinguishable from a corruption of the departed agent;
//! * **Byzantine/stuck-at agents** ([`FaultPlan::byzantine`]) — `k` agents
//!   (chosen uniformly at plan start) that keep interacting but never
//!   update their own state. Their partners still update normally.
//!
//! [`run_with_plan`] executes a plan against any [`Engine`]
//! deterministically: every engine sees the identical fault schedule and
//! the identical fault RNG stream, the exact-stepping engines truncate
//! their clock to each scheduled event time *exactly* (memorylessness of
//! the geometric null gap), and the count engine clips its batch size to
//! the next scheduled event so batches never blow through a fault time
//! (see [`Engine::advance_to`]).
//!
//! Because Byzantine agents and nonzero fault rates can make silence
//! unreachable, [`run_with_plan`] never panics on non-convergence and
//! never discards the run on a timeout: it returns a [`RunOutcome`] with
//! steady-state observables — time-weighted **availability** (fraction of
//! interaction time with a correct ranking prefix, i.e. `k = 0`), the
//! mean and maximum `k`-distance excursion, and the per-burst
//! recovery-time distribution — measured by a
//! [`RecoveryTracker`](crate::observer::RecoveryTracker) observer.
//!
//! The one-shot primitives remain:
//!
//! * [`perturb_counts`] — hit `f` uniformly random agents with uniformly
//!   random replacement states (the standard transient-fault model);
//!   large bursts walk a Fenwick tree instead of scanning the state
//!   space, so million-state injection stays `O(f log S)`;
//! * [`rank_distance`] — the paper's `k`-distance of a configuration;
//! * [`recovery_after_faults`] — stabilise, corrupt, re-stabilise, and
//!   report both the damage (`k`) and the recovery time, on the
//!   engine [`EngineKind::Auto`] selects for the population size.
//!
//! Experiment EF in `exp_faults` uses the one-shot machinery to connect
//! Theorem 1's `O(k·n^{3/2})` bound to an operational fault-tolerance
//! statement; experiment AD in `exp_adversary` drives timed plans through
//! the jump and count engines and cross-validates their recovery-time
//! distributions.
//!
//! # Examples
//!
//! ```
//! use ssr_engine::engine::{make_engine, EngineKind};
//! use ssr_engine::faults::{run_with_plan, FaultPlan};
//! use ssr_engine::protocol::{ClassSpec, InteractionSchema, Protocol, State};
//!
//! struct Ag { n: usize }
//! impl Protocol for Ag {
//!     fn name(&self) -> &str { "A_G" }
//!     fn population_size(&self) -> usize { self.n }
//!     fn num_states(&self) -> usize { self.n }
//!     fn num_rank_states(&self) -> usize { self.n }
//!     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
//!         (i == r).then(|| (i, (r + 1) % self.n as State))
//!     }
//! }
//! impl InteractionSchema for Ag {
//!     fn interaction_classes(&self) -> Vec<ClassSpec> {
//!         vec![ClassSpec::equal_rank()]
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = Ag { n: 32 };
//! // Start perfect, hit 4 agents at parallel time ~16, watch it recover.
//! let plan = FaultPlan::new().burst_at(512, 4);
//! let mut engine = make_engine(EngineKind::Jump, &p, (0..32).collect(), 7)?;
//! let outcome = run_with_plan(engine.as_mut(), &plan, 99, u64::MAX);
//! assert!(outcome.silent);
//! assert_eq!(outcome.bursts.len(), 1);
//! assert!(outcome.availability <= 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! [`Engine`]: crate::engine::Engine
//! [`Engine::advance_to`]: crate::engine::Engine::advance_to
//! [`EngineKind::Auto`]: crate::engine::EngineKind::Auto

use crate::engine::{Engine, EngineKind};
use crate::error::StabilisationTimeout;
use crate::fenwick::Fenwick;
use crate::observer::RecoveryTracker;
use crate::protocol::{InteractionSchema, State};
use crate::rng::Xoshiro256;
use crate::sim::StabilisationReport;

/// Above this many faults a single [`perturb_counts`] call builds a
/// Fenwick tree over the counts and samples victims in `O(log S)` each,
/// instead of the `O(S)` linear scan per fault. Both paths consume the
/// RNG identically and pick identical victims, so the trajectory does not
/// depend on which one runs.
const PERTURB_TREE_THRESHOLD: usize = 64;

/// Corrupt `faults` agents in a counts-vector configuration: each fault
/// picks a uniformly random **agent** (weighted by current occupancy) and
/// rewrites its state to a uniformly random state in `0..num_states`
/// (possibly the same — real fault models do not guarantee damage).
///
/// Returns the number of agents whose state actually changed.
///
/// Bursts larger than a small threshold are routed through a Fenwick tree
/// over the counts (`O(f log S)` instead of `O(f·S)`); the tree walk
/// selects the same victims from the same draws as the linear scan, so
/// results are bit-identical either way.
///
/// # Panics
///
/// Panics if `counts` is empty, sums to zero, or is shorter than
/// `num_states`.
pub fn perturb_counts(
    counts: &mut [u32],
    num_states: usize,
    faults: usize,
    rng: &mut Xoshiro256,
) -> usize {
    assert!(counts.len() >= num_states && num_states > 0, "bad shape");
    let population: u64 = counts.iter().map(|&c| c as u64).sum();
    assert!(population > 0, "empty population");
    if faults > PERTURB_TREE_THRESHOLD {
        perturb_counts_tree(counts, num_states, faults, population, rng)
    } else {
        perturb_counts_linear(counts, num_states, faults, population, rng)
    }
}

fn perturb_counts_linear(
    counts: &mut [u32],
    num_states: usize,
    faults: usize,
    population: u64,
    rng: &mut Xoshiro256,
) -> usize {
    let mut changed = 0;
    for _ in 0..faults {
        // Pick the victim agent by weighted state occupancy.
        let mut idx = rng.below(population);
        let mut from = 0usize;
        for (s, &c) in counts.iter().enumerate() {
            if idx < c as u64 {
                from = s;
                break;
            }
            idx -= c as u64;
        }
        let to = rng.below_usize(num_states);
        if to != from {
            counts[from] = counts[from]
                .checked_sub(1)
                .expect("perturb_counts: sampled fault source must be occupied");
            counts[to] += 1;
            changed += 1;
        }
    }
    changed
}

fn perturb_counts_tree(
    counts: &mut [u32],
    num_states: usize,
    faults: usize,
    population: u64,
    rng: &mut Xoshiro256,
) -> usize {
    let mut fen = Fenwick::new(counts.len());
    for (s, &c) in counts.iter().enumerate() {
        if c > 0 {
            fen.set(s, c as u64);
        }
    }
    debug_assert_eq!(fen.total(), population);
    let mut changed = 0;
    for _ in 0..faults {
        // `Fenwick::sample` returns the smallest index whose prefix sum
        // exceeds the target — the same victim the linear scan finds.
        let idx = rng.below(population);
        let from = fen.sample(idx);
        let to = rng.below_usize(num_states);
        if to != from {
            counts[from] = counts[from]
                .checked_sub(1)
                .expect("perturb_counts_tree: sampled fault source must be occupied");
            counts[to] += 1;
            fen.set(from, counts[from] as u64);
            fen.set(to, counts[to] as u64);
            changed += 1;
        }
    }
    changed
}

/// The paper's `k`-distance of a configuration given as occupancy counts:
/// the number of **unoccupied rank states**.
pub fn rank_distance(counts: &[u32], num_rank_states: usize) -> usize {
    counts[..num_rank_states].iter().filter(|&&c| c == 0).count()
}

/// Outcome of a corrupt-and-recover run (see [`recovery_after_faults`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Faults injected that actually changed an agent's state.
    pub faults_applied: usize,
    /// The `k`-distance immediately after corruption (how many rank
    /// states the faults left unoccupied).
    pub distance_after_faults: usize,
    /// Stabilisation report for the recovery phase alone (clocks start
    /// at the moment of corruption).
    pub recovered: StabilisationReport,
}

/// Start the protocol in its silent perfect ranking, corrupt `faults`
/// uniformly random agents, and run until the population is silent again
/// on the engine [`EngineKind::Auto`] selects for the population size —
/// the exact jump chain below the count threshold (where per-seed results
/// are unchanged from the historical jump-only implementation), the
/// batched count engine above it.
///
/// This is the operational restatement of the paper's `k`-distant
/// experiment: `faults` random corruptions produce a configuration that
/// is `k`-distant for some `k ≤ faults`, and Theorem 1 then bounds the
/// recovery at `O(min(k·n^{3/2}, n² log² n))` for the ring protocol.
///
/// # Errors
///
/// Returns [`StabilisationTimeout`] if recovery exceeds
/// `max_interactions`.
///
/// # Panics
///
/// Panics if the protocol violates the ranking contract shape (rank
/// states ≠ population).
pub fn recovery_after_faults<P: InteractionSchema + ?Sized>(
    protocol: &P,
    faults: usize,
    seed: u64,
    max_interactions: u64,
) -> Result<RecoveryReport, StabilisationTimeout> {
    let n = protocol.population_size();
    assert_eq!(
        protocol.num_rank_states(),
        n,
        "recovery_after_faults requires a ranking protocol"
    );
    let mut counts = vec![0u32; protocol.num_states()];
    for c in counts.iter_mut().take(n) {
        *c = 1;
    }
    // lint:allow(D001): frozen stream — the ⊕0x5eed_f417 tag is the
    // documented fault-stream separator; rewriting it through
    // derive_seed would alter every recorded fault schedule and the
    // seed-compat contract with the pre-PR 7 jump path.
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x5eed_f417);
    let faults_applied = perturb_counts(&mut counts, protocol.num_states(), faults, &mut rng);
    let distance_after_faults = rank_distance(&counts, n);
    let mut engine =
        crate::engine::make_engine_from_counts(EngineKind::Auto, protocol, counts, seed, 1)
            .expect("counts preserve the population size");
    let recovered = engine.run_until_silent(max_interactions)?;
    debug_assert!(engine.is_silent());
    Ok(RecoveryReport {
        faults_applied,
        distance_after_faults,
        recovered,
    })
}

/// A timed fault plan on the interaction clock: which fault processes run
/// against a population and when. Executed by [`run_with_plan`]; attach
/// one to a [`Scenario`](crate::runner::Scenario) with
/// [`fault_plan`](crate::runner::Scenario::fault_plan).
///
/// All clock times are absolute interaction counts (nulls included).
/// Plans compose: a plan may combine bursts, a periodic process, rate
/// faults, churn and Byzantine agents; events due at the same instant
/// fire in the order burst → periodic → rate → churn.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// One-shot bursts `(time, faults)`, kept sorted by time.
    bursts: Vec<(u128, u32)>,
    /// Periodic bursts `(period, faults)`: fire at `period, 2·period, …`.
    periodic: Option<(u128, u32)>,
    /// Per-interaction probability that a background corruption fires.
    rate: f64,
    /// Per-interaction probability of a replacement-churn event.
    churn: f64,
    /// Number of Byzantine/stuck-at agents, selected uniformly at plan
    /// start.
    byzantine: u32,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// The classic one-shot model: a burst of `faults` corruptions at
    /// time zero. [`Scenario::faults`](crate::runner::Scenario::faults)
    /// is sugar for this.
    pub fn once(faults: u32) -> Self {
        FaultPlan::new().burst_at(0, faults)
    }

    /// Add a one-shot burst of `faults` corruptions at clock time `time`.
    #[must_use]
    pub fn burst_at(mut self, time: u128, faults: u32) -> Self {
        self.bursts.push((time, faults));
        self.bursts.sort_unstable();
        self
    }

    /// Fire a burst of `faults` corruptions every `period` interactions
    /// (first at `period`).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    #[must_use]
    pub fn periodic(mut self, period: u128, faults: u32) -> Self {
        assert!(period > 0, "periodic burst period must be positive");
        self.periodic = Some((period, faults));
        self
    }

    /// Background corruption: each scheduler draw is independently a
    /// fault with probability `rate` (geometric arrival gaps).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate ≤ 1` and finite.
    #[must_use]
    pub fn rate(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "fault rate must be a probability, got {rate}"
        );
        self.rate = rate;
        self
    }

    /// Replacement churn: with per-interaction probability `rate` an
    /// agent leaves and a fresh agent with a uniformly random state
    /// joins (population size preserved — operationally a corruption of
    /// the departed agent).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate ≤ 1` and finite.
    #[must_use]
    pub fn churn(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "churn rate must be a probability, got {rate}"
        );
        self.churn = rate;
        self
    }

    /// Mark `agents` uniformly random agents as Byzantine/stuck-at for
    /// the whole run: they keep interacting but never update their own
    /// state. Churn and corruption never touch them.
    #[must_use]
    pub fn byzantine(mut self, agents: u32) -> Self {
        self.byzantine = agents;
        self
    }

    /// Whether the plan contains no fault process at all.
    pub fn is_empty(&self) -> bool {
        self.bursts.iter().all(|&(_, f)| f == 0) && !self.may_never_silence()
    }

    /// Whether the plan contains a persistent process (periodic bursts,
    /// rate faults, churn, or Byzantine agents) that can keep the run
    /// from ever reaching a lasting silent configuration. Such plans
    /// require a finite horizon — see [`run_with_plan`].
    pub fn may_never_silence(&self) -> bool {
        self.periodic.is_some() || self.rate > 0.0 || self.churn > 0.0 || self.byzantine > 0
    }

    /// The one-shot bursts `(time, faults)`, sorted by time.
    pub fn bursts(&self) -> &[(u128, u32)] {
        &self.bursts
    }

    /// The periodic burst `(period, faults)`, if any.
    pub fn periodic_burst(&self) -> Option<(u128, u32)> {
        self.periodic
    }

    /// The background corruption probability per interaction.
    pub fn fault_rate(&self) -> f64 {
        self.rate
    }

    /// The replacement-churn probability per interaction.
    pub fn churn_rate(&self) -> f64 {
        self.churn
    }

    /// The number of Byzantine/stuck-at agents.
    pub fn byzantine_agents(&self) -> u32 {
        self.byzantine
    }
}

/// Recovery record of one burst executed by [`run_with_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstRecord {
    /// Scheduled clock time of the burst.
    pub time: u128,
    /// Faults the plan asked for (attempts; a fault that redraws the same
    /// state, or finds only Byzantine agents, changes nothing).
    pub faults: u32,
    /// `k`-distance immediately after the burst was injected.
    pub k_after: usize,
    /// Interactions from injection until the `k`-distance returned to
    /// zero, or `None` if it never did before the run ended.
    pub recovery: Option<u128>,
}

/// Outcome of [`run_with_plan`]: the final report plus steady-state
/// observables, whether or not the run ever silenced. Non-convergence is
/// an *answer* here, not an error — a Byzantine or high-churn run reports
/// its availability instead of dying on a timeout.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Clock/productive totals at the end of the run (at the final silent
    /// configuration, or at the horizon for non-convergent runs).
    pub report: StabilisationReport,
    /// Whether the run ended in a silent configuration with no further
    /// scheduled fault able to disturb it within the horizon.
    pub silent: bool,
    /// Time-weighted availability: the fraction of elapsed interaction
    /// time with a correct ranking prefix (`k`-distance zero — every rank
    /// state occupied, which for a ranking protocol is the configuration
    /// with a unique leader at every rank). Measured over the span from
    /// run start to the final clock; `1.0` for an empty span.
    pub availability: f64,
    /// Time-weighted mean `k`-distance over the same span.
    pub mean_k: f64,
    /// Maximum `k`-distance excursion observed.
    pub max_k: usize,
    /// Individual corruption attempts injected (bursts, periodic bursts
    /// and rate faults; churn counts separately).
    pub faults_injected: u64,
    /// Replacement-churn events executed.
    pub churn_events: u64,
    /// Per-burst recovery records (one-shot and periodic bursts).
    pub bursts: Vec<BurstRecord>,
}

/// Which fault process fires next — tie order is the declaration order.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Due {
    Burst,
    Periodic,
    Rate,
    Churn,
}

/// Execution state of one plan over one run: the fault RNG, the Byzantine
/// selection, and the next arrival time of each process.
struct PlanExec<'p> {
    plan: &'p FaultPlan,
    rng: Xoshiro256,
    /// Per-state Byzantine occupancy (empty when the plan has none);
    /// corruption and churn draw their victims from the complement.
    byz: Vec<u32>,
    byz_total: u64,
    next_burst: usize,
    next_periodic: Option<u128>,
    next_rate: Option<u128>,
    next_churn: Option<u128>,
    faults_injected: u64,
    churn_events: u64,
}

impl<'p> PlanExec<'p> {
    /// Initialise the plan against the engine's starting configuration:
    /// select and install the Byzantine agents, then draw the first
    /// rate/churn arrivals. Draw order (Byzantine selection, rate, churn)
    /// is fixed, so every engine consumes the fault stream identically.
    fn new(plan: &'p FaultPlan, fault_seed: u64, engine: &mut dyn Engine) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(fault_seed);
        let start = engine.interactions_wide();
        let mut byz = Vec::new();
        let mut byz_total = 0u64;
        if plan.byzantine > 0 {
            let counts = engine.counts().to_vec();
            let population: u64 = counts.iter().map(|&c| c as u64).sum();
            assert!(
                (plan.byzantine as u64) <= population,
                "plan asks for {} byzantine agents in a population of {population}",
                plan.byzantine
            );
            byz = vec![0u32; counts.len()];
            // Uniform selection without replacement, weighted by
            // occupancy: agent identities do not exist in the counts
            // representation, so "pick a uniform agent" means "pick a
            // state proportionally to its not-yet-selected occupancy".
            for i in 0..plan.byzantine as u64 {
                let mut idx = rng.below(population - i);
                for (s, &c) in counts.iter().enumerate() {
                    let avail = c as u64 - byz[s] as u64;
                    if idx < avail {
                        byz[s] += 1;
                        break;
                    }
                    idx -= avail;
                }
            }
            byz_total = plan.byzantine as u64;
            engine.set_byzantine(&byz);
        }
        let next_rate = (plan.rate > 0.0)
            .then(|| start + 1 + rng.geometric(plan.rate) as u128);
        let next_churn = (plan.churn > 0.0)
            .then(|| start + 1 + rng.geometric(plan.churn) as u128);
        PlanExec {
            plan,
            rng,
            byz,
            byz_total,
            next_burst: 0,
            next_periodic: plan.periodic.map(|(period, _)| start + period),
            next_rate,
            next_churn,
            faults_injected: 0,
            churn_events: 0,
        }
    }

    /// The clock time of the next scheduled event, if any remain.
    fn next_time(&self) -> Option<u128> {
        let mut next: Option<u128> = None;
        let mut fold = |t: Option<u128>| {
            if let Some(t) = t {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        fold(self.plan.bursts.get(self.next_burst).map(|&(t, _)| t));
        fold(self.next_periodic);
        fold(self.next_rate);
        fold(self.next_churn);
        next
    }

    /// Fire every event due at or before the engine's current clock, in
    /// (time, declaration-order) order. Injections do not advance the
    /// clock, so the loop terminates once every due process has fired and
    /// rescheduled itself into the future.
    fn fire_due(&mut self, engine: &mut dyn Engine, tracker: &mut RecoveryTracker) {
        let now = engine.interactions_wide();
        loop {
            let mut due: Option<(u128, Due)> = None;
            let mut consider = |t: Option<u128>, kind: Due| {
                if let Some(t) = t {
                    if t <= now && due.is_none_or(|(bt, _)| t < bt) {
                        due = Some((t, kind));
                    }
                }
            };
            consider(self.plan.bursts.get(self.next_burst).map(|&(t, _)| t), Due::Burst);
            consider(self.next_periodic, Due::Periodic);
            consider(self.next_rate, Due::Rate);
            consider(self.next_churn, Due::Churn);
            let Some((t, kind)) = due else { return };
            tracker.advance(now);
            match kind {
                Due::Burst => {
                    let (_, f) = self.plan.bursts[self.next_burst];
                    self.next_burst += 1;
                    self.inject_burst(engine, tracker, now, t, f);
                }
                Due::Periodic => {
                    let (period, f) = self.plan.periodic.expect("periodic event scheduled");
                    self.next_periodic = Some(t.saturating_add(period));
                    self.inject_burst(engine, tracker, now, t, f);
                }
                Due::Rate => {
                    // Reschedule relative to the *scheduled* time, not the
                    // actual clock, so a batch overshoot cannot thin the
                    // long-run fault rate.
                    self.next_rate = Some(t + 1 + self.rng.geometric(self.plan.rate) as u128);
                    self.corrupt_one(engine, tracker);
                    self.faults_injected += 1;
                }
                Due::Churn => {
                    self.next_churn = Some(t + 1 + self.rng.geometric(self.plan.churn) as u128);
                    self.corrupt_one(engine, tracker);
                    self.churn_events += 1;
                }
            }
        }
    }

    /// Inject one burst of `f` corruption attempts and open its recovery
    /// record.
    fn inject_burst(
        &mut self,
        engine: &mut dyn Engine,
        tracker: &mut RecoveryTracker,
        now: u128,
        scheduled: u128,
        f: u32,
    ) {
        for _ in 0..f {
            self.corrupt_one(engine, tracker);
        }
        self.faults_injected += f as u64;
        tracker.open_burst(now, scheduled, f);
    }

    /// Corrupt one uniformly random non-Byzantine agent to a uniformly
    /// random state. Churn events reuse this: a departure plus a fresh
    /// uniformly-random-state arrival is, for anonymous agents, exactly a
    /// corruption of the departed agent (population preserved).
    fn corrupt_one(&mut self, engine: &mut dyn Engine, tracker: &mut RecoveryTracker) {
        let (from, num_states) = {
            let counts = engine.counts();
            let population: u64 = counts.iter().map(|&c| c as u64).sum();
            let normal = population - self.byz_total;
            if normal == 0 {
                return; // every agent is Byzantine; nothing to corrupt
            }
            let mut idx = self.rng.below(normal);
            let mut from = 0usize;
            for (s, &c) in counts.iter().enumerate() {
                let avail = c as u64 - self.byz.get(s).map_or(0, |&b| b as u64);
                if idx < avail {
                    from = s;
                    break;
                }
                idx -= avail;
            }
            (from, counts.len())
        };
        let to = self.rng.below_usize(num_states);
        if to != from {
            engine.inject_state_fault(from as State, to as State);
            tracker.apply_fault(from as State, to as State);
        }
    }
}

/// Execute a [`FaultPlan`] against an engine until the run is silent with
/// no further event able to disturb it, or until `max_interactions` have
/// elapsed (`u64::MAX` = unbounded) — and report steady-state observables
/// either way.
///
/// Determinism: the fault process draws from its own RNG (`fault_seed`),
/// never the engine's, and the schedule is fixed up front — so every
/// engine executes the identical fault sequence at the identical clock
/// times, and a count-engine run is bit-identical at any thread count.
/// Exact-stepping engines hit each event time exactly (clock truncation
/// at a cap is exact by memorylessness); the count engine's batch mode
/// clips batches to the next event and can overshoot an event only by a
/// committed batch's null tail, vanishingly rarely.
///
/// The run ends *silent* when the configuration is silent and every
/// remaining scheduled event lies at or beyond the horizon; it ends
/// *non-silent* when the clock reaches the horizon first. Either way the
/// returned [`RunOutcome`] carries availability, `k`-distance excursions
/// and per-burst recoveries integrated over the elapsed span.
///
/// # Panics
///
/// Panics if the plan [may never silence](FaultPlan::may_never_silence)
/// and `max_interactions` is `u64::MAX` — such a run could never end.
pub fn run_with_plan(
    engine: &mut dyn Engine,
    plan: &FaultPlan,
    fault_seed: u64,
    max_interactions: u64,
) -> RunOutcome {
    let horizon = if max_interactions == u64::MAX {
        u128::MAX
    } else {
        max_interactions as u128
    };
    assert!(
        horizon != u128::MAX || !plan.may_never_silence(),
        "fault plan has a persistent process (periodic/rate/churn/byzantine) \
         and could run forever; pass a finite max_interactions"
    );
    let mut tracker = RecoveryTracker::new(
        engine.counts(),
        engine.num_rank_states(),
        engine.interactions_wide(),
    );
    let mut exec = PlanExec::new(plan, fault_seed, engine);
    let silent;
    loop {
        exec.fire_due(engine, &mut tracker);
        let now = engine.interactions_wide();
        if engine.is_silent() {
            match exec.next_time() {
                Some(t) if t < horizon => {
                    // Silent until the next scheduled fault: every draw
                    // until then is a null, so jump straight to it.
                    engine.skip_nulls(t - now);
                    continue;
                }
                _ => {
                    silent = true;
                    break;
                }
            }
        }
        if now >= horizon {
            silent = false;
            break;
        }
        let cap = exec.next_time().map_or(horizon, |t| t.min(horizon));
        // Silent/CapReached/Applied all loop back: fire_due picks up due
        // events, the silence check handles Silent, and the horizon check
        // ends the run.
        let _ = engine.advance_to(cap, &mut tracker);
    }
    tracker.finalize(engine.interactions_wide());
    RunOutcome {
        report: engine.report(),
        silent,
        availability: tracker.availability(),
        mean_k: tracker.mean_k(),
        max_k: tracker.max_k(),
        faults_injected: exec.faults_injected,
        churn_events: exec.churn_events,
        bursts: tracker.take_bursts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::make_engine;
    use crate::jump::JumpSimulation;
    use crate::protocol::{ClassSpec, Protocol};

    struct Ag {
        n: usize,
    }
    impl Protocol for Ag {
        fn name(&self) -> &str {
            "A_G"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            if i == r {
                Some((i, (r + 1) % self.n as State))
            } else {
                None
            }
        }
    }
    impl InteractionSchema for Ag {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::equal_rank()]
        }
    }

    #[test]
    fn perturb_conserves_agents() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut counts = vec![1u32; 20];
        let changed = perturb_counts(&mut counts, 20, 7, &mut rng);
        assert!(changed <= 7);
        assert_eq!(counts.iter().sum::<u32>(), 20);
    }

    #[test]
    fn perturb_zero_faults_is_identity() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut counts = vec![2u32, 3, 0];
        assert_eq!(perturb_counts(&mut counts, 3, 0, &mut rng), 0);
        assert_eq!(counts, vec![2, 3, 0]);
    }

    #[test]
    fn tree_walk_matches_linear_scan_exactly() {
        // Same seed, both paths: identical victims, identical draws,
        // identical resulting counts (the dispatch threshold must never
        // change a trajectory).
        for faults in [1usize, 17, 65, 300] {
            let base: Vec<u32> = (0..97).map(|s| (s % 5) as u32).collect();
            let population: u64 = base.iter().map(|&c| c as u64).sum();
            let mut linear = base.clone();
            let mut tree = base.clone();
            let mut rng_a = Xoshiro256::seed_from_u64(42 + faults as u64);
            let mut rng_b = Xoshiro256::seed_from_u64(42 + faults as u64);
            let ca = perturb_counts_linear(&mut linear, 97, faults, population, &mut rng_a);
            let cb = perturb_counts_tree(&mut tree, 97, faults, population, &mut rng_b);
            assert_eq!(ca, cb);
            assert_eq!(linear, tree);
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "same draws consumed");
        }
    }

    #[test]
    fn large_bursts_route_through_the_tree() {
        // Behavioural check on the public dispatch: a burst above the
        // threshold still conserves population and matches the linear
        // reference run with the same seed.
        let mut counts = vec![2u32; 200];
        let mut reference = counts.clone();
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut rng_ref = Xoshiro256::seed_from_u64(9);
        let changed = perturb_counts(&mut counts, 200, 128, &mut rng);
        let changed_ref =
            perturb_counts_linear(&mut reference, 200, 128, 400, &mut rng_ref);
        assert_eq!(changed, changed_ref);
        assert_eq!(counts, reference);
        assert_eq!(counts.iter().sum::<u32>(), 400);
    }

    #[test]
    fn distance_counts_missing_ranks() {
        assert_eq!(rank_distance(&[1, 0, 2, 0, 1], 5), 2);
        assert_eq!(rank_distance(&[1, 1, 1], 3), 0);
        // Extra states beyond the rank range are ignored.
        assert_eq!(rank_distance(&[0, 2, 0], 2), 1);
    }

    #[test]
    fn faults_create_bounded_distance() {
        // f faults can empty at most f rank states.
        let mut rng = Xoshiro256::seed_from_u64(11);
        for f in [1usize, 3, 8] {
            let mut counts = vec![1u32; 30];
            perturb_counts(&mut counts, 30, f, &mut rng);
            assert!(rank_distance(&counts, 30) <= f);
        }
    }

    #[test]
    fn recovery_returns_to_silence() {
        let p = Ag { n: 24 };
        for f in [1usize, 4, 12] {
            let rep = recovery_after_faults(&p, f, 100 + f as u64, u64::MAX).unwrap();
            assert!(rep.faults_applied <= f);
            assert!(rep.distance_after_faults <= rep.faults_applied);
        }
    }

    #[test]
    fn recovery_is_seed_compatible_with_the_jump_path() {
        // Below the auto-count threshold the generalised runner must
        // reproduce the historical jump-only implementation bit for bit.
        let p = Ag { n: 32 };
        for (f, seed) in [(3usize, 7u64), (10, 99)] {
            let rep = recovery_after_faults(&p, f, seed, u64::MAX).unwrap();
            // Reference: the pre-generalisation implementation, inlined.
            let mut counts = vec![1u32; 32];
            let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x5eed_f417);
            let applied = perturb_counts(&mut counts, 32, f, &mut rng);
            let mut sim = JumpSimulation::from_counts(&p, counts, seed).unwrap();
            let reference = sim.run_until_silent(u64::MAX).unwrap();
            assert_eq!(rep.faults_applied, applied);
            assert_eq!(rep.recovered, reference);
        }
    }

    #[test]
    fn zero_faults_recover_instantly() {
        let p = Ag { n: 16 };
        let rep = recovery_after_faults(&p, 0, 5, 100).unwrap();
        assert_eq!(rep.faults_applied, 0);
        assert_eq!(rep.recovered.interactions, 0);
    }

    #[test]
    fn more_faults_cost_more_recovery_time() {
        // Statistical: mean recovery after 12 faults should exceed mean
        // recovery after 1 fault at n = 48.
        let p = Ag { n: 48 };
        let mean = |f: usize| -> f64 {
            (0..20u64)
                .map(|t| {
                    recovery_after_faults(&p, f, 1_000 + t, u64::MAX)
                        .unwrap()
                        .recovered
                        .parallel_time
                })
                .sum::<f64>()
                / 20.0
        };
        assert!(mean(12) > mean(1));
    }

    #[test]
    fn timeout_propagates() {
        let p = Ag { n: 32 };
        let err = recovery_after_faults(&p, 10, 42, 3);
        assert!(matches!(err, Err(StabilisationTimeout { .. })));
    }

    #[test]
    fn empty_plan_is_a_plain_run() {
        let p = Ag { n: 24 };
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let mut engine = make_engine(EngineKind::Jump, &p, vec![0; 24], 5).unwrap();
        let outcome = run_with_plan(engine.as_mut(), &plan, 1, u64::MAX);
        assert!(outcome.silent);
        assert_eq!(outcome.faults_injected, 0);
        assert!(outcome.bursts.is_empty());
        // The trajectory is the engine's own: same as a direct run.
        let mut reference = JumpSimulation::new(&p, vec![0; 24], 5).unwrap();
        let rep = reference.run_until_silent(u64::MAX).unwrap();
        assert_eq!(outcome.report, rep);
    }

    #[test]
    fn mid_run_burst_is_recorded_and_recovered() {
        let p = Ag { n: 32 };
        let plan = FaultPlan::new().burst_at(5_000, 6);
        let mut engine = make_engine(EngineKind::Jump, &p, (0..32).collect(), 3).unwrap();
        let outcome = run_with_plan(engine.as_mut(), &plan, 17, u64::MAX);
        assert!(outcome.silent);
        assert_eq!(outcome.faults_injected, 6);
        assert_eq!(outcome.bursts.len(), 1);
        let burst = outcome.bursts[0];
        assert_eq!(burst.time, 5_000);
        assert_eq!(burst.faults, 6);
        assert!(burst.recovery.is_some());
        assert!(outcome.availability < 1.0, "recovery period counts as down");
        assert!(outcome.report.interactions_wide >= 5_000);
    }

    #[test]
    fn burst_into_an_already_silent_run_fires_exactly_at_its_time() {
        // Start silent; the plan's burst at t must still fire at t (the
        // engine skips the nulls to get there) and the run must recover.
        let p = Ag { n: 16 };
        let plan = FaultPlan::new().burst_at(100_000, 3);
        let mut engine = make_engine(EngineKind::Jump, &p, (0..16).collect(), 7).unwrap();
        let outcome = run_with_plan(engine.as_mut(), &plan, 23, u64::MAX);
        assert!(outcome.silent);
        assert_eq!(outcome.bursts.len(), 1);
        assert!(outcome.report.interactions_wide >= 100_000);
    }

    #[test]
    fn byzantine_run_reports_availability_instead_of_timing_out() {
        let p = Ag { n: 16 };
        let plan = FaultPlan::new().byzantine(2);
        let mut engine = make_engine(EngineKind::Jump, &p, vec![0; 16], 11).unwrap();
        let horizon = 200_000u64;
        let outcome = run_with_plan(engine.as_mut(), &plan, 5, horizon);
        // Two agents stuck in state 0 keep producing (0,0) rewrites with
        // other visitors of state 0... the population cannot settle into
        // all-distinct ranks with both stuck agents sharing rank 0.
        assert!(!outcome.silent);
        assert!(outcome.availability < 1.0);
        assert!(outcome.max_k >= 1);
        assert!(outcome.report.interactions >= horizon);
    }

    #[test]
    fn unbounded_persistent_plan_is_rejected() {
        let p = Ag { n: 8 };
        let plan = FaultPlan::new().rate(0.01);
        let mut engine = make_engine(EngineKind::Jump, &p, vec![0; 8], 1).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with_plan(engine.as_mut(), &plan, 1, u64::MAX)
        }));
        assert!(result.is_err(), "must refuse an unbounded never-silent run");
    }

    #[test]
    fn churn_conserves_population_and_counts_events() {
        let p = Ag { n: 24 };
        let plan = FaultPlan::new().churn(1e-3);
        let mut engine = make_engine(EngineKind::Jump, &p, vec![0; 24], 13).unwrap();
        let outcome = run_with_plan(engine.as_mut(), &plan, 29, 2_000_000);
        assert_eq!(engine.counts().iter().map(|&c| c as u64).sum::<u64>(), 24);
        assert!(outcome.churn_events > 0);
        assert_eq!(outcome.faults_injected, 0, "churn is not a fault burst");
    }
}
