//! Transient-fault injection and recovery measurement.
//!
//! Self-stabilisation is exactly the promise that the system recovers from
//! *any* transient corruption of agent states. The paper formalises the
//! corrupted configuration as the adversarial start (§1) and measures
//! distance as the number `k` of missing rank states (§3); operationally
//! the same situation arises when a stabilised population suffers `f`
//! state-corruption faults. This module provides the machinery to create
//! that situation deliberately and measure the recovery:
//!
//! * [`perturb_counts`] — hit `f` uniformly random agents with uniformly
//!   random replacement states (the standard transient-fault model);
//! * [`rank_distance`] — the paper's `k`-distance of a configuration;
//! * [`recovery_after_faults`] — stabilise, corrupt, re-stabilise, and
//!   report both the damage (`k`) and the recovery time.
//!
//! Experiment EF in `exp_faults` uses this to connect Theorem 1's
//! `O(k·n^{3/2})` bound to an operational fault-tolerance statement:
//! recovery time grows with the number of faults, sublinearly in `n²`.
//!
//! # Examples
//!
//! ```
//! use ssr_engine::faults::{recovery_after_faults, RecoveryReport};
//! use ssr_engine::protocol::{ClassSpec, InteractionSchema, Protocol, State};
//!
//! struct Ag { n: usize }
//! impl Protocol for Ag {
//!     fn name(&self) -> &str { "A_G" }
//!     fn population_size(&self) -> usize { self.n }
//!     fn num_states(&self) -> usize { self.n }
//!     fn num_rank_states(&self) -> usize { self.n }
//!     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
//!         (i == r).then(|| (i, (r + 1) % self.n as State))
//!     }
//! }
//! impl InteractionSchema for Ag {
//!     fn interaction_classes(&self) -> Vec<ClassSpec> {
//!         vec![ClassSpec::equal_rank()]
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report: RecoveryReport = recovery_after_faults(&Ag { n: 32 }, 4, 7, u64::MAX)?;
//! assert!(report.faults_applied <= 4);
//! assert!(report.recovered.parallel_time >= 0.0);
//! # Ok(())
//! # }
//! ```

use crate::error::StabilisationTimeout;
use crate::jump::JumpSimulation;
use crate::protocol::InteractionSchema;
use crate::rng::Xoshiro256;
use crate::sim::StabilisationReport;

/// Corrupt `faults` agents in a counts-vector configuration: each fault
/// picks a uniformly random **agent** (weighted by current occupancy) and
/// rewrites its state to a uniformly random state in `0..num_states`
/// (possibly the same — real fault models do not guarantee damage).
///
/// Returns the number of agents whose state actually changed.
///
/// # Panics
///
/// Panics if `counts` is empty, sums to zero, or is shorter than
/// `num_states`.
pub fn perturb_counts(
    counts: &mut [u32],
    num_states: usize,
    faults: usize,
    rng: &mut Xoshiro256,
) -> usize {
    assert!(counts.len() >= num_states && num_states > 0, "bad shape");
    let population: u64 = counts.iter().map(|&c| c as u64).sum();
    assert!(population > 0, "empty population");
    let mut changed = 0;
    for _ in 0..faults {
        // Pick the victim agent by weighted state occupancy.
        let mut idx = rng.below(population);
        let mut from = 0usize;
        for (s, &c) in counts.iter().enumerate() {
            if idx < c as u64 {
                from = s;
                break;
            }
            idx -= c as u64;
        }
        let to = rng.below_usize(num_states);
        if to != from {
            counts[from] -= 1;
            counts[to] += 1;
            changed += 1;
        }
    }
    changed
}

/// The paper's `k`-distance of a configuration given as occupancy counts:
/// the number of **unoccupied rank states**.
pub fn rank_distance(counts: &[u32], num_rank_states: usize) -> usize {
    counts[..num_rank_states].iter().filter(|&&c| c == 0).count()
}

/// Outcome of a corrupt-and-recover run (see [`recovery_after_faults`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Faults injected that actually changed an agent's state.
    pub faults_applied: usize,
    /// The `k`-distance immediately after corruption (how many rank
    /// states the faults left unoccupied).
    pub distance_after_faults: usize,
    /// Stabilisation report for the recovery phase alone (clocks start
    /// at the moment of corruption).
    pub recovered: StabilisationReport,
}

/// Start the protocol in its silent perfect ranking, corrupt `faults`
/// uniformly random agents, and run the exact jump-chain simulator until
/// the population is silent again.
///
/// This is the operational restatement of the paper's `k`-distant
/// experiment: `faults` random corruptions produce a configuration that
/// is `k`-distant for some `k ≤ faults`, and Theorem 1 then bounds the
/// recovery at `O(min(k·n^{3/2}, n² log² n))` for the ring protocol.
///
/// # Errors
///
/// Returns [`StabilisationTimeout`] if recovery exceeds
/// `max_interactions`.
///
/// # Panics
///
/// Panics if the protocol violates the ranking contract shape (rank
/// states ≠ population).
pub fn recovery_after_faults<P: InteractionSchema + ?Sized>(
    protocol: &P,
    faults: usize,
    seed: u64,
    max_interactions: u64,
) -> Result<RecoveryReport, StabilisationTimeout> {
    let n = protocol.population_size();
    assert_eq!(
        protocol.num_rank_states(),
        n,
        "recovery_after_faults requires a ranking protocol"
    );
    let mut counts = vec![0u32; protocol.num_states()];
    for c in counts.iter_mut().take(n) {
        *c = 1;
    }
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x5eed_f417);
    let faults_applied = perturb_counts(&mut counts, protocol.num_states(), faults, &mut rng);
    let distance_after_faults = rank_distance(&counts, n);
    let mut sim = JumpSimulation::from_counts(protocol, counts, seed)
        .expect("counts preserve the population size");
    let recovered = sim.run_until_silent(max_interactions)?;
    debug_assert!(sim.is_silent());
    Ok(RecoveryReport {
        faults_applied,
        distance_after_faults,
        recovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ClassSpec, Protocol, State};

    struct Ag {
        n: usize,
    }
    impl Protocol for Ag {
        fn name(&self) -> &str {
            "A_G"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            if i == r {
                Some((i, (r + 1) % self.n as State))
            } else {
                None
            }
        }
    }
    impl InteractionSchema for Ag {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::equal_rank()]
        }
    }

    #[test]
    fn perturb_conserves_agents() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut counts = vec![1u32; 20];
        let changed = perturb_counts(&mut counts, 20, 7, &mut rng);
        assert!(changed <= 7);
        assert_eq!(counts.iter().sum::<u32>(), 20);
    }

    #[test]
    fn perturb_zero_faults_is_identity() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut counts = vec![2u32, 3, 0];
        assert_eq!(perturb_counts(&mut counts, 3, 0, &mut rng), 0);
        assert_eq!(counts, vec![2, 3, 0]);
    }

    #[test]
    fn distance_counts_missing_ranks() {
        assert_eq!(rank_distance(&[1, 0, 2, 0, 1], 5), 2);
        assert_eq!(rank_distance(&[1, 1, 1], 3), 0);
        // Extra states beyond the rank range are ignored.
        assert_eq!(rank_distance(&[0, 2, 0], 2), 1);
    }

    #[test]
    fn faults_create_bounded_distance() {
        // f faults can empty at most f rank states.
        let mut rng = Xoshiro256::seed_from_u64(11);
        for f in [1usize, 3, 8] {
            let mut counts = vec![1u32; 30];
            perturb_counts(&mut counts, 30, f, &mut rng);
            assert!(rank_distance(&counts, 30) <= f);
        }
    }

    #[test]
    fn recovery_returns_to_silence() {
        let p = Ag { n: 24 };
        for f in [1usize, 4, 12] {
            let rep = recovery_after_faults(&p, f, 100 + f as u64, u64::MAX).unwrap();
            assert!(rep.faults_applied <= f);
            assert!(rep.distance_after_faults <= rep.faults_applied);
        }
    }

    #[test]
    fn zero_faults_recover_instantly() {
        let p = Ag { n: 16 };
        let rep = recovery_after_faults(&p, 0, 5, 100).unwrap();
        assert_eq!(rep.faults_applied, 0);
        assert_eq!(rep.recovered.interactions, 0);
    }

    #[test]
    fn more_faults_cost_more_recovery_time() {
        // Statistical: mean recovery after 12 faults should exceed mean
        // recovery after 1 fault at n = 48.
        let p = Ag { n: 48 };
        let mean = |f: usize| -> f64 {
            (0..20u64)
                .map(|t| {
                    recovery_after_faults(&p, f, 1_000 + t, u64::MAX)
                        .unwrap()
                        .recovered
                        .parallel_time
                })
                .sum::<f64>()
                / 20.0
        };
        assert!(mean(12) > mean(1));
    }

    #[test]
    fn timeout_propagates() {
        let p = Ag { n: 32 };
        let err = recovery_after_faults(&p, 10, 42, 3);
        assert!(matches!(err, Err(StabilisationTimeout { .. })));
    }
}
