//! The population-protocol abstraction.
//!
//! A protocol is a finite state space plus a deterministic transition
//! function on *ordered* pairs of states. In each step of the probabilistic
//! model, the random scheduler draws an ordered pair of distinct agents
//! (*initiator*, *responder*) uniformly from the population of size `n`;
//! their states are rewritten by [`Protocol::transition`]. *Parallel time*
//! is interactions divided by `n`.
//!
//! # The ranking contract
//!
//! Every protocol in this workspace solves the **ranking problem**: the
//! state space is `n` *rank states* (ids `0..num_rank_states`) plus `x`
//! *extra states* (ids `num_rank_states..num_states`), and the protocol must
//! silently stabilise with each of the `n` agents in a distinct rank state.
//! Implementations must uphold:
//!
//! 1. `transition` returns `Some` **only** when at least one of the two
//!    agents actually changes state (no-op rewrites must return `None`);
//! 2. a configuration is **silent** (no ordered pair is productive) if and
//!    only if all agents occupy pairwise-distinct rank states;
//! 3. the number of agents is conserved by every rule (trivially true here:
//!    rules rewrite exactly the two participants).
//!
//! [`validate_ranking_contract`] checks 1–2 exhaustively for small instances
//! and is used throughout the test suites.

/// Dense state identifier. Rank states come first (`0..num_rank_states`),
/// extra states after.
pub type State = u32;

/// A population protocol for the ranking problem.
///
/// # Examples
///
/// The one-rule generic protocol `A_G` (`i + i → i + (i+1 mod n)`):
///
/// ```
/// use ssr_engine::protocol::{Protocol, State};
///
/// struct Ag { n: usize }
/// impl Protocol for Ag {
///     fn name(&self) -> &str { "A_G" }
///     fn population_size(&self) -> usize { self.n }
///     fn num_states(&self) -> usize { self.n }
///     fn num_rank_states(&self) -> usize { self.n }
///     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
///         (i == r).then(|| (i, (r + 1) % self.n as State))
///     }
/// }
///
/// let p = Ag { n: 4 };
/// assert_eq!(p.transition(2, 2), Some((2, 3)));
/// assert_eq!(p.transition(2, 3), None);
/// ```
pub trait Protocol {
    /// Human-readable protocol name (used in reports and tables).
    fn name(&self) -> &str;

    /// The population size `n` the protocol instance is built for.
    fn population_size(&self) -> usize;

    /// Total number of states (`n` rank states + `x` extra states).
    fn num_states(&self) -> usize;

    /// Number of rank states; always equals [`population_size`] for ranking
    /// protocols. Rank states are ids `0..num_rank_states`.
    ///
    /// [`population_size`]: Protocol::population_size
    fn num_rank_states(&self) -> usize;

    /// Apply the transition function to an ordered pair
    /// `(initiator, responder)`.
    ///
    /// Returns the rewritten pair, or `None` if the interaction is a null
    /// interaction (leaves both agents unchanged).
    fn transition(&self, initiator: State, responder: State) -> Option<(State, State)>;

    /// Number of extra (non-rank) states `x`.
    fn num_extra_states(&self) -> usize {
        self.num_states() - self.num_rank_states()
    }

    /// Whether `s` is a rank state.
    fn is_rank_state(&self, s: State) -> bool {
        (s as usize) < self.num_rank_states()
    }
}

/// How extra states interact with rank states, as seen by the jump-chain
/// simulator (see [`ProductiveClasses`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtraRankCross {
    /// No (rank, extra) ordered pair is ever productive.
    None,
    /// Exactly the pairs with the **rank agent as initiator** and the extra
    /// agent as responder are productive (all of them).
    RankInitiatorOnly,
    /// Every ordered pair of one rank agent and one extra agent is
    /// productive, in both orders.
    Symmetric,
}

/// Declares the exact set of *productive* ordered state pairs so that the
/// jump-chain simulator ([`crate::jump::JumpSimulation`]) can skip null
/// interactions without sampling them.
///
/// The declaration must be exact:
///
/// * an ordered pair of agents in the **same rank state** `s` is productive
///   iff [`has_equal_rank_rule`]`(s)`;
/// * an ordered pair of two agents in **extra states** (equal or not) is
///   productive iff [`extra_extra_all`]` == true` (all such pairs) and never
///   otherwise;
/// * ordered (rank, extra) mixed pairs follow [`extra_rank_cross`];
/// * an ordered pair of agents in **distinct rank states** is never
///   productive.
///
/// All four protocols in `ssr-core` fit this shape, which is what makes a
/// generic exact-jump simulator possible. [`validate_productive_classes`]
/// cross-checks a declaration against [`Protocol::transition`] exhaustively.
///
/// [`has_equal_rank_rule`]: ProductiveClasses::has_equal_rank_rule
/// [`extra_extra_all`]: ProductiveClasses::extra_extra_all
/// [`extra_rank_cross`]: ProductiveClasses::extra_rank_cross
pub trait ProductiveClasses: Protocol {
    /// Whether two agents meeting in rank state `s` interact productively.
    ///
    /// The default queries the transition function directly; implementors
    /// may override with a cheaper test.
    fn has_equal_rank_rule(&self, s: State) -> bool {
        debug_assert!(self.is_rank_state(s));
        self.transition(s, s).is_some()
    }

    /// Whether *every* ordered pair of agents in extra states (including
    /// both in the same extra state) is productive.
    fn extra_extra_all(&self) -> bool {
        false
    }

    /// Productivity of mixed (rank, extra) ordered pairs.
    fn extra_rank_cross(&self) -> ExtraRankCross {
        ExtraRankCross::None
    }
}

/// Exhaustively verify that a [`ProductiveClasses`] declaration matches the
/// transition function, and that `transition` never returns identity
/// rewrites. Cost is `O(num_states²)`; intended for tests on small
/// instances.
///
/// # Errors
///
/// Returns a description of the first violated pair.
pub fn validate_productive_classes<P: ProductiveClasses + ?Sized>(
    p: &P,
) -> Result<(), String> {
    let s_total = p.num_states() as State;
    for a in 0..s_total {
        for b in 0..s_total {
            let out = p.transition(a, b);
            if let Some((a2, b2)) = out {
                if a2 == a && b2 == b {
                    return Err(format!(
                        "transition({a},{b}) returned an identity rewrite"
                    ));
                }
            }
            let productive = out.is_some();
            let declared = declared_productive(p, a, b);
            if productive != declared {
                return Err(format!(
                    "pair ({a},{b}): transition productive={productive} but \
                     ProductiveClasses declares {declared}"
                ));
            }
        }
    }
    Ok(())
}

fn declared_productive<P: ProductiveClasses + ?Sized>(p: &P, a: State, b: State) -> bool {
    let ra = p.is_rank_state(a);
    let rb = p.is_rank_state(b);
    match (ra, rb) {
        (true, true) => a == b && p.has_equal_rank_rule(a),
        (false, false) => p.extra_extra_all(),
        (true, false) => matches!(
            p.extra_rank_cross(),
            ExtraRankCross::RankInitiatorOnly | ExtraRankCross::Symmetric
        ),
        (false, true) => matches!(p.extra_rank_cross(), ExtraRankCross::Symmetric),
    }
}

/// Check that a configuration of all-distinct rank states is a fixed point,
/// i.e. that the protocol is *silent* once ranking is achieved: no ordered
/// pair of **distinct** rank states may be productive.
///
/// # Errors
///
/// Returns the first productive distinct-rank pair found.
pub fn validate_distinct_ranks_silent<P: Protocol + ?Sized>(p: &P) -> Result<(), String> {
    let n = p.num_rank_states() as State;
    for a in 0..n {
        for b in 0..n {
            if a != b && p.transition(a, b).is_some() {
                return Err(format!(
                    "distinct rank pair ({a},{b}) is productive; \
                     a perfect ranking would not be silent"
                ));
            }
        }
    }
    Ok(())
}

/// Composite check of the full ranking contract (see module docs) for small
/// instances: class declaration exactness, no identity rewrites, and
/// silence of perfect rankings.
///
/// # Errors
///
/// Propagates the first failure from either validator.
pub fn validate_ranking_contract<P: ProductiveClasses + ?Sized>(p: &P) -> Result<(), String> {
    validate_productive_classes(p)?;
    validate_distinct_ranks_silent(p)?;
    if p.num_rank_states() != p.population_size() {
        return Err(format!(
            "ranking protocol must have exactly n rank states \
             (n = {}, rank states = {})",
            p.population_size(),
            p.num_rank_states()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal correct protocol: A_G.
    struct Ag {
        n: usize,
    }
    impl Protocol for Ag {
        fn name(&self) -> &str {
            "A_G"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            if i == r {
                Some((i, (r + 1) % self.n as State))
            } else {
                None
            }
        }
    }
    impl ProductiveClasses for Ag {}

    #[test]
    fn ag_satisfies_contract() {
        validate_ranking_contract(&Ag { n: 7 }).unwrap();
    }

    #[test]
    fn extra_state_accessors() {
        let p = Ag { n: 5 };
        assert_eq!(p.num_extra_states(), 0);
        assert!(p.is_rank_state(4));
    }

    /// A broken protocol whose declaration over-claims productivity.
    struct OverClaim;
    impl Protocol for OverClaim {
        fn name(&self) -> &str {
            "over"
        }
        fn population_size(&self) -> usize {
            3
        }
        fn num_states(&self) -> usize {
            3
        }
        fn num_rank_states(&self) -> usize {
            3
        }
        fn transition(&self, _i: State, _r: State) -> Option<(State, State)> {
            None
        }
    }
    impl ProductiveClasses for OverClaim {
        fn has_equal_rank_rule(&self, _s: State) -> bool {
            true // lies: transition never fires
        }
    }

    #[test]
    fn over_claiming_declaration_rejected() {
        assert!(validate_productive_classes(&OverClaim).is_err());
    }

    /// A broken protocol returning identity rewrites.
    struct Identity;
    impl Protocol for Identity {
        fn name(&self) -> &str {
            "id"
        }
        fn population_size(&self) -> usize {
            2
        }
        fn num_states(&self) -> usize {
            2
        }
        fn num_rank_states(&self) -> usize {
            2
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            Some((i, r))
        }
    }
    impl ProductiveClasses for Identity {}

    #[test]
    fn identity_rewrites_rejected() {
        assert!(validate_productive_classes(&Identity).is_err());
    }

    /// A protocol that is not silent on perfect rankings.
    struct Noisy;
    impl Protocol for Noisy {
        fn name(&self) -> &str {
            "noisy"
        }
        fn population_size(&self) -> usize {
            3
        }
        fn num_states(&self) -> usize {
            3
        }
        fn num_rank_states(&self) -> usize {
            3
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            if i == 0 && r == 1 {
                Some((0, 2))
            } else {
                None
            }
        }
    }

    #[test]
    fn non_silent_ranking_rejected() {
        assert!(validate_distinct_ranks_silent(&Noisy).is_err());
    }
}
