//! The population-protocol abstraction and the declarative
//! interaction-class schema.
//!
//! A protocol is a finite state space plus a deterministic transition
//! function on *ordered* pairs of states. In each step of the probabilistic
//! model, the random scheduler draws an ordered pair of distinct agents
//! (*initiator*, *responder*) uniformly from the population of size `n`;
//! their states are rewritten by [`Protocol::transition`]. *Parallel time*
//! is interactions divided by `n`.
//!
//! # The interaction schema
//!
//! The fast engines (`jump`, `count`) never sample null interactions: they
//! need to know the exact set of *productive* ordered state pairs, its
//! total weight under the current occupancy counts, and which parts of it
//! can be batched. Protocols declare this once, declaratively, through
//! [`InteractionSchema::interaction_classes`]: a list of [`ClassSpec`]s,
//! each naming one [`InteractionClass`] with an exchangeability flag.
//!
//! The four class shapes, with their weight formulas over the occupancy
//! counts `c_s` (writing `R`/`E` for the number of agents in rank/extra
//! states):
//!
//! | Class | Covers | Weight |
//! |-------|--------|--------|
//! | [`EqualRank`] | ordered pairs of two agents in the same rank state `s`, for every `s` with [`equal_rank_rule`]`(s)` | `Σ_s c_s(c_s − 1)` |
//! | [`ExtraExtra`] | every ordered pair of two agents in extra states | `E(E − 1)` |
//! | [`RankExtra`] | every mixed (rank, extra) ordered pair in the given [`CrossDirection`] | `R·E` per direction |
//! | [`Pair`] | one enumerated ordered state pair `(a, b)` — the escape hatch for protocols whose rules fit none of the above | `c_a·c_b` (or `c_a(c_a − 1)` if `a = b`) |
//!
//! The declaration must be **exact** (a pair is productive iff exactly one
//! declared class covers it) and classes must not overlap;
//! [`validate_interaction_schema`] checks both exhaustively against the
//! transition function for small instances and is used throughout the test
//! suites. One schema drives everything downstream: exact productive-pair
//! sampling in the jump engine, per-class batching in the count engine, and
//! the validators.
//!
//! # The ranking contract
//!
//! Every *ranking* protocol in this workspace solves the ranking problem:
//! the state space is `n` *rank states* (ids `0..num_rank_states`) plus `x`
//! *extra states* (ids `num_rank_states..num_states`), and the protocol
//! must silently stabilise with each of the `n` agents in a distinct rank
//! state. Implementations must uphold:
//!
//! 1. `transition` returns `Some` **only** when at least one of the two
//!    agents actually changes state (no-op rewrites must return `None`);
//! 2. a configuration is **silent** (no ordered pair is productive) if and
//!    only if all agents occupy pairwise-distinct rank states;
//! 3. the number of agents is conserved by every rule (trivially true here:
//!    rules rewrite exactly the two participants).
//!
//! [`validate_ranking_contract`] checks 1–2 exhaustively for small
//! instances. Non-ranking protocols (e.g. loosely-stabilising leader
//! election) can still implement [`InteractionSchema`] — typically through
//! the [`Pair`] escape hatch — and run on every engine; they simply never
//! satisfy the ranking contract's silence shape.
//!
//! [`EqualRank`]: InteractionClass::EqualRank
//! [`ExtraExtra`]: InteractionClass::ExtraExtra
//! [`RankExtra`]: InteractionClass::RankExtra
//! [`Pair`]: InteractionClass::Pair
//! [`equal_rank_rule`]: InteractionSchema::equal_rank_rule

/// Dense state identifier. Rank states come first (`0..num_rank_states`),
/// extra states after.
pub type State = u32;

/// A population protocol: a finite state space and a deterministic
/// transition function on ordered state pairs.
///
/// # Examples
///
/// The one-rule generic protocol `A_G` (`i + i → i + (i+1 mod n)`):
///
/// ```
/// use ssr_engine::protocol::{Protocol, State};
///
/// struct Ag { n: usize }
/// impl Protocol for Ag {
///     fn name(&self) -> &str { "A_G" }
///     fn population_size(&self) -> usize { self.n }
///     fn num_states(&self) -> usize { self.n }
///     fn num_rank_states(&self) -> usize { self.n }
///     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
///         (i == r).then(|| (i, (r + 1) % self.n as State))
///     }
/// }
///
/// let p = Ag { n: 4 };
/// assert_eq!(p.transition(2, 2), Some((2, 3)));
/// assert_eq!(p.transition(2, 3), None);
/// ```
pub trait Protocol {
    /// Human-readable protocol name (used in reports and tables).
    fn name(&self) -> &str;

    /// The population size `n` the protocol instance is built for.
    fn population_size(&self) -> usize;

    /// Total number of states (`n` rank states + `x` extra states).
    fn num_states(&self) -> usize;

    /// Number of rank states; always equals [`population_size`] for ranking
    /// protocols. Rank states are ids `0..num_rank_states`.
    ///
    /// [`population_size`]: Protocol::population_size
    fn num_rank_states(&self) -> usize;

    /// Apply the transition function to an ordered pair
    /// `(initiator, responder)`.
    ///
    /// Returns the rewritten pair, or `None` if the interaction is a null
    /// interaction (leaves both agents unchanged).
    fn transition(&self, initiator: State, responder: State) -> Option<(State, State)>;

    /// Number of extra (non-rank) states `x`.
    fn num_extra_states(&self) -> usize {
        self.num_states() - self.num_rank_states()
    }

    /// Whether `s` is a rank state.
    fn is_rank_state(&self, s: State) -> bool {
        (s as usize) < self.num_rank_states()
    }
}

/// Direction(s) in which mixed (rank, extra) ordered pairs are productive,
/// for the [`InteractionClass::RankExtra`] class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossDirection {
    /// Only pairs with the **rank agent as initiator** are productive.
    RankInitiator,
    /// Only pairs with the **extra agent as initiator** are productive.
    ExtraInitiator,
    /// Every mixed ordered pair is productive, in both orders.
    Both,
}

impl CrossDirection {
    /// Number of productive orderings per unordered mixed agent pair
    /// (1 or 2) — the multiplier in the class weight `dirs·R·E`.
    pub fn multiplier(self) -> u64 {
        match self {
            CrossDirection::RankInitiator | CrossDirection::ExtraInitiator => 1,
            CrossDirection::Both => 2,
        }
    }
}

/// One declarative productive interaction class (see the module docs for
/// the coverage and weight of each shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InteractionClass {
    /// Ordered pairs of two agents in the same rank state `s`, for every
    /// rank state with [`InteractionSchema::equal_rank_rule`].
    EqualRank,
    /// Every ordered pair of two agents in extra states.
    ExtraExtra,
    /// Every mixed (rank, extra) ordered pair in the given direction(s).
    RankExtra(CrossDirection),
    /// One explicitly enumerated ordered state pair — the escape hatch for
    /// rule structures the three shapes above cannot express. A pair must
    /// not also be covered by another declared class.
    Pair {
        /// Initiator state of the enumerated pair.
        initiator: State,
        /// Responder state of the enumerated pair.
        responder: State,
    },
}

/// An [`InteractionClass`] plus its batching contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassSpec {
    /// The class shape.
    pub class: InteractionClass,
    /// Whether consecutive productive draws from this class are
    /// statistically exchangeable under frozen weights, i.e. whether the
    /// count engine may execute them as one multinomially-split batch.
    /// True for every memoryless rewrite (all protocols in this
    /// workspace); declare `false` via [`ClassSpec::non_exchangeable`] for
    /// rules whose effect depends on interleaving with other classes.
    pub exchangeable: bool,
}

impl ClassSpec {
    /// The [`InteractionClass::EqualRank`] class, exchangeable.
    pub fn equal_rank() -> Self {
        ClassSpec {
            class: InteractionClass::EqualRank,
            exchangeable: true,
        }
    }

    /// The [`InteractionClass::ExtraExtra`] class, exchangeable.
    pub fn extra_extra() -> Self {
        ClassSpec {
            class: InteractionClass::ExtraExtra,
            exchangeable: true,
        }
    }

    /// An [`InteractionClass::RankExtra`] class, exchangeable.
    pub fn rank_extra(direction: CrossDirection) -> Self {
        ClassSpec {
            class: InteractionClass::RankExtra(direction),
            exchangeable: true,
        }
    }

    /// An enumerated [`InteractionClass::Pair`], exchangeable.
    pub fn pair(initiator: State, responder: State) -> Self {
        ClassSpec {
            class: InteractionClass::Pair {
                initiator,
                responder,
            },
            exchangeable: true,
        }
    }

    /// Mark this class as **not** batchable: the count engine falls back
    /// to exact stepping whenever the class has positive weight.
    pub fn non_exchangeable(mut self) -> Self {
        self.exchangeable = false;
        self
    }
}

/// Declares the exact set of *productive* ordered state pairs as a list of
/// weight classes, so the fast engines can skip null interactions, sample
/// productive pairs by weight, and batch exchangeable classes.
///
/// The declaration must be exact and non-overlapping:
///
/// * an ordered pair of agents in the **same rank state** `s` is productive
///   iff [`EqualRank`](InteractionClass::EqualRank) is declared and
///   [`equal_rank_rule`](Self::equal_rank_rule)`(s)` holds;
/// * an ordered pair of two agents in **extra states** is productive iff
///   [`ExtraExtra`](InteractionClass::ExtraExtra) is declared, or the exact
///   state pair is enumerated as a [`Pair`](InteractionClass::Pair);
/// * mixed (rank, extra) ordered pairs follow the declared
///   [`RankExtra`](InteractionClass::RankExtra) direction(s) or enumerated
///   pairs;
/// * any other ordered pair is productive iff enumerated as a
///   [`Pair`](InteractionClass::Pair);
/// * no pair may be covered by two declared classes.
///
/// [`validate_interaction_schema`] cross-checks a declaration against
/// [`Protocol::transition`] exhaustively.
///
/// # Examples
///
/// ```
/// use ssr_engine::protocol::{ClassSpec, InteractionSchema, Protocol, State};
///
/// struct Ag { n: usize }
/// impl Protocol for Ag {
///     fn name(&self) -> &str { "A_G" }
///     fn population_size(&self) -> usize { self.n }
///     fn num_states(&self) -> usize { self.n }
///     fn num_rank_states(&self) -> usize { self.n }
///     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
///         (i == r).then(|| (i, (r + 1) % self.n as State))
///     }
/// }
/// impl InteractionSchema for Ag {
///     fn interaction_classes(&self) -> Vec<ClassSpec> {
///         vec![ClassSpec::equal_rank()]
///     }
/// }
///
/// ssr_engine::protocol::validate_interaction_schema(&Ag { n: 6 }).unwrap();
/// ```
pub trait InteractionSchema: Protocol {
    /// Enumerate the protocol's productive classes. Called once per engine
    /// construction; the result must not depend on the configuration.
    fn interaction_classes(&self) -> Vec<ClassSpec>;

    /// Membership test for the [`EqualRank`](InteractionClass::EqualRank)
    /// class: whether two agents meeting in rank state `s` interact
    /// productively. Only consulted when `EqualRank` is declared.
    ///
    /// The default queries the transition function directly; implementors
    /// may override with a cheaper test.
    fn equal_rank_rule(&self, s: State) -> bool {
        debug_assert!(self.is_rank_state(s));
        self.transition(s, s).is_some()
    }

    /// Stable 64-bit fingerprint of the protocol's interaction structure:
    /// the state-space shape (`population_size`, `num_states`,
    /// `num_rank_states`), the **set** of declared classes, the exact
    /// rewrites of every declared enumerated `Pair`, and — when `EqualRank`
    /// is declared — the equal-rank rewrite of every rank state.
    ///
    /// The hash is a pure function of those values: it is identical across
    /// recompiles, runs, and processes, and **order-independent over the
    /// declared classes** (per-class fingerprints are sorted before
    /// mixing), so refactoring the order of
    /// [`interaction_classes`](Self::interaction_classes) does not change
    /// it. Protocols with different rule structure, shape, equal-rank
    /// rewrites, or pair rewrites hash differently (modulo 64-bit
    /// collisions) — the equal-rank diagonal is hashed rewrite-by-rewrite
    /// precisely because the state-optimal protocols (generic, ring, line)
    /// share shape and class structure and differ *only* there. Rewrites of
    /// the broad cross classes (`ExtraExtra`/`RankExtra`) are not probed —
    /// that would cost `O(num_states²)`; protocols differing only there
    /// must also differ in shape or declared classes in practice. This is
    /// the cache-key primitive of the simulation service: a result memoised
    /// under one schema hash is never served to a protocol whose rules
    /// differ.
    ///
    /// Cost is `O(classes + num_rank_states)` when `EqualRank` is declared
    /// (one `transition` probe per rank state), `O(classes)` otherwise. Do
    /// not override — downstream stores key on the default derivation.
    fn schema_hash(&self) -> u64 {
        /// FNV-1a over a stream of `u64` words, one byte at a time so the
        /// result is independent of host endianness.
        fn mix(h: &mut u64, word: u64) {
            for b in word.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        mix(&mut h, self.population_size() as u64);
        mix(&mut h, self.num_states() as u64);
        mix(&mut h, self.num_rank_states() as u64);
        // Per-class fingerprints, sorted: the declaration is a set.
        let classes = self.interaction_classes();
        let mut codes: Vec<u64> = classes
            .iter()
            .map(|spec| {
                let exch = spec.exchangeable as u64;
                match spec.class {
                    InteractionClass::EqualRank => 1 | exch << 8,
                    InteractionClass::ExtraExtra => 2 | exch << 8,
                    InteractionClass::RankExtra(CrossDirection::RankInitiator) => 3 | exch << 8,
                    InteractionClass::RankExtra(CrossDirection::ExtraInitiator) => 4 | exch << 8,
                    InteractionClass::RankExtra(CrossDirection::Both) => 5 | exch << 8,
                    InteractionClass::Pair {
                        initiator,
                        responder,
                    } => {
                        // A sub-hash keeps the code to one sortable word;
                        // the rewrite is part of the rule, so it is hashed
                        // along with the pair.
                        let mut ph: u64 = 0xCBF2_9CE4_8422_2325;
                        mix(&mut ph, 6 | exch << 8);
                        mix(&mut ph, initiator as u64);
                        mix(&mut ph, responder as u64);
                        if let Some((i2, r2)) = self.transition(initiator, responder) {
                            mix(&mut ph, 1 + i2 as u64);
                            mix(&mut ph, 1 + r2 as u64);
                        }
                        ph | 1 << 63
                    }
                }
            })
            .collect();
        let eq_declared = classes
            .iter()
            .any(|s| s.class == InteractionClass::EqualRank);
        codes.sort_unstable();
        mix(&mut h, codes.len() as u64);
        for code in codes {
            mix(&mut h, code);
        }
        if eq_declared {
            // The equal-rank diagonal, rewrite by rewrite: which rank
            // states fire AND what they rewrite to. The state-optimal
            // protocols share shape and classes and differ only here.
            for s in 0..self.num_rank_states() {
                match self.transition(s as State, s as State) {
                    Some((i2, r2)) => {
                        mix(&mut h, 1 + i2 as u64);
                        mix(&mut h, 1 + r2 as u64);
                    }
                    None => mix(&mut h, 0),
                }
            }
        }
        h
    }
}

/// Number of classes in `classes` covering the ordered state pair
/// `(a, b)` of protocol `p` (0 = declared null, 1 = declared productive,
/// ≥ 2 = overlapping declaration).
fn coverage<P: InteractionSchema + ?Sized>(
    p: &P,
    classes: &[ClassSpec],
    a: State,
    b: State,
) -> usize {
    let ra = p.is_rank_state(a);
    let rb = p.is_rank_state(b);
    classes
        .iter()
        .filter(|spec| match spec.class {
            InteractionClass::EqualRank => ra && rb && a == b && p.equal_rank_rule(a),
            InteractionClass::ExtraExtra => !ra && !rb,
            InteractionClass::RankExtra(d) => match d {
                CrossDirection::RankInitiator => ra && !rb,
                CrossDirection::ExtraInitiator => !ra && rb,
                CrossDirection::Both => ra != rb,
            },
            InteractionClass::Pair {
                initiator,
                responder,
            } => a == initiator && b == responder,
        })
        .count()
}

/// Exhaustively verify that an [`InteractionSchema`] declaration matches
/// the transition function: every productive ordered pair is covered by
/// exactly one declared class, no null pair is covered, no two classes
/// overlap, and `transition` never returns identity rewrites. Cost is
/// `O(num_states² · classes)`; intended for tests on small instances.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_interaction_schema<P: InteractionSchema + ?Sized>(p: &P) -> Result<(), String> {
    let classes = p.interaction_classes();
    let s_total = p.num_states() as State;
    for a in 0..s_total {
        for b in 0..s_total {
            let out = p.transition(a, b);
            if let Some((a2, b2)) = out {
                if a2 == a && b2 == b {
                    return Err(format!(
                        "transition({a},{b}) returned an identity rewrite"
                    ));
                }
            }
            let covering = coverage(p, &classes, a, b);
            if covering > 1 {
                return Err(format!(
                    "pair ({a},{b}) is covered by {covering} declared classes \
                     (classes must not overlap)"
                ));
            }
            let productive = out.is_some();
            if productive != (covering == 1) {
                return Err(format!(
                    "pair ({a},{b}): transition productive={productive} but \
                     the schema declares {}",
                    covering == 1
                ));
            }
        }
    }
    Ok(())
}

/// Check that a configuration of all-distinct rank states is a fixed point,
/// i.e. that the protocol is *silent* once ranking is achieved: no ordered
/// pair of **distinct** rank states may be productive.
///
/// # Errors
///
/// Returns the first productive distinct-rank pair found.
pub fn validate_distinct_ranks_silent<P: Protocol + ?Sized>(p: &P) -> Result<(), String> {
    let n = p.num_rank_states() as State;
    for a in 0..n {
        for b in 0..n {
            if a != b && p.transition(a, b).is_some() {
                return Err(format!(
                    "distinct rank pair ({a},{b}) is productive; \
                     a perfect ranking would not be silent"
                ));
            }
        }
    }
    Ok(())
}

/// Composite check of the full ranking contract (see module docs) for small
/// instances: schema exactness, no identity rewrites, and silence of
/// perfect rankings.
///
/// # Errors
///
/// Propagates the first failure from either validator.
pub fn validate_ranking_contract<P: InteractionSchema + ?Sized>(p: &P) -> Result<(), String> {
    validate_interaction_schema(p)?;
    validate_distinct_ranks_silent(p)?;
    if p.num_rank_states() != p.population_size() {
        return Err(format!(
            "ranking protocol must have exactly n rank states \
             (n = {}, rank states = {})",
            p.population_size(),
            p.num_rank_states()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal correct protocol: A_G.
    struct Ag {
        n: usize,
    }
    impl Protocol for Ag {
        fn name(&self) -> &str {
            "A_G"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            if i == r {
                Some((i, (r + 1) % self.n as State))
            } else {
                None
            }
        }
    }
    impl InteractionSchema for Ag {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::equal_rank()]
        }
    }

    #[test]
    fn ag_satisfies_contract() {
        validate_ranking_contract(&Ag { n: 7 }).unwrap();
    }

    #[test]
    fn extra_state_accessors() {
        let p = Ag { n: 5 };
        assert_eq!(p.num_extra_states(), 0);
        assert!(p.is_rank_state(4));
    }

    #[test]
    fn cross_direction_multipliers() {
        assert_eq!(CrossDirection::RankInitiator.multiplier(), 1);
        assert_eq!(CrossDirection::ExtraInitiator.multiplier(), 1);
        assert_eq!(CrossDirection::Both.multiplier(), 2);
    }

    /// A broken protocol whose declaration over-claims productivity.
    struct OverClaim;
    impl Protocol for OverClaim {
        fn name(&self) -> &str {
            "over"
        }
        fn population_size(&self) -> usize {
            3
        }
        fn num_states(&self) -> usize {
            3
        }
        fn num_rank_states(&self) -> usize {
            3
        }
        fn transition(&self, _i: State, _r: State) -> Option<(State, State)> {
            None
        }
    }
    impl InteractionSchema for OverClaim {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::equal_rank()]
        }
        fn equal_rank_rule(&self, _s: State) -> bool {
            true // lies: transition never fires
        }
    }

    #[test]
    fn over_claiming_declaration_rejected() {
        assert!(validate_interaction_schema(&OverClaim).is_err());
    }

    /// A broken protocol returning identity rewrites.
    struct Identity;
    impl Protocol for Identity {
        fn name(&self) -> &str {
            "id"
        }
        fn population_size(&self) -> usize {
            2
        }
        fn num_states(&self) -> usize {
            2
        }
        fn num_rank_states(&self) -> usize {
            2
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            Some((i, r))
        }
    }
    impl InteractionSchema for Identity {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::equal_rank()]
        }
    }

    #[test]
    fn identity_rewrites_rejected() {
        assert!(validate_interaction_schema(&Identity).is_err());
    }

    /// A protocol that is not silent on perfect rankings.
    struct Noisy;
    impl Protocol for Noisy {
        fn name(&self) -> &str {
            "noisy"
        }
        fn population_size(&self) -> usize {
            3
        }
        fn num_states(&self) -> usize {
            3
        }
        fn num_rank_states(&self) -> usize {
            3
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            if i == 0 && r == 1 {
                Some((0, 2))
            } else {
                None
            }
        }
    }

    #[test]
    fn non_silent_ranking_rejected() {
        assert!(validate_distinct_ranks_silent(&Noisy).is_err());
    }

    /// A protocol using the sparse-pair escape hatch: the same rule set as
    /// `Noisy` above, declared exactly.
    impl InteractionSchema for Noisy {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::pair(0, 1)]
        }
    }

    #[test]
    fn sparse_pair_escape_hatch_validates() {
        validate_interaction_schema(&Noisy).unwrap();
    }

    /// Overlapping declarations (a Pair duplicating EqualRank coverage)
    /// are rejected even though the union covers exactly the productive
    /// set.
    struct Overlap;
    impl Protocol for Overlap {
        fn name(&self) -> &str {
            "overlap"
        }
        fn population_size(&self) -> usize {
            2
        }
        fn num_states(&self) -> usize {
            2
        }
        fn num_rank_states(&self) -> usize {
            2
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            (i == r && i == 0).then_some((0, 1))
        }
    }
    impl InteractionSchema for Overlap {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::equal_rank(), ClassSpec::pair(0, 0)]
        }
    }

    #[test]
    fn overlapping_classes_rejected() {
        let err = validate_interaction_schema(&Overlap).unwrap_err();
        assert!(err.contains("covered by 2"), "{err}");
    }

    #[test]
    fn non_exchangeable_builder_flag() {
        let spec = ClassSpec::extra_extra().non_exchangeable();
        assert!(!spec.exchangeable);
        assert!(ClassSpec::pair(3, 4).exchangeable);
    }

    /// A configurable protocol for schema-hash tests: the declared class
    /// list is injected, so declaration order and content vary freely.
    struct Declared {
        n: usize,
        classes: Vec<ClassSpec>,
    }
    impl Protocol for Declared {
        fn name(&self) -> &str {
            "declared"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n + 2
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            // Equal-rank rule only at even rank states; the hash must pick
            // this membership up through `equal_rank_rule`.
            (i == r && (i as usize) < self.n && i.is_multiple_of(2)).then_some((i, i + 1))
        }
    }
    impl InteractionSchema for Declared {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            self.classes.clone()
        }
    }

    #[test]
    fn schema_hash_is_stable_across_recompiles() {
        // Two independently constructed instances (separate allocations,
        // separate compiled schemas) hash identically.
        let a = Declared {
            n: 10,
            classes: vec![ClassSpec::equal_rank(), ClassSpec::extra_extra()],
        };
        let b = Declared {
            n: 10,
            classes: vec![ClassSpec::equal_rank(), ClassSpec::extra_extra()],
        };
        assert_eq!(a.schema_hash(), b.schema_hash());
        assert_eq!(a.schema_hash(), a.schema_hash());
    }

    #[test]
    fn schema_hash_is_order_independent_over_declared_classes() {
        let fwd = Declared {
            n: 8,
            classes: vec![
                ClassSpec::equal_rank(),
                ClassSpec::extra_extra(),
                ClassSpec::pair(1, 3),
                ClassSpec::pair(3, 1),
            ],
        };
        let rev = Declared {
            n: 8,
            classes: vec![
                ClassSpec::pair(3, 1),
                ClassSpec::pair(1, 3),
                ClassSpec::extra_extra(),
                ClassSpec::equal_rank(),
            ],
        };
        assert_eq!(fwd.schema_hash(), rev.schema_hash());
    }

    #[test]
    fn schema_hash_distinguishes_structure() {
        let base = Declared {
            n: 8,
            classes: vec![ClassSpec::equal_rank()],
        };
        // Different class set.
        let more = Declared {
            n: 8,
            classes: vec![ClassSpec::equal_rank(), ClassSpec::extra_extra()],
        };
        // Different shape, same classes.
        let bigger = Declared {
            n: 9,
            classes: vec![ClassSpec::equal_rank()],
        };
        // Swapped pair orientation is a different rule set.
        let ab = Declared {
            n: 8,
            classes: vec![ClassSpec::pair(1, 3)],
        };
        let ba = Declared {
            n: 8,
            classes: vec![ClassSpec::pair(3, 1)],
        };
        // Exchangeability is part of the batching contract.
        let non_exch = Declared {
            n: 8,
            classes: vec![ClassSpec::equal_rank().non_exchangeable()],
        };
        let h = base.schema_hash();
        assert_ne!(h, more.schema_hash());
        assert_ne!(h, bigger.schema_hash());
        assert_ne!(h, non_exch.schema_hash());
        assert_ne!(ab.schema_hash(), ba.schema_hash());
    }

    /// Same shape and class list as `Declared`, different equal-rank rule
    /// membership (odd instead of even states).
    struct DeclaredOdd {
        n: usize,
    }
    impl Protocol for DeclaredOdd {
        fn name(&self) -> &str {
            "declared-odd"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n + 2
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            (i == r && (i as usize) < self.n && i % 2 == 1).then(|| (i, i - 1))
        }
    }
    impl InteractionSchema for DeclaredOdd {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::equal_rank()]
        }
    }

    #[test]
    fn schema_hash_sees_equal_rank_membership() {
        let even = Declared {
            n: 8,
            classes: vec![ClassSpec::equal_rank()],
        };
        let odd = DeclaredOdd { n: 8 };
        assert_ne!(even.schema_hash(), odd.schema_hash());
    }
}
