//! The [`Scenario`] builder: one experiment description driving every
//! engine.
//!
//! "With high probability" statements are measured over many independent
//! trials. A `Scenario` names the protocol, the engine
//! ([`EngineKind::Auto`] by default — count at large `n`, jump below), the
//! initial-configuration family, an optional [`FaultPlan`] (timed bursts,
//! background corruption, churn, Byzantine agents — see
//! [`Scenario::fault_plan`]), and the trial budget; [`Scenario::run`]
//! executes the trials in parallel with
//! deterministic per-trial seeds derived from a single base seed, so an
//! experiment is reproducible regardless of thread count. The scenario's
//! [`threads`](Scenario::threads) value is a single core budget split
//! across concurrent trials and each trial engine's parallel batch
//! splits (see [`Scenario::thread_split`]). The CLI and every `exp_*`
//! experiment binary consume this API.
//!
//! # Examples
//!
//! ```
//! use ssr_engine::protocol::{ClassSpec, InteractionSchema, Protocol, State};
//! use ssr_engine::runner::{Init, Scenario};
//!
//! struct Ag { n: usize }
//! impl Protocol for Ag {
//!     fn name(&self) -> &str { "A_G" }
//!     fn population_size(&self) -> usize { self.n }
//!     fn num_states(&self) -> usize { self.n }
//!     fn num_rank_states(&self) -> usize { self.n }
//!     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
//!         (i == r).then(|| (i, (r + 1) % self.n as State))
//!     }
//! }
//! impl InteractionSchema for Ag {
//!     fn interaction_classes(&self) -> Vec<ClassSpec> {
//!         vec![ClassSpec::equal_rank()]
//!     }
//! }
//!
//! let p = Ag { n: 16 };
//! let results = Scenario::new(&p)
//!     .init(Init::Stacked)
//!     .trials(8)
//!     .base_seed(7)
//!     .run();
//! assert_eq!(results.len(), 8);
//! assert_eq!(results.success_rate(), 1.0);
//! ```

use crate::engine::{make_engine_from_counts, make_engine_threaded, Engine, EngineKind};
use crate::error::{ConfigError, StabilisationTimeout};
use crate::faults::{run_with_plan, FaultPlan, RunOutcome};
use crate::init::{self, DuplicatePlacement};
use crate::protocol::{InteractionSchema, State};
use crate::rng::{derive_seed, Xoshiro256};
use crate::sim::StabilisationReport;

/// Parameters for a batch of independent trials (the flat, non-builder
/// form consumed by [`run_trials`]; [`Scenario`] is the richer interface).
#[derive(Debug, Clone)]
pub struct TrialConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Per-trial interaction cap.
    pub max_interactions: u64,
    /// Base seed; trial `t` uses `derive_seed(base_seed, t)`.
    pub base_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl TrialConfig {
    /// Config with the given number of trials and permissive defaults
    /// (unbounded interactions, seed 0, auto thread count).
    pub fn new(trials: usize) -> Self {
        TrialConfig {
            trials,
            max_interactions: u64::MAX,
            base_seed: 0,
            threads: 0,
        }
    }

    /// Set the per-trial interaction cap.
    pub fn with_max_interactions(mut self, max: u64) -> Self {
        self.max_interactions = max;
        self
    }

    /// Set the base seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Set the number of worker threads (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Results of a batch of trials, in trial order.
#[derive(Debug, Clone)]
pub struct TrialResults {
    reports: Vec<Result<StabilisationReport, StabilisationTimeout>>,
}

impl TrialResults {
    /// Number of trials run.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True if no trials were run.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Per-trial outcomes in trial order.
    pub fn reports(&self) -> &[Result<StabilisationReport, StabilisationTimeout>] {
        &self.reports
    }

    /// Fraction of trials that stabilised within the cap.
    pub fn success_rate(&self) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports.iter().filter(|r| r.is_ok()).count() as f64 / self.reports.len() as f64
    }

    /// Parallel stabilisation times of the successful trials.
    pub fn parallel_times(&self) -> Vec<f64> {
        self.reports
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|rep| rep.parallel_time))
            .collect()
    }

    /// Interaction counts of the successful trials.
    pub fn interaction_counts(&self) -> Vec<u64> {
        self.reports
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|rep| rep.interactions))
            .collect()
    }
}

impl FromIterator<Result<StabilisationReport, StabilisationTimeout>> for TrialResults {
    fn from_iter<I: IntoIterator<Item = Result<StabilisationReport, StabilisationTimeout>>>(
        iter: I,
    ) -> Self {
        TrialResults {
            reports: iter.into_iter().collect(),
        }
    }
}

/// Initial-configuration family of a [`Scenario`]. Every variant is
/// deterministic in the per-trial seed it is given.
#[derive(Clone, Copy)]
pub enum Init<'a> {
    /// Everyone stacked in state 0 — the classic adversarial start.
    Stacked,
    /// Everyone in the given state.
    AllIn(State),
    /// Uniformly random over the protocol's full state space — the
    /// paper's "arbitrary initial configuration".
    Uniform,
    /// The silent perfect ranking (combine with
    /// [`Scenario::faults`] for corrupt-and-recover runs).
    Perfect,
    /// A configuration at ranking distance exactly `k` (that many rank
    /// states unoccupied), duplicates placed randomly.
    KDistant(usize),
    /// Custom generator: per-trial seed in, configuration out.
    Custom(&'a (dyn Fn(u64) -> Vec<State> + Sync)),
}

impl std::fmt::Debug for Init<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Init::Stacked => f.write_str("Stacked"),
            Init::AllIn(s) => write!(f, "AllIn({s})"),
            Init::Uniform => f.write_str("Uniform"),
            Init::Perfect => f.write_str("Perfect"),
            Init::KDistant(k) => write!(f, "KDistant({k})"),
            Init::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// A declarative experiment: protocol + engine + initial configuration +
/// optional fault plan + trial budget. See the module docs for an
/// example.
#[derive(Debug)]
pub struct Scenario<'a, P: InteractionSchema + Sync + ?Sized> {
    protocol: &'a P,
    engine: EngineKind,
    init: Init<'a>,
    plan: Option<FaultPlan>,
    trials: usize,
    max_interactions: u64,
    base_seed: u64,
    threads: usize,
}

impl<'a, P: InteractionSchema + Sync + ?Sized> Scenario<'a, P> {
    /// A single-trial scenario over `protocol` with the defaults: engine
    /// [`EngineKind::Auto`], [`Init::Uniform`] start, no faults, no
    /// interaction cap, base seed 0, auto thread count.
    pub fn new(protocol: &'a P) -> Self {
        Scenario {
            protocol,
            engine: EngineKind::Auto,
            init: Init::Uniform,
            plan: None,
            trials: 1,
            max_interactions: u64::MAX,
            base_seed: 0,
            threads: 0,
        }
    }

    /// Select the engine (default [`EngineKind::Auto`]).
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// Select the initial-configuration family (default
    /// [`Init::Uniform`]).
    pub fn init(mut self, init: Init<'a>) -> Self {
        self.init = init;
        self
    }

    /// Corrupt each trial's start with this many transient faults: every
    /// fault rewrites one uniformly random agent to a uniformly random
    /// state (possibly its own — real fault models do not guarantee
    /// damage). Sugar for [`fault_plan`](Self::fault_plan) with
    /// [`FaultPlan::once`]; zero clears the plan.
    pub fn faults(self, faults: usize) -> Self {
        let plan = (faults > 0).then(|| FaultPlan::once(faults as u32));
        Self { plan, ..self }
    }

    /// Attach a timed [`FaultPlan`] executed deterministically against
    /// each trial's engine: bursts at arbitrary clock times, periodic
    /// bursts, background corruption, replacement churn, and Byzantine
    /// agents (see [`run_with_plan`]). Each trial derives an independent
    /// fault seed from the base seed, so fault sequences are reproducible
    /// and engine-independent. Plans with persistent processes require a
    /// finite [`max_interactions`](Self::max_interactions).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Number of independent trials (default 1).
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Per-trial interaction cap (default unbounded).
    pub fn max_interactions(mut self, max: u64) -> Self {
        self.max_interactions = max;
        self
    }

    /// Base seed; trial `t` derives its config and simulation seeds from
    /// it (default 0).
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Core budget (0 = one per available core, the default). This is a
    /// **single** budget spanning both parallelism levels: concurrent
    /// trials, and the count engine's parallel per-class batch splits
    /// inside each trial. [`run`](Self::run) splits it as
    /// `trial_workers × split_threads ≤ budget` — see
    /// [`thread_split`](Self::thread_split) for the policy. A scenario
    /// with many trials runs them trial-parallel on single-threaded
    /// engines; a single-trial scenario at large `n` hands the whole
    /// budget to its engine's split workers; in between both levels get a
    /// share. Either way every result is bit-identical for a fixed base
    /// seed regardless of the budget.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configuration trial `t` starts from. Faults no longer touch
    /// the configuration here: a [`FaultPlan`] executes against the
    /// running engine (a `t = 0` burst reproduces the corrupt-at-start
    /// model).
    fn trial_config(&self, trial: u64) -> Vec<State> {
        let config_seed = derive_seed(self.base_seed, trial * 2);
        let n = self.protocol.population_size();
        match self.init {
            Init::Stacked => init::all_in(n, 0),
            Init::AllIn(s) => init::all_in(n, s),
            Init::Uniform => {
                let mut rng = Xoshiro256::seed_from_u64(config_seed);
                init::uniform_random(n, self.protocol.num_states(), &mut rng)
            }
            Init::Perfect => init::perfect_ranking(n),
            Init::KDistant(k) => {
                let mut rng = Xoshiro256::seed_from_u64(config_seed);
                init::k_distant(n, k, DuplicatePlacement::Random, &mut rng)
            }
            Init::Custom(make) => make(config_seed),
        }
    }

    /// The configuration trial `t` starts from, as per-state occupancy
    /// counts and without materialising the agent vector — available for
    /// the init families whose counts can be generated directly (fault
    /// plans execute against the engine, so they do not force the agent
    /// vector). Consumes the RNG identically to
    /// [`trial_config`](Self::trial_config), so the resulting multiset of
    /// states is the same either way.
    fn trial_counts(&self, trial: u64) -> Option<Vec<u32>> {
        let config_seed = derive_seed(self.base_seed, trial * 2);
        let n = self.protocol.population_size();
        let num_states = self.protocol.num_states();
        match self.init {
            Init::Stacked => {
                let mut counts = vec![0u32; num_states];
                counts[0] = n as u32;
                Some(counts)
            }
            Init::AllIn(s) => {
                if (s as usize) >= num_states {
                    // Fall back to the agent-vector path, which reports
                    // the out-of-range state as a ConfigError instead of
                    // an index panic.
                    return None;
                }
                let mut counts = vec![0u32; num_states];
                counts[s as usize] = n as u32;
                Some(counts)
            }
            Init::Uniform => {
                let mut rng = Xoshiro256::seed_from_u64(config_seed);
                Some(init::uniform_random_counts(n, num_states, &mut rng))
            }
            Init::Perfect => {
                let mut counts = vec![0u32; num_states];
                for slot in counts.iter_mut().take(n) {
                    *slot = 1;
                }
                Some(counts)
            }
            Init::KDistant(_) | Init::Custom(_) => None,
        }
    }

    /// Build the (boxed) engine for trial `trial`, positioned at its start
    /// configuration. Useful for drivers that want to own the run loop
    /// (observers, wall-clock measurement, snapshotting).
    ///
    /// The engine receives the per-trial share of the scenario's core
    /// budget (the `split_threads` half of
    /// [`thread_split`](Self::thread_split)); the rest is reserved for
    /// trial-level parallelism in [`run`](Self::run). Init families whose
    /// counts are directly generable skip the agent vector entirely.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration generator produces an
    /// invalid configuration for the protocol.
    pub fn build_engine(&self, trial: u64) -> Result<Box<dyn Engine + 'a>, ConfigError> {
        let sim_seed = derive_seed(self.base_seed, trial * 2 + 1);
        let (_, engine_threads) = self.thread_split();
        if let Some(counts) = self.trial_counts(trial) {
            return make_engine_from_counts(
                self.engine,
                self.protocol,
                counts,
                sim_seed,
                engine_threads,
            );
        }
        make_engine_threaded(
            self.engine,
            self.protocol,
            self.trial_config(trial),
            sim_seed,
            engine_threads,
        )
    }

    /// Run a single trial to silence (or the interaction cap).
    ///
    /// With a fault plan attached this executes the plan and collapses the
    /// [`RunOutcome`] into the classic result shape: a run that ends
    /// silent is `Ok`, a run that reaches the cap still perturbed is a
    /// [`StabilisationTimeout`]. Use [`run_outcome`](Self::run_outcome)
    /// to keep the availability and recovery observables instead.
    ///
    /// # Errors
    ///
    /// Returns [`StabilisationTimeout`] when the cap is exceeded first.
    ///
    /// # Panics
    ///
    /// Panics if the configuration generator produces an invalid
    /// configuration, or if the plan has a persistent fault process and
    /// no finite cap is set.
    pub fn run_one(&self, trial: u64) -> Result<StabilisationReport, StabilisationTimeout> {
        if self.plan.is_some() {
            let outcome = self.run_outcome(trial);
            return if outcome.silent {
                Ok(outcome.report)
            } else {
                Err(StabilisationTimeout {
                    interactions: outcome.report.interactions,
                })
            };
        }
        let mut engine = self
            .build_engine(trial)
            .expect("scenario produced an invalid configuration");
        engine.run_until_silent(self.max_interactions)
    }

    /// Run a single trial under the scenario's fault plan (an empty plan
    /// if none was attached) and report the full [`RunOutcome`]:
    /// availability, `k`-distance excursions, per-burst recovery times,
    /// and whether the run ended silent. Non-convergence is reported, not
    /// an error.
    ///
    /// The fault process draws from a per-trial seed derived from the
    /// base seed (independent of the configuration and simulation seeds),
    /// so the schedule is identical across engines and thread counts.
    ///
    /// # Panics
    ///
    /// Panics if the configuration generator produces an invalid
    /// configuration, or if the plan has a persistent fault process and
    /// no finite cap is set.
    pub fn run_outcome(&self, trial: u64) -> RunOutcome {
        let mut engine = self
            .build_engine(trial)
            .expect("scenario produced an invalid configuration");
        let empty = FaultPlan::new();
        let plan = self.plan.as_ref().unwrap_or(&empty);
        let fault_seed = derive_seed(self.base_seed, trial * 2) ^ 0xFA17_FA17_FA17_FA17;
        run_with_plan(engine.as_mut(), plan, fault_seed, self.max_interactions)
    }

    /// Split the scenario's core budget across the two parallelism
    /// levels, returning `(trial_workers, split_threads)`:
    /// `trial_workers` trials run concurrently, and each trial's engine
    /// gets `split_threads` threads for its per-class batch splits.
    ///
    /// # Core-budget policy
    ///
    /// Trial-level parallelism comes first because independent trials
    /// scale perfectly, while split workers only help once per-batch draw
    /// counts are large: `trial_workers = budget.min(trials)`, and the
    /// cores left over per concurrent trial go to that trial's engine,
    /// `split_threads = (budget / trial_workers).max(1)`. Consequences:
    ///
    /// - many trials (≥ budget): fully trial-parallel, engines run
    ///   single-threaded — the PR 5 behaviour;
    /// - a single trial: the whole budget goes to the engine's persistent
    ///   split-worker pool — large-`n` scaling runs;
    /// - few trials on many cores (e.g. 3 trials, 8 cores): both levels
    ///   engage, `3 × 2 ≤ 8`.
    ///
    /// The product never exceeds the budget. Determinism is unaffected:
    /// trial seeds depend only on the trial index and engine trajectories
    /// are bit-identical at any split-thread count.
    pub fn thread_split(&self) -> (usize, usize) {
        let budget = self.effective_threads().max(1);
        let trial_workers = budget.min(self.trials.max(1));
        let split_threads = (budget / trial_workers).max(1);
        (trial_workers, split_threads)
    }

    /// Run all trials, in parallel when beneficial. The core budget is
    /// split across concurrent trials and per-trial engine threads by
    /// [`thread_split`](Self::thread_split). Results are in trial order
    /// and deterministic in the base seed regardless of the budget.
    ///
    /// # Panics
    ///
    /// Panics if the configuration generator produces an invalid
    /// configuration.
    pub fn run(&self) -> TrialResults {
        TrialResults {
            reports: self.run_map(|t| self.run_one(t)),
        }
    }

    /// Run all trials under the fault plan and keep the full
    /// [`RunOutcome`] per trial (see [`run_outcome`](Self::run_outcome)),
    /// in trial order, parallelised like [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if the configuration generator produces an invalid
    /// configuration, or if the plan has a persistent fault process and
    /// no finite cap is set.
    pub fn run_outcomes(&self) -> Vec<RunOutcome> {
        self.run_map(|t| self.run_outcome(t))
    }

    /// Run `f` once per trial index, trial-parallel under the scenario's
    /// core budget, collecting results in trial order.
    fn run_map<R: Send>(&self, f: impl Fn(u64) -> R + Sync) -> Vec<R> {
        let trials = self.trials;
        let (threads, _) = self.thread_split();
        let mut results: Vec<Option<R>> = (0..trials).map(|_| None).collect();

        if threads <= 1 || trials <= 1 {
            for (t, slot) in results.iter_mut().enumerate() {
                *slot = Some(f(t as u64));
            }
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let tx = tx.clone();
                    let next = &next;
                    let f = &f;
                    scope.spawn(move || loop {
                        let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if t >= trials {
                            break;
                        }
                        let r = f(t as u64);
                        tx.send((t, r)).expect("result channel closed");
                    });
                }
                drop(tx);
                for (t, r) in rx {
                    results[t] = Some(r);
                }
            });
        }

        results.into_iter().map(|r| r.expect("trial ran")).collect()
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        }
    }
}

/// Run `cfg.trials` independent trials of `protocol`, in parallel, with
/// automatic engine selection. `make_config(seed)` builds the initial
/// configuration for a trial; it receives a seed derived from the trial
/// index so configurations are independent yet reproducible.
///
/// Convenience wrapper over [`Scenario`] for closure-shaped callers; use
/// the builder directly to pick an engine or inject faults.
///
/// # Panics
///
/// Panics if `make_config` returns an invalid configuration for the
/// protocol.
pub fn run_trials<P, F>(protocol: &P, make_config: F, cfg: &TrialConfig) -> TrialResults
where
    P: InteractionSchema + Sync + ?Sized,
    F: Fn(u64) -> Vec<State> + Sync,
{
    Scenario::new(protocol)
        .init(Init::Custom(&make_config))
        .trials(cfg.trials)
        .max_interactions(cfg.max_interactions)
        .base_seed(cfg.base_seed)
        .threads(cfg.threads)
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ClassSpec, Protocol};

    struct Ag {
        n: usize,
    }
    impl Protocol for Ag {
        fn name(&self) -> &str {
            "A_G"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            if i == r {
                Some((i, (r + 1) % self.n as State))
            } else {
                None
            }
        }
    }
    impl InteractionSchema for Ag {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::equal_rank()]
        }
    }

    #[test]
    fn all_trials_succeed_and_are_ordered() {
        let p = Ag { n: 10 };
        let cfg = TrialConfig::new(12).with_base_seed(5);
        let res = run_trials(&p, |_s| vec![0; 10], &cfg);
        assert_eq!(res.len(), 12);
        assert_eq!(res.success_rate(), 1.0);
        assert_eq!(res.parallel_times().len(), 12);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let p = Ag { n: 10 };
        let base = TrialConfig::new(8).with_base_seed(42);
        let seq = run_trials(&p, |_s| vec![0; 10], &base.clone().with_threads(1));
        let par = run_trials(&p, |_s| vec![0; 10], &base.with_threads(4));
        assert_eq!(seq.interaction_counts(), par.interaction_counts());
    }

    #[test]
    fn timeouts_counted_in_success_rate() {
        let p = Ag { n: 10 };
        let cfg = TrialConfig::new(10)
            .with_base_seed(1)
            .with_max_interactions(1);
        let res = run_trials(&p, |_s| vec![0; 10], &cfg);
        assert_eq!(res.success_rate(), 0.0);
        assert!(res.parallel_times().is_empty());
    }

    #[test]
    fn scenario_runs_each_engine_kind() {
        let p = Ag { n: 8 };
        for kind in EngineKind::ALL.into_iter().chain([EngineKind::Auto]) {
            let res = Scenario::new(&p)
                .engine(kind)
                .init(Init::Stacked)
                .trials(4)
                .base_seed(3)
                .run();
            assert_eq!(res.success_rate(), 1.0, "{kind}");
        }
    }

    #[test]
    fn scenario_count_matches_jump_exactly_per_trial() {
        // Per-trial seeds are derived identically, and the count engine's
        // exact mode walks the jump engine's chain — at n = 8 the batch
        // threshold is never reached, so results are bit-identical.
        let p = Ag { n: 8 };
        let run = |kind| {
            Scenario::new(&p)
                .engine(kind)
                .init(Init::Stacked)
                .trials(6)
                .base_seed(17)
                .run()
                .interaction_counts()
        };
        assert_eq!(run(EngineKind::Jump), run(EngineKind::Count));
    }

    #[test]
    fn auto_is_jump_below_threshold() {
        // Below the auto threshold the default engine must reproduce the
        // jump engine's exact per-trial results.
        let p = Ag { n: 12 };
        let run = |kind| {
            Scenario::new(&p)
                .engine(kind)
                .init(Init::Stacked)
                .trials(5)
                .base_seed(23)
                .run()
                .interaction_counts()
        };
        assert_eq!(run(EngineKind::Auto), run(EngineKind::Jump));
    }

    #[test]
    fn init_families_produce_valid_starts() {
        let p = Ag { n: 12 };
        for (init, expect_silent) in [
            (Init::Stacked, false),
            (Init::AllIn(3), false),
            (Init::Uniform, false),
            (Init::Perfect, true),
            (Init::KDistant(4), false),
        ] {
            let s = Scenario::new(&p).init(init).base_seed(9);
            let e = s.build_engine(0).unwrap();
            assert_eq!(e.counts().iter().sum::<u32>(), 12, "{init:?}");
            if expect_silent {
                assert!(e.is_silent(), "{init:?}");
            }
        }
        let e = Scenario::new(&p)
            .init(Init::KDistant(4))
            .base_seed(9)
            .build_engine(0)
            .unwrap();
        let unoccupied = e.counts().iter().filter(|&&c| c == 0).count();
        assert_eq!(unoccupied, 4);
    }

    #[test]
    fn faults_corrupt_a_perfect_start_and_recovery_succeeds() {
        let p = Ag { n: 20 };
        let s = Scenario::new(&p)
            .init(Init::Perfect)
            .faults(5)
            .trials(10)
            .base_seed(31);
        // With faults the start is (almost surely) not silent; recovery
        // must still succeed in every trial.
        let res = s.run();
        assert_eq!(res.success_rate(), 1.0);
        // Determinism: the same scenario rebuilt gives identical results.
        assert_eq!(res.interaction_counts(), s.run().interaction_counts());
    }

    #[test]
    fn fault_plan_outcomes_report_bursts_and_are_deterministic() {
        let p = Ag { n: 20 };
        let s = Scenario::new(&p)
            .init(Init::Perfect)
            .fault_plan(FaultPlan::new().burst_at(1_000, 4))
            .trials(6)
            .base_seed(53);
        let outcomes = s.run_outcomes();
        assert_eq!(outcomes.len(), 6);
        for o in &outcomes {
            assert!(o.silent);
            assert_eq!(o.faults_injected, 4);
            assert_eq!(o.bursts.len(), 1);
            assert_eq!(o.bursts[0].time, 1_000);
        }
        // Trial-parallel execution must not change any outcome.
        let serial = Scenario::new(&p)
            .init(Init::Perfect)
            .fault_plan(FaultPlan::new().burst_at(1_000, 4))
            .trials(6)
            .base_seed(53)
            .threads(1)
            .run_outcomes();
        assert_eq!(outcomes, serial);
    }

    #[test]
    fn byzantine_scenario_degrades_gracefully_to_an_outcome() {
        // Acceptance: a Byzantine run terminates with a RunOutcome
        // reporting reduced availability instead of an error or a hang.
        let p = Ag { n: 16 };
        let s = Scenario::new(&p)
            .init(Init::Stacked)
            .fault_plan(FaultPlan::new().byzantine(2))
            .max_interactions(150_000)
            .base_seed(8);
        let outcome = s.run_outcome(0);
        assert!(!outcome.silent);
        assert!(outcome.availability < 1.0);
        // The classic interface reports the same run as a timeout.
        assert!(s.run_one(0).is_err());
    }

    #[test]
    fn config_seed_feeds_generator() {
        let p = Ag { n: 8 };
        let cfg = TrialConfig::new(3).with_base_seed(9);
        // Build k-distant style configs from the provided seed; just check
        // different trials get different seeds by recording them.
        let seen = std::sync::Mutex::new(Vec::new());
        let _ = run_trials(
            &p,
            |seed| {
                seen.lock().unwrap().push(seed);
                vec![0; 8]
            },
            &cfg,
        );
        let seen = seen.into_inner().unwrap();
        let distinct: std::collections::HashSet<_> = seen.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn empty_batch() {
        let p = Ag { n: 8 };
        let cfg = TrialConfig::new(0);
        let res = run_trials(&p, |_s| vec![0; 8], &cfg);
        assert!(res.is_empty());
        assert_eq!(res.success_rate(), 0.0);
    }

    #[test]
    fn counts_fast_path_matches_agent_vector_path() {
        // For the directly-generable init families the counts path must
        // produce the same multiset as the materialised agent vector (the
        // uniform family shares the exact RNG draw sequence).
        let p = Ag { n: 16 };
        for init in [Init::Stacked, Init::AllIn(3), Init::Uniform, Init::Perfect] {
            let s = Scenario::new(&p).init(init).base_seed(77);
            let via_counts = s.trial_counts(0).expect("family supports counts");
            let via_agents =
                crate::init::counts(&s.trial_config(0), p.num_states());
            assert_eq!(via_counts, via_agents, "{init:?}");
        }
        // Fault plans execute against the engine, so they no longer
        // force the agent-vector path.
        assert!(Scenario::new(&p).faults(1).trial_counts(0).is_some());
        assert!(Scenario::new(&p).init(Init::KDistant(2)).trial_counts(0).is_none());
    }

    #[test]
    fn core_budget_splits_across_trials_then_engine() {
        let p = Ag { n: 8 };
        let split = |trials, threads| {
            Scenario::new(&p).trials(trials).threads(threads).thread_split()
        };
        // Single trial: the whole budget goes to the engine's splits.
        assert_eq!(split(1, 8), (1, 8));
        // Trials saturate the budget: fully trial-parallel.
        assert_eq!(split(8, 8), (8, 1));
        assert_eq!(split(16, 4), (4, 1));
        // In between, both levels engage and the product stays ≤ budget.
        assert_eq!(split(2, 8), (2, 4));
        assert_eq!(split(3, 8), (3, 2));
        // Degenerate inputs stay sane.
        assert_eq!(split(0, 4), (1, 4));
        assert_eq!(split(5, 1), (1, 1));
    }

    #[test]
    fn mixed_budget_is_deterministic() {
        // 2 trials on a 4-core budget engage both levels (2 trial workers
        // × 2 split threads); results must match the serial run.
        let p = Ag { n: 10 };
        let run = |threads| {
            Scenario::new(&p)
                .init(Init::Stacked)
                .trials(2)
                .base_seed(91)
                .threads(threads)
                .run()
                .interaction_counts()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn out_of_range_all_in_state_is_a_config_error_not_a_panic() {
        let p = Ag { n: 8 };
        let outcome = Scenario::new(&p)
            .init(Init::AllIn(99))
            .build_engine(0)
            .err()
            .map(|e| e.to_string());
        assert!(outcome.is_some(), "state 99 must be rejected for 8 states");
    }
}
