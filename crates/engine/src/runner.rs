//! Multi-trial experiment driver.
//!
//! "With high probability" statements are measured over many independent
//! trials; this module runs them in parallel with deterministic per-trial
//! seeds derived from a single base seed, so an experiment is reproducible
//! regardless of thread count.
//!
//! # Examples
//!
//! ```
//! use ssr_engine::protocol::{Protocol, ProductiveClasses, State};
//! use ssr_engine::runner::{run_trials, TrialConfig};
//!
//! struct Ag { n: usize }
//! impl Protocol for Ag {
//!     fn name(&self) -> &str { "A_G" }
//!     fn population_size(&self) -> usize { self.n }
//!     fn num_states(&self) -> usize { self.n }
//!     fn num_rank_states(&self) -> usize { self.n }
//!     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
//!         (i == r).then(|| (i, (r + 1) % self.n as State))
//!     }
//! }
//! impl ProductiveClasses for Ag {}
//!
//! let p = Ag { n: 16 };
//! let cfg = TrialConfig::new(8).with_base_seed(7);
//! let results = run_trials(&p, |_seed| vec![0; 16], &cfg);
//! assert_eq!(results.len(), 8);
//! assert_eq!(results.success_rate(), 1.0);
//! ```

use crate::error::StabilisationTimeout;
use crate::jump::JumpSimulation;
use crate::protocol::{ProductiveClasses, State};
use crate::rng::derive_seed;
use crate::sim::{Simulation, StabilisationReport};

/// Parameters for a batch of independent trials.
#[derive(Debug, Clone)]
pub struct TrialConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Per-trial interaction cap.
    pub max_interactions: u64,
    /// Base seed; trial `t` uses `derive_seed(base_seed, t)`.
    pub base_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl TrialConfig {
    /// Config with the given number of trials and permissive defaults
    /// (unbounded interactions, seed 0, auto thread count).
    pub fn new(trials: usize) -> Self {
        TrialConfig {
            trials,
            max_interactions: u64::MAX,
            base_seed: 0,
            threads: 0,
        }
    }

    /// Set the per-trial interaction cap.
    pub fn with_max_interactions(mut self, max: u64) -> Self {
        self.max_interactions = max;
        self
    }

    /// Set the base seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Set the number of worker threads (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        }
    }
}

/// Results of a batch of trials, in trial order.
#[derive(Debug, Clone)]
pub struct TrialResults {
    reports: Vec<Result<StabilisationReport, StabilisationTimeout>>,
}

impl TrialResults {
    /// Number of trials run.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True if no trials were run.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Per-trial outcomes in trial order.
    pub fn reports(&self) -> &[Result<StabilisationReport, StabilisationTimeout>] {
        &self.reports
    }

    /// Fraction of trials that stabilised within the cap.
    pub fn success_rate(&self) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports.iter().filter(|r| r.is_ok()).count() as f64 / self.reports.len() as f64
    }

    /// Parallel stabilisation times of the successful trials.
    pub fn parallel_times(&self) -> Vec<f64> {
        self.reports
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|rep| rep.parallel_time))
            .collect()
    }

    /// Interaction counts of the successful trials.
    pub fn interaction_counts(&self) -> Vec<u64> {
        self.reports
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|rep| rep.interactions))
            .collect()
    }
}

impl FromIterator<Result<StabilisationReport, StabilisationTimeout>> for TrialResults {
    fn from_iter<I: IntoIterator<Item = Result<StabilisationReport, StabilisationTimeout>>>(
        iter: I,
    ) -> Self {
        TrialResults {
            reports: iter.into_iter().collect(),
        }
    }
}

/// Which simulator backs the trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Step-by-step simulation (supports observers; slower).
    Naive,
    /// Exact null-skipping jump chain (default for experiments).
    Jump,
    /// Count-based batched engine (fastest at scale; batches
    /// far-from-silence phases).
    Count,
}

impl From<crate::engine::EngineKind> for Backend {
    fn from(kind: crate::engine::EngineKind) -> Self {
        match kind {
            crate::engine::EngineKind::Naive => Backend::Naive,
            crate::engine::EngineKind::Jump => Backend::Jump,
            crate::engine::EngineKind::Count => Backend::Count,
        }
    }
}

/// Run `cfg.trials` independent trials of `protocol` using the jump-chain
/// simulator, in parallel. `make_config(seed)` builds the initial
/// configuration for a trial; it receives a seed derived from the trial
/// index so configurations are independent yet reproducible.
///
/// # Panics
///
/// Panics if `make_config` returns an invalid configuration for the
/// protocol.
pub fn run_trials<P, F>(protocol: &P, make_config: F, cfg: &TrialConfig) -> TrialResults
where
    P: ProductiveClasses + Sync + ?Sized,
    F: Fn(u64) -> Vec<State> + Sync,
{
    run_trials_backend(protocol, make_config, cfg, Backend::Jump)
}

/// [`run_trials`] with an explicit simulator backend.
///
/// # Panics
///
/// Panics if `make_config` returns an invalid configuration.
pub fn run_trials_backend<P, F>(
    protocol: &P,
    make_config: F,
    cfg: &TrialConfig,
    backend: Backend,
) -> TrialResults
where
    P: ProductiveClasses + Sync + ?Sized,
    F: Fn(u64) -> Vec<State> + Sync,
{
    let trials = cfg.trials;
    let threads = cfg.effective_threads().min(trials.max(1));
    let mut reports: Vec<Option<Result<StabilisationReport, StabilisationTimeout>>> =
        vec![None; trials];

    if threads <= 1 || trials <= 1 {
        for (t, slot) in reports.iter_mut().enumerate() {
            *slot = Some(run_one(protocol, &make_config, cfg, backend, t as u64));
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let make_config = &make_config;
                scope.spawn(move || loop {
                    let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if t >= trials {
                        break;
                    }
                    let r = run_one(protocol, make_config, cfg, backend, t as u64);
                    tx.send((t, r)).expect("result channel closed");
                });
            }
            drop(tx);
            for (t, r) in rx {
                reports[t] = Some(r);
            }
        });
    }

    TrialResults {
        reports: reports.into_iter().map(|r| r.expect("trial ran")).collect(),
    }
}

fn run_one<P, F>(
    protocol: &P,
    make_config: &F,
    cfg: &TrialConfig,
    backend: Backend,
    trial: u64,
) -> Result<StabilisationReport, StabilisationTimeout>
where
    P: ProductiveClasses + Sync + ?Sized,
    F: Fn(u64) -> Vec<State> + Sync,
{
    let config_seed = derive_seed(cfg.base_seed, trial * 2);
    let sim_seed = derive_seed(cfg.base_seed, trial * 2 + 1);
    let config = make_config(config_seed);
    match backend {
        Backend::Jump => {
            let mut sim = JumpSimulation::new(protocol, config, sim_seed)
                .expect("make_config produced an invalid configuration");
            sim.run_until_silent(cfg.max_interactions)
        }
        Backend::Naive => {
            let mut sim = Simulation::new(protocol, config, sim_seed)
                .expect("make_config produced an invalid configuration");
            sim.run_until_silent(cfg.max_interactions)
        }
        Backend::Count => {
            let mut sim = crate::count::CountSimulation::new(protocol, config, sim_seed)
                .expect("make_config produced an invalid configuration");
            sim.run_until_silent(cfg.max_interactions)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;

    struct Ag {
        n: usize,
    }
    impl Protocol for Ag {
        fn name(&self) -> &str {
            "A_G"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            if i == r {
                Some((i, (r + 1) % self.n as State))
            } else {
                None
            }
        }
    }
    impl ProductiveClasses for Ag {}

    #[test]
    fn all_trials_succeed_and_are_ordered() {
        let p = Ag { n: 10 };
        let cfg = TrialConfig::new(12).with_base_seed(5);
        let res = run_trials(&p, |_s| vec![0; 10], &cfg);
        assert_eq!(res.len(), 12);
        assert_eq!(res.success_rate(), 1.0);
        assert_eq!(res.parallel_times().len(), 12);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let p = Ag { n: 10 };
        let base = TrialConfig::new(8).with_base_seed(42);
        let seq = run_trials(&p, |_s| vec![0; 10], &base.clone().with_threads(1));
        let par = run_trials(&p, |_s| vec![0; 10], &base.with_threads(4));
        assert_eq!(seq.interaction_counts(), par.interaction_counts());
    }

    #[test]
    fn timeouts_counted_in_success_rate() {
        let p = Ag { n: 10 };
        let cfg = TrialConfig::new(10)
            .with_base_seed(1)
            .with_max_interactions(1);
        let res = run_trials(&p, |_s| vec![0; 10], &cfg);
        assert_eq!(res.success_rate(), 0.0);
        assert!(res.parallel_times().is_empty());
    }

    #[test]
    fn naive_backend_works() {
        let p = Ag { n: 8 };
        let cfg = TrialConfig::new(4).with_base_seed(3);
        let res = run_trials_backend(&p, |_s| vec![0; 8], &cfg, Backend::Naive);
        assert_eq!(res.success_rate(), 1.0);
    }

    #[test]
    fn count_backend_matches_jump_exactly_per_trial() {
        // Per-trial seeds are derived identically, and the count engine's
        // exact mode walks the jump engine's chain — at n = 8 the batch
        // threshold is never reached, so results are bit-identical.
        let p = Ag { n: 8 };
        let cfg = TrialConfig::new(6).with_base_seed(17);
        let jump = run_trials_backend(&p, |_s| vec![0; 8], &cfg, Backend::Jump);
        let count = run_trials_backend(&p, |_s| vec![0; 8], &cfg, Backend::Count);
        assert_eq!(jump.interaction_counts(), count.interaction_counts());
    }

    #[test]
    fn backend_from_engine_kind() {
        use crate::engine::EngineKind;
        assert_eq!(Backend::from(EngineKind::Naive), Backend::Naive);
        assert_eq!(Backend::from(EngineKind::Jump), Backend::Jump);
        assert_eq!(Backend::from(EngineKind::Count), Backend::Count);
    }

    #[test]
    fn config_seed_feeds_generator() {
        let p = Ag { n: 8 };
        let cfg = TrialConfig::new(3).with_base_seed(9);
        // Build k-distant style configs from the provided seed; just check
        // different trials get different seeds by recording them.
        let seen = std::sync::Mutex::new(Vec::new());
        let _ = run_trials(
            &p,
            |seed| {
                seen.lock().unwrap().push(seed);
                vec![0; 8]
            },
            &cfg,
        );
        let seen = seen.into_inner().unwrap();
        let distinct: std::collections::HashSet<_> = seen.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn empty_batch() {
        let p = Ag { n: 8 };
        let cfg = TrialConfig::new(0);
        let res = run_trials(&p, |_s| vec![0; 8], &cfg);
        assert!(res.is_empty());
        assert_eq!(res.success_rate(), 0.0);
    }
}
