//! Deterministic, dependency-free random number generation for the hot
//! simulation loop.
//!
//! The simulators draw billions of scheduler choices; we use a local
//! [Xoshiro256++][xo] generator seeded through SplitMix64 so that every
//! experiment is exactly reproducible from a single `u64` seed, independent
//! of external crate versions.
//!
//! [xo]: https://prng.di.unimi.it/
//!
//! # Examples
//!
//! ```
//! use ssr_engine::rng::Xoshiro256;
//!
//! let mut rng = Xoshiro256::seed_from_u64(42);
//! let a = rng.next_u64();
//! let b = rng.below(10);
//! assert!(b < 10);
//! let mut rng2 = Xoshiro256::seed_from_u64(42);
//! assert_eq!(rng2.next_u64(), a);
//! ```

/// SplitMix64 step: used to expand a single `u64` seed into generator state
/// and to derive independent per-trial seeds.
///
/// # Examples
///
/// ```
/// let s = ssr_engine::rng::split_mix64(&mut 1);
/// assert_ne!(s, 0);
/// ```
#[inline]
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed for trial `index` from a base experiment seed.
///
/// Distinct `(base, index)` pairs yield statistically independent streams,
/// so parallel trials never share randomness.
///
/// # Examples
///
/// ```
/// let a = ssr_engine::rng::derive_seed(7, 0);
/// let b = ssr_engine::rng::derive_seed(7, 1);
/// assert_ne!(a, b);
/// ```
#[inline]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut s = base ^ 0xA076_1D64_78BD_642F;
    let _ = split_mix64(&mut s);
    let mut s2 = s ^ index.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    split_mix64(&mut s2)
}

/// Xoshiro256++ pseudo-random generator.
///
/// Fast (sub-nanosecond per draw), 256 bits of state, passes BigCrush.
/// Not cryptographically secure — this is a simulation RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Create a generator from a 64-bit seed via SplitMix64 expansion.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssr_engine::rng::Xoshiro256;
    /// let mut rng = Xoshiro256::seed_from_u64(0);
    /// assert_ne!(rng.next_u64(), rng.next_u64());
    /// ```
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = split_mix64(&mut sm);
        }
        // An all-zero state is a fixed point of the transition; the SplitMix
        // expansion cannot produce it, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    /// The raw 256-bit generator state, for snapshot wire serialisation
    /// ([`crate::wire`]). Restoring via [`from_state`](Self::from_state)
    /// continues the stream exactly.
    pub(crate) fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a previously captured
    /// [`state`](Self::state). The all-zero state is a fixed point of the
    /// transition and cannot be produced by a live generator; map it to
    /// the seed-0 guard state rather than propagating a stuck stream.
    pub(crate) fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            return Xoshiro256 {
                s: [0x9E37_79B9_7F4A_7C15, 0, 0, 0],
            };
        }
        Xoshiro256 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// An ordered pair of distinct indices `(initiator, responder)`,
    /// uniform over all `n(n-1)` ordered pairs.
    ///
    /// This is exactly the paper's random scheduler draw.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[inline]
    pub fn ordered_pair(&mut self, n: usize) -> (usize, usize) {
        debug_assert!(n >= 2, "ordered_pair requires n >= 2");
        let i = self.below(n as u64) as usize;
        let mut r = self.below((n - 1) as u64) as usize;
        if r >= i {
            r += 1;
        }
        (i, r)
    }

    /// Number of consecutive failures before the first success of a
    /// Bernoulli(`p`) process (a geometric variate with support `{0,1,...}`).
    ///
    /// Used by the jump-chain simulator to account for skipped null
    /// interactions. `p` is clamped to `(0, 1]`; `p >= 1` always returns 0.
    /// Saturates at `u64::MAX`; callers whose mean `(1-p)/p` can approach
    /// that (the count engine near silence at `n ≥ 2³¹`) must use
    /// [`geometric_wide`](Self::geometric_wide) instead.
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        let k = self.geometric_wide(p);
        if k >= u64::MAX as u128 {
            u64::MAX
        } else {
            k as u64
        }
    }

    /// Full-width [`geometric`](Self::geometric) variate. Identical RNG
    /// consumption (one uniform), but returned at `u128` width so draws
    /// beyond `u64::MAX` stay exact instead of saturating.
    #[inline]
    pub fn geometric_wide(&mut self, p: f64) -> u128 {
        if p >= 1.0 {
            return 0;
        }
        debug_assert!(p > 0.0, "geometric_wide() requires p > 0");
        // floor(ln(1-U) / ln(1-p)); ln_1p keeps precision for small p.
        let u = self.unit_f64();
        let num = (-u).ln_1p(); // ln(1-u) <= 0
        let den = (-p).ln_1p(); // ln(1-p) <  0
        let k = num / den;
        if k >= u128::MAX as f64 {
            u128::MAX
        } else {
            k as u128
        }
    }

    /// Standard normal variate (Marsaglia polar method).
    ///
    /// Used by the count-batched simulator's large-count approximations;
    /// two uniforms are consumed per accepted pair and the spare deviate is
    /// **not** cached, so the draw count stays a deterministic function of
    /// the acceptance sequence.
    #[inline]
    pub fn gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.unit_f64() - 1.0;
            let v = 2.0 * self.unit_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Poisson(λ) variate.
    ///
    /// Knuth's product method below λ = 30 (exact), a continuity-corrected
    /// normal approximation above (relative error `O(1/√λ)`, negligible for
    /// the batched simulator's gap accounting).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        debug_assert!(lambda >= 0.0 && lambda.is_finite());
        if lambda <= 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut k = 0u64;
            let mut product = self.unit_f64();
            while product > limit {
                k += 1;
                product *= self.unit_f64();
            }
            k
        } else {
            let x = lambda + lambda.sqrt() * self.gaussian() + 0.5;
            if x < 0.0 {
                0
            } else {
                x as u64
            }
        }
    }

    /// Binomial(n, p) variate.
    ///
    /// Exact Bernoulli counting for small `n`, Poisson approximation in the
    /// rare-event tails, and a clamped normal approximation in the central
    /// regime. The result is always in `[0, n]`, so splitting a batch of
    /// `n` events between two classes conserves the batch exactly.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        debug_assert!((0.0..=1.0).contains(&p), "binomial p out of range");
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        // Symmetry: sample the rarer outcome for accuracy.
        if p > 0.5 {
            return n - self.binomial(n, 1.0 - p);
        }
        let nf = n as f64;
        let mean = nf * p;
        if n <= 64 {
            return (0..n).filter(|_| self.unit_f64() < p).count() as u64;
        }
        if mean < 20.0 {
            // Rare events: Binomial(n, p) ≈ Poisson(np).
            return self.poisson(mean).min(n);
        }
        let sd = (mean * (1.0 - p)).sqrt();
        let x = mean + sd * self.gaussian() + 0.5;
        if x < 0.0 {
            0
        } else {
            (x as u64).min(n)
        }
    }

    /// Negative binomial: total number of failures accumulated before the
    /// `k`-th success of a Bernoulli(`p`) process — i.e. the sum of `k`
    /// independent [`geometric`](Self::geometric) variates.
    ///
    /// Exact geometric summation for small `k`, clamped normal
    /// approximation (mean `k(1−p)/p`, variance `k(1−p)/p²`) for large `k`.
    /// The batched simulator uses this to account for all null interactions
    /// across a whole batch of productive steps in O(1). Saturates at
    /// `u64::MAX`; use [`neg_binomial_wide`](Self::neg_binomial_wide) when
    /// the mean can approach that.
    pub fn neg_binomial(&mut self, k: u64, p: f64) -> u64 {
        let x = self.neg_binomial_wide(k, p);
        if x >= u64::MAX as u128 {
            u64::MAX
        } else {
            x as u64
        }
    }

    /// Full-width [`neg_binomial`](Self::neg_binomial) variate. Identical
    /// RNG consumption, but summed and returned at `u128` width so neither
    /// the per-geometric draws nor their sum saturate below `u128::MAX`.
    pub fn neg_binomial_wide(&mut self, k: u64, p: f64) -> u128 {
        if k == 0 || p >= 1.0 {
            return 0;
        }
        debug_assert!(p > 0.0, "neg_binomial_wide requires p > 0");
        if k <= 16 {
            return (0..k).fold(0u128, |acc, _| {
                acc.saturating_add(self.geometric_wide(p))
            });
        }
        let kf = k as f64;
        let mean = kf * (1.0 - p) / p;
        let sd = (kf * (1.0 - p)).sqrt() / p;
        let x = mean + sd * self.gaussian() + 0.5;
        if x < 0.0 {
            0
        } else if x >= u128::MAX as f64 {
            u128::MAX
        } else {
            x as u128
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct values from `0..n` (order unspecified).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
        if k * 4 >= n {
            // Dense regime: partial Fisher–Yates.
            let mut all: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + self.below((n - i) as u64) as usize;
                all.swap(i, j);
            }
            all.truncate(k);
            all
        } else {
            // Sparse regime: rejection with a hash set.
            // lint:allow(D002): membership-only — `seen` gates inserts
            // and is never iterated; output order comes from the RNG.
            let mut seen = std::collections::HashSet::with_capacity(k * 2);
            let mut out = Vec::with_capacity(k);
            while out.len() < k {
                let v = self.below(n as u64) as usize;
                if seen.insert(v) {
                    out.push(v);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from_u64(123);
        let mut b = Xoshiro256::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.below(10);
            assert!(v < 10);
            buckets[v as usize] += 1;
        }
        for &b in &buckets {
            // Expected 10_000 per bucket; allow 10% slack.
            assert!((9_000..=11_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ordered_pair_distinct_and_uniform() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let n = 5;
        let mut counts = vec![0u32; n * n];
        for _ in 0..200_000 {
            let (i, r) = rng.ordered_pair(n);
            assert_ne!(i, r);
            counts[i * n + r] += 1;
        }
        let expected = 200_000 / (n * n - n);
        for i in 0..n {
            for r in 0..n {
                if i == r {
                    assert_eq!(counts[i * n + r], 0);
                } else {
                    let c = counts[i * n + r] as i64;
                    assert!(
                        (c - expected as i64).abs() < expected as i64 / 5,
                        "pair ({i},{r}) count {c}, expected ~{expected}"
                    );
                }
            }
        }
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let p = 0.01;
        let trials = 50_000;
        let total: u64 = (0..trials).map(|_| rng.geometric(p)).sum();
        let mean = total as f64 / trials as f64;
        let expected = (1.0 - p) / p; // 99
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn geometric_wide_exceeds_u64_without_wrapping() {
        // With p this small the mean (1-p)/p ≈ 1e30 dwarfs u64::MAX, so
        // essentially every draw lands beyond the narrow sampler's range.
        let p = 1e-30;
        let mut wide_rng = Xoshiro256::seed_from_u64(7);
        let mut saw_beyond_u64 = false;
        for _ in 0..64 {
            let k = wide_rng.geometric_wide(p);
            assert!(k < u128::MAX, "draw saturated the wide sampler");
            if k > u64::MAX as u128 {
                saw_beyond_u64 = true;
            }
        }
        assert!(saw_beyond_u64, "no draw exceeded u64::MAX at p = 1e-30");
        // The narrow sampler consumes the same stream and saturates
        // instead of wrapping.
        let mut wide_rng = Xoshiro256::seed_from_u64(7);
        let mut narrow_rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..64 {
            let k = wide_rng.geometric_wide(p);
            let expect = if k >= u64::MAX as u128 {
                u64::MAX
            } else {
                k as u64
            };
            assert_eq!(narrow_rng.geometric(p), expect);
        }
    }

    #[test]
    fn neg_binomial_wide_sums_past_u64() {
        // Small-k branch: 16 geometric draws each ≈ 1e30 sum well past
        // u64::MAX but nowhere near u128::MAX.
        let p = 1e-30;
        let mut rng = Xoshiro256::seed_from_u64(31);
        let x = rng.neg_binomial_wide(16, p);
        assert!(x > u64::MAX as u128);
        assert!(x < u128::MAX);
        let mut check = Xoshiro256::seed_from_u64(31);
        let sum = (0..16).fold(0u128, |acc, _| acc + check.geometric_wide(p));
        assert_eq!(x, sum);
        // The narrow variant saturates on the same stream.
        let mut narrow = Xoshiro256::seed_from_u64(31);
        assert_eq!(narrow.neg_binomial(16, p), u64::MAX);
    }

    #[test]
    fn geometric_certain_success_is_zero() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        assert_eq!(rng.geometric(1.0), 0);
        assert_eq!(rng.geometric(2.0), 0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        let n = 100_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.gaussian();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn poisson_mean_small_and_large_lambda() {
        let mut rng = Xoshiro256::seed_from_u64(22);
        for &lambda in &[0.5, 4.0, 25.0, 200.0] {
            let n = 20_000;
            let mean: f64 =
                (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05 + 0.05,
                "λ={lambda}: mean {mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn binomial_mean_all_regimes() {
        let mut rng = Xoshiro256::seed_from_u64(23);
        // (n, p) covering exact, Poisson-tail, normal and symmetry paths.
        for &(n, p) in &[(10u64, 0.3), (1000, 0.001), (1000, 0.4), (1000, 0.9)] {
            let trials = 20_000;
            let mut total = 0u64;
            for _ in 0..trials {
                let k = rng.binomial(n, p);
                assert!(k <= n);
                total += k;
            }
            let mean = total as f64 / trials as f64;
            let expected = n as f64 * p;
            assert!(
                (mean - expected).abs() < (expected.max(1.0)) * 0.05 + 0.1,
                "n={n} p={p}: mean {mean} vs {expected}"
            );
        }
        assert_eq!(rng.binomial(100, 0.0), 0);
        assert_eq!(rng.binomial(100, 1.0), 100);
    }

    #[test]
    fn neg_binomial_mean_matches_geometric_sum() {
        let mut rng = Xoshiro256::seed_from_u64(24);
        for &(k, p) in &[(4u64, 0.2), (100, 0.05), (1000, 0.5)] {
            let trials = 5_000;
            let mean: f64 = (0..trials)
                .map(|_| rng.neg_binomial(k, p) as f64)
                .sum::<f64>()
                / trials as f64;
            let expected = k as f64 * (1.0 - p) / p;
            assert!(
                (mean - expected).abs() < expected * 0.08 + 0.5,
                "k={k} p={p}: mean {mean} vs {expected}"
            );
        }
        assert_eq!(rng.neg_binomial(0, 0.3), 0);
        assert_eq!(rng.neg_binomial(5, 1.0), 0);
    }

    #[test]
    fn sample_distinct_both_regimes() {
        let mut rng = Xoshiro256::seed_from_u64(19);
        for &(n, k) in &[(10usize, 10usize), (10, 3), (1000, 5), (1000, 900)] {
            let s = rng.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "values must be distinct");
            assert!(s.iter().all(|&v| v < n));
        }
    }

    #[test]
    fn derive_seed_spreads() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|i| derive_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(23);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
