//! Shared exact-mode productive-pair sampling for the jump and count
//! engines.
//!
//! Both engines sample the next productive ordered state pair from the
//! same decomposition (equal-rank weight + extra–extra weight + rank–extra
//! cross weight) with the same RNG draw order. Keeping the sampling in one
//! place makes the "jump and count are trace-identical per seed" guarantee
//! structural instead of a convention two copies must uphold by hand.

use crate::fenwick::Fenwick;
use crate::protocol::{ExtraRankCross, State};
use crate::rng::Xoshiro256;

/// Weighted-index structures that can answer prefix-order sampling
/// queries ([`Fenwick`] and [`crate::count::WeightTree`] are
/// interchangeable draw-for-draw).
pub(crate) trait EqWeights {
    /// Sum of all weights.
    fn eq_total(&self) -> u64;
    /// Slot containing offset `target` in prefix-sum order.
    fn eq_sample(&self, target: u64) -> usize;
}

impl EqWeights for Fenwick {
    fn eq_total(&self) -> u64 {
        self.total()
    }
    fn eq_sample(&self, target: u64) -> usize {
        self.sample(target)
    }
}

impl EqWeights for crate::count::WeightTree {
    fn eq_total(&self) -> u64 {
        self.total()
    }
    fn eq_sample(&self, target: u64) -> usize {
        self.sample(target)
    }
}

/// The configuration slices the sampler needs, borrowed from an engine.
pub(crate) struct PairClasses<'a> {
    pub counts: &'a [u32],
    pub num_ranks: usize,
    pub rank_agents: u64,
    pub extra_agents: u64,
    pub cross: ExtraRankCross,
    pub xx_all: bool,
}

impl PairClasses<'_> {
    /// Weight of all productive extra–extra ordered pairs.
    #[inline]
    pub(crate) fn xx_weight(&self) -> u64 {
        if self.xx_all {
            self.extra_agents * self.extra_agents.saturating_sub(1)
        } else {
            0
        }
    }

    /// Weight of all productive rank–extra ordered pairs.
    #[inline]
    pub(crate) fn cross_weight(&self) -> u64 {
        match self.cross {
            ExtraRankCross::None => 0,
            ExtraRankCross::RankInitiatorOnly => self.rank_agents * self.extra_agents,
            ExtraRankCross::Symmetric => 2 * self.rank_agents * self.extra_agents,
        }
    }

    /// Sample the `idx`-th extra agent (0-based over all agents in extra
    /// states, grouped by state id) and return its state.
    fn extra_state_at(&self, mut idx: u64, skip_one_of: Option<State>) -> State {
        for s in self.num_ranks..self.counts.len() {
            let mut c = self.counts[s] as u64;
            if skip_one_of == Some(s as State) {
                c -= 1;
            }
            if idx < c {
                return s as State;
            }
            idx -= c;
        }
        unreachable!("extra agent index out of range");
    }
}

/// Draw one productive ordered state pair with exactly one `below(w)` RNG
/// draw, `w = w_eq + w_xx + w_cross` (which the caller has verified to be
/// positive).
pub(crate) fn sample_pair<W: EqWeights>(
    classes: &PairClasses<'_>,
    eq: &W,
    rank_occ: &Fenwick,
    rng: &mut Xoshiro256,
) -> (State, State) {
    let w_eq = eq.eq_total();
    let w_xx = classes.xx_weight();
    let w_cross = classes.cross_weight();
    let mut u = rng.below(w_eq + w_xx + w_cross);
    if u < w_eq {
        let s = eq.eq_sample(u) as State;
        (s, s)
    } else if u < w_eq + w_xx {
        u -= w_eq;
        let e = classes.extra_agents;
        let a = u / (e - 1);
        let b = u % (e - 1);
        let s1 = classes.extra_state_at(a, None);
        let s2 = classes.extra_state_at(b, Some(s1));
        (s1, s2)
    } else {
        u -= w_eq + w_xx;
        let re = classes.rank_agents * classes.extra_agents;
        let (extra_initiates, rem) = match classes.cross {
            ExtraRankCross::RankInitiatorOnly => (false, u),
            ExtraRankCross::Symmetric => (u >= re, u % re),
            ExtraRankCross::None => unreachable!(),
        };
        let rank_idx = rem / classes.extra_agents;
        let extra_idx = rem % classes.extra_agents;
        let rank_state = rank_occ.sample(rank_idx) as State;
        let extra_state = classes.extra_state_at(extra_idx, None);
        if extra_initiates {
            (extra_state, rank_state)
        } else {
            (rank_state, extra_state)
        }
    }
}
