//! Count-based batched simulation: `O(#states)` memory, amortised
//! sub-interaction stepping.
//!
//! Every protocol in this workspace is *anonymous*: the transition function
//! sees states, never agent identities, so the Markov chain is fully
//! determined by the per-state occupancy vector. [`CountSimulation`]
//! exploits this twice:
//!
//! 1. **Exact mode** — the same embedded jump chain as
//!    [`JumpSimulation`](crate::jump::JumpSimulation): sample a productive
//!    ordered state pair proportionally to its weight, apply the rewrite to
//!    the counts, and account for the skipped null interactions with a
//!    geometric draw. Given the same seed, the exact mode consumes the RNG
//!    draw-for-draw identically to the jump simulator and therefore walks
//!    the *identical* trajectory (the cross-engine test suite asserts
//!    this).
//! 2. **Batch mode** — far from silence, consecutive productive steps are
//!    *statistically exchangeable*: with the class weights frozen, a batch
//!    of `B` steps splits multinomially first across the declared
//!    [`InteractionSchema`] classes, then within each class:
//!
//!    * **equal-rank** — per-state weights `c_s(c_s − 1)` split by
//!      recursive **binomial splitting** down a complete binary weight
//!      tree in `O(occupied)` binomial draws (the classic trick from
//!      batched population-protocol simulation, cf. Berenbrink et al.);
//!    * **extra–extra** — hierarchical split over ordered extra-state
//!      pairs (`O(occupied extras²)` conditional binomials — extra spaces
//!      are small by design, `O(log n)` for the tree protocol);
//!    * **rank–extra cross** — direction, then extra state, then a
//!      binomial split **across the rank population** via the occupancy
//!      tree (this is the hypergeometric-style two-population split that
//!      lets the line/tree reset phases batch);
//!    * **sparse pairs** — a two-level split through the per-initiator
//!      group hierarchy (see the sparse section of
//!      [`classes`](crate::classes)): the batch's sparse share is first
//!      chain-split across the occupied groups under the coordinator
//!      stream, then each group's pair tree splits its own share as an
//!      independent task. Draw-for-draw this equals one flat split over
//!      all pairs, but the per-group tasks parallelise.
//!
//!    All `B` null gaps are accounted at once with a single
//!    negative-binomial draw. Weights are frozen for the duration of one
//!    batch; the batch size is capped so no class weight can drift by more
//!    than ~25% within a batch (see [`CountSimulation::advance_chain`]),
//!    which keeps the stabilisation-time distribution statistically
//!    indistinguishable from the exact chain (KS-tested in
//!    `tests/cross_simulator.rs`). For the sparse class the cap is
//!    **per-pair relative**: the batch size is bounded by the incremental
//!    drift scales so each pair (a,b)'s expected draws stay under
//!    `min(c_a, c_b)/8` and each state's gross sparse drain under
//!    `c_s/4` — replacing the old class-global `2·partner-sum` rein that
//!    was ~4× tighter and recomputed from scratch every batch. Sparse
//!    eligibility likewise counts only *positive-weight* pairs, so a
//!    large declared-but-dormant rule set (τ² pairs with a handful
//!    occupied, the loose-leader-election shape) no longer forces exact
//!    stepping.
//!
//! Batch mode engages whenever every positive-weight class is declared
//! exchangeable and the safe batch size is large enough to pay for the
//! split overhead; otherwise the engine falls back to exact stepping for
//! that step. Correctness near silence is therefore always the exact jump
//! chain.
//!
//! ## Parallel per-class splits on a persistent worker pool
//!
//! Within one batch the per-class splits are conditionally independent
//! given the class totals, so they can run on separate threads. The batch
//! draws one `batch_seed` from the main RNG, plans a deterministic list of
//! *split tasks* (equal-rank subtrees, the extra–extra split, one task per
//! cross (direction, extra-state) slice — large slices pre-partitioned
//! down the occupancy tree — and one task per occupied sparse group)
//! using a coordinator stream derived from it, and then executes every
//! task under its own
//! `derive_seed(batch_seed, task)`-derived stream. Results are merged in
//! task order, so a run is **bit-identical for a fixed seed regardless of
//! the thread count** (including one) — see
//! [`CountSimulation::with_threads`].
//!
//! The worker threads are spawned **once per engine** (in `with_threads`)
//! and parked on std mpsc channels between batches, not re-spawned per
//! batch. Each eligible batch moves the frozen weight state and the task
//! list into a shared, reference-counted job, wakes the workers with one
//! channel send each, joins them through a done channel, and recovers the
//! state by unwrapping the job — no `unsafe`, no external crates, and the
//! per-batch dispatch cost is a few channel operations instead of a
//! thread spawn. That lowers the draws threshold at which parallelism
//! pays (see `POOL_MIN_DRAWS_PER_WORKER`).
//!
//! # Examples
//!
//! ```
//! use ssr_engine::count::CountSimulation;
//! use ssr_engine::protocol::{ClassSpec, InteractionSchema, Protocol, State};
//!
//! struct Ag { n: usize }
//! impl Protocol for Ag {
//!     fn name(&self) -> &str { "A_G" }
//!     fn population_size(&self) -> usize { self.n }
//!     fn num_states(&self) -> usize { self.n }
//!     fn num_rank_states(&self) -> usize { self.n }
//!     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
//!         (i == r).then(|| (i, (r + 1) % self.n as State))
//!     }
//! }
//! impl InteractionSchema for Ag {
//!     fn interaction_classes(&self) -> Vec<ClassSpec> {
//!         vec![ClassSpec::equal_rank()]
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = Ag { n: 10_000 };
//! let mut sim = CountSimulation::new(&p, vec![0; 10_000], 42)?;
//! let report = sim.run_until_silent(u64::MAX)?;
//! assert!(sim.is_silent());
//! assert!(report.productive_interactions >= 9_999);
//! # Ok(())
//! # }
//! ```
//!
//! [`InteractionSchema`]: crate::protocol::InteractionSchema

use crate::classes::{chain_split, ClassState};
use crate::engine::{ByzOverlay, CappedAdvance, CountObserver};
use crate::error::{ConfigError, StabilisationTimeout};
use crate::init;
use crate::protocol::{CrossDirection, InteractionSchema, State};
use crate::rng::{derive_seed, Xoshiro256};
use crate::sim::StabilisationReport;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

pub use crate::classes::WeightTree;

/// Below this safe batch size, batching cannot pay for its overhead and
/// the engine steps exactly. Classes with per-batch split overhead beyond
/// `O(occupied)` (extra–extra, cross, sparse) raise the effective
/// threshold to their overhead so a batch always amortises it.
const MIN_BATCH: u64 = 64;

/// After the safe batch size drops below the threshold, stay in exact
/// mode for this many steps before re-checking — the productive weight
/// changes by O(drift scale) per step, so eligibility cannot swing back
/// instantly, and checking per step would tax the exact hot loop.
const EXACT_RECHECK_INTERVAL: u32 = 32;

/// Re-derive the exact maximum productive equal-rank occupancy every this
/// many batches (between refreshes the tracked bound is a safe
/// over-estimate).
const MAX_REFRESH_INTERVAL: u32 = 32;

/// Target draws per split task when pre-partitioning a class's weight
/// tree. Applied with *any* thread count (including one), so the
/// trajectory never depends on how many workers execute the tasks.
const PARTITION_TASK_DRAWS: u64 = 4096;

/// Batches below this many draws **per participating thread** run their
/// tasks on the calling thread. The threshold adapts to the thread count:
/// with the persistent pool a dispatch costs a few channel operations and
/// a worker wake-up (microseconds), far below the old per-batch
/// `thread::scope` spawn tax, so parallelism pays off at roughly a
/// quarter of the former fixed 8192-draw floor. Affects wall-clock only —
/// the trajectory is identical either way.
const POOL_MIN_DRAWS_PER_WORKER: u64 = 1024;

/// One coalesced group of identical rewrites applied by a batch step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchGroup {
    before: (State, State),
    after: (State, State),
    applied: u64,
}

/// A coalesced rewrite key with its multiplicity — the output unit of the
/// split phase.
type KeyGroup = ((State, State), u64);

/// One independently executable unit of a batch's split work. Tasks are
/// planned deterministically from the frozen [`ClassState`] and a
/// coordinator RNG stream; each one is executed against the same frozen
/// state under its own derived RNG stream, on whichever worker thread
/// picks it up.
#[derive(Debug, Clone, Copy)]
enum SplitTask {
    /// Split `k` equal-rank draws below `node` of the eq block tree.
    Eq { node: usize, k: u64 },
    /// The whole extra–extra hierarchical split (extra spaces are small
    /// by design, so this is never worth subdividing).
    Xx { k: u64 },
    /// One (direction, extra-state) slice of the cross class: split its
    /// `k` draws across the rank population below `node` of the
    /// occupancy tree.
    Cross {
        node: usize,
        extra: State,
        extra_initiates: bool,
        k: u64,
    },
    /// Split `k` sparse draws within one initiator group's pair tree.
    Sparse { group: u32, k: u64 },
}

/// Plan the deterministic split-task list for one batch: the per-class
/// draw counts are fanned out into subtree tasks using `coord` (the
/// coordinator stream derived from the batch seed). Task order is fixed —
/// equal-rank, extra–extra, cross (rank-initiated then extra-initiated,
/// extras ascending), sparse — so the merged output order never depends
/// on scheduling.
fn plan_tasks(
    state: &ClassState,
    ks: [u64; 4],
    coord: &mut Xoshiro256,
    tasks: &mut Vec<SplitTask>,
) {
    let [k_eq, k_xx, k_cross, k_sparse] = ks;
    let mut parts: Vec<(usize, u64)> = Vec::new();
    if k_eq > 0 {
        state.eq.partition(k_eq, PARTITION_TASK_DRAWS, coord, &mut parts);
        tasks.extend(parts.iter().map(|&(node, k)| SplitTask::Eq { node, k }));
    }
    if k_xx > 0 {
        tasks.push(SplitTask::Xx { k: k_xx });
    }
    if k_cross > 0 {
        let dir = state.schema.cross.expect("cross weight without class");
        let (k_rank_init, k_extra_init) = match dir {
            CrossDirection::RankInitiator => (k_cross, 0),
            CrossDirection::ExtraInitiator => (0, k_cross),
            CrossDirection::Both => {
                let k = coord.binomial(k_cross, 0.5);
                (k, k_cross - k)
            }
        };
        let num_ranks = state.num_ranks;
        let num_states = state.counts.len();
        let e_total = state.extra_agents;
        let mut extras: Vec<(State, u64)> = Vec::new();
        for (k_dir, extra_initiates) in [(k_rank_init, false), (k_extra_init, true)] {
            if k_dir == 0 {
                continue;
            }
            extras.clear();
            chain_split(
                coord,
                k_dir,
                e_total,
                (num_ranks..num_states).map(|s| (s as State, state.counts[s] as u64)),
                &mut extras,
            );
            for &(extra, k_e) in &extras {
                parts.clear();
                state
                    .rank_occ
                    .partition(k_e, PARTITION_TASK_DRAWS, coord, &mut parts);
                tasks.extend(parts.iter().map(|&(node, k)| SplitTask::Cross {
                    node,
                    extra,
                    extra_initiates,
                    k,
                }));
            }
        }
    }
    if k_sparse > 0 {
        // Fan the sparse draws out across initiator groups with chained
        // conditional binomials in ascending group order (deterministic
        // under `coord`), one task per group that received draws — the
        // per-group pair trees are disjoint, so the tasks are independent.
        let sp = &state.sparse;
        let mut groups: Vec<(u32, u64)> = Vec::new();
        chain_split(
            coord,
            k_sparse,
            sp.total(),
            (0..sp.num_groups()).map(|g| (g as u32, sp.group_total(g))),
            &mut groups,
        );
        tasks.extend(groups.iter().map(|&(group, k)| SplitTask::Sparse { group, k }));
    }
}

/// Execute one split task against the frozen state, appending its
/// coalesced rewrite keys. `split` is caller-provided scratch (cleared
/// here) so the serial path and each worker reuse one allocation across
/// tasks.
fn run_split_task(
    state: &ClassState,
    task: &SplitTask,
    rng: &mut Xoshiro256,
    split: &mut Vec<(usize, u64)>,
    out: &mut Vec<KeyGroup>,
) {
    split.clear();
    match *task {
        SplitTask::Eq { node, k } => {
            state
                .eq
                .split_node(node, k, rng, &|s| state.eq_leaf(s), split);
            out.extend(split.iter().map(|&(s, k)| ((s as State, s as State), k)));
        }
        SplitTask::Xx { k } => {
            // Hierarchical split — initiator extra state (weight c·(E−1),
            // i.e. ∝ c), then responder extra state (weight c minus one
            // when sharing the initiator's state).
            let num_ranks = state.num_ranks;
            let num_states = state.counts.len();
            let e_total = state.extra_agents;
            let mut initiators: Vec<(State, u64)> = Vec::new();
            chain_split(
                rng,
                k,
                e_total,
                (num_ranks..num_states).map(|s| (s as State, state.counts[s] as u64)),
                &mut initiators,
            );
            let mut responders: Vec<(State, u64)> = Vec::new();
            for &(e1, k1) in &initiators {
                responders.clear();
                chain_split(
                    rng,
                    k1,
                    e_total - 1,
                    (num_ranks..num_states).map(|s| {
                        let c = state.counts[s] as u64;
                        (s as State, if s == e1 as usize { c - 1 } else { c })
                    }),
                    &mut responders,
                );
                out.extend(responders.iter().map(|&(e2, k2)| ((e1, e2), k2)));
            }
        }
        SplitTask::Cross {
            node,
            extra,
            extra_initiates,
            k,
        } => {
            state
                .rank_occ
                .split_node(node, k, rng, &|s| state.rank_leaf(s), split);
            out.extend(split.iter().map(|&(r, k_re)| {
                let r = r as State;
                (
                    if extra_initiates { (extra, r) } else { (r, extra) },
                    k_re,
                )
            }));
        }
        SplitTask::Sparse { group, k } => {
            let base = state.schema.group_off[group as usize] as usize;
            state.sparse.split_group(group as usize, k, rng, split);
            out.extend(
                split
                    .iter()
                    .map(|&(pi, k)| (state.schema.pairs[base + pi], k)),
            );
        }
    }
}

/// One batch's shared job: the frozen weight state, the planned task
/// list, a work-stealing cursor, and one output slot per task. Ownership
/// of the state travels with the job — the engine moves it in, every
/// participating thread runs tasks against it through the `Arc`, and the
/// engine unwraps the `Arc` to move it back out. This is what lets
/// long-lived (`'static`) pool workers borrow per-batch data without
/// `unsafe`.
struct BatchJob {
    state: ClassState,
    tasks: Vec<SplitTask>,
    batch_seed: u64,
    next: AtomicUsize,
    slots: Vec<Mutex<Vec<KeyGroup>>>,
}

/// Claim and run tasks off `job` until the cursor is exhausted. Task `i`
/// always draws from `derive_seed(batch_seed, 1 + i)` and writes slot
/// `i`, so outputs are scheduling-independent. Shared by the coordinator
/// thread and every pool worker.
fn run_job_tasks(job: &BatchJob, split: &mut Vec<(usize, u64)>) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.tasks.len() {
            break;
        }
        let mut rng = Xoshiro256::seed_from_u64(derive_seed(job.batch_seed, 1 + i as u64));
        // Recycle the slot's previous-batch allocation.
        let mut buf = std::mem::take(&mut *job.slots[i].lock().expect("slot poisoned"));
        buf.clear();
        run_split_task(&job.state, &job.tasks[i], &mut rng, split, &mut buf);
        *job.slots[i].lock().expect("slot poisoned") = buf;
    }
}

/// Signals batch completion to the coordinator when dropped — even if the
/// worker panics mid-task, so the coordinator never deadlocks waiting for
/// a dead worker. Releases the worker's handle on the shared job *before*
/// signalling, so once the coordinator has collected every signal it
/// holds the only reference and can unwrap the `Arc`.
struct JobGuard<'a> {
    job: Option<Arc<BatchJob>>,
    done: &'a mpsc::Sender<bool>,
    ok: bool,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        self.job = None;
        let _ = self.done.send(self.ok);
    }
}

/// Body of one persistent pool worker: park on the job channel, run tasks
/// from each job that arrives, signal completion. Exits when the engine
/// (and with it the sender) is dropped.
fn worker_loop(rx: mpsc::Receiver<Arc<BatchJob>>, done: mpsc::Sender<bool>) {
    let mut split: Vec<(usize, u64)> = Vec::new();
    while let Ok(job) = rx.recv() {
        let mut guard = JobGuard {
            job: Some(job),
            done: &done,
            ok: false,
        };
        run_job_tasks(guard.job.as_ref().expect("job just stored"), &mut split);
        guard.ok = true;
    }
}

/// A persistent pool of parked split workers, created once per engine by
/// [`CountSimulation::with_threads`] and reused for every eligible batch
/// (it survives snapshot restores). Pure std: mpsc channels for dispatch
/// and completion, no `unsafe`, no busy-waiting — idle workers block in
/// `recv`.
struct WorkerPool {
    /// One dispatch channel per worker.
    senders: Vec<mpsc::Sender<Arc<BatchJob>>>,
    /// Completion signals (`true` = worker finished its share cleanly).
    done_rx: mpsc::Receiver<bool>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Recycled per-task output slots (kept across batches so slot `Vec`s
    /// amortise their allocations).
    slots_scratch: Vec<Mutex<Vec<KeyGroup>>>,
}

impl WorkerPool {
    /// Spawn `helpers` parked worker threads (the coordinator thread also
    /// runs tasks, so an engine with `threads = t` builds a pool of
    /// `t − 1` helpers).
    fn new(helpers: usize) -> Self {
        let (done_tx, done_rx) = mpsc::channel();
        let mut senders = Vec::with_capacity(helpers);
        let mut handles = Vec::with_capacity(helpers);
        for _ in 0..helpers {
            let (tx, rx) = mpsc::channel::<Arc<BatchJob>>();
            let done = done_tx.clone();
            handles.push(std::thread::spawn(move || worker_loop(rx, done)));
            senders.push(tx);
        }
        WorkerPool {
            senders,
            done_rx,
            handles,
            slots_scratch: Vec::new(),
        }
    }

    /// Helper workers in the pool (total parallelism is one more: the
    /// coordinator participates).
    fn helpers(&self) -> usize {
        self.senders.len()
    }

    /// Run `tasks` against `state` on the pool plus the calling thread and
    /// append the outputs to `out` in task order. `state` and `tasks` are
    /// moved into the shared job for the duration and moved back out
    /// before returning.
    ///
    /// # Panics
    ///
    /// Panics if any worker panicked while running a split task.
    fn execute(
        &mut self,
        state: &mut ClassState,
        tasks: &mut Vec<SplitTask>,
        batch_seed: u64,
        split: &mut Vec<(usize, u64)>,
        out: &mut Vec<KeyGroup>,
    ) {
        let mut slots = std::mem::take(&mut self.slots_scratch);
        if slots.len() > tasks.len() {
            slots.truncate(tasks.len());
        } else {
            slots.resize_with(tasks.len(), || Mutex::new(Vec::new()));
        }
        let job = Arc::new(BatchJob {
            state: std::mem::replace(state, ClassState::placeholder()),
            tasks: std::mem::take(tasks),
            batch_seed,
            next: AtomicUsize::new(0),
            slots,
        });
        let mut dispatched = 0usize;
        for tx in &self.senders {
            if tx.send(Arc::clone(&job)).is_ok() {
                dispatched += 1;
            }
        }
        run_job_tasks(&job, split);
        let mut ok = true;
        for _ in 0..dispatched {
            ok &= self.done_rx.recv().unwrap_or(false);
        }
        // Every worker released its handle before signalling, so the
        // coordinator now holds the only reference.
        let job = Arc::try_unwrap(job)
            .unwrap_or_else(|_| panic!("a worker still holds the batch job"));
        *state = job.state;
        *tasks = job.tasks;
        let mut slots = job.slots;
        assert!(ok, "split worker panicked");
        for slot in &mut slots {
            out.append(slot.get_mut().expect("slot poisoned"));
        }
        self.slots_scratch = slots;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the dispatch channels wakes every parked worker into a
        // clean exit; then reap the threads.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Run every task — serially, or on the persistent pool when one exists
/// and the batch is big enough for the dispatch to pay — and merge the
/// outputs in task order. Task `i` always draws from the stream
/// `derive_seed(batch_seed, 1 + i)`, so the merged keys are identical for
/// every thread count.
fn execute_tasks(
    state: &mut ClassState,
    tasks: &mut Vec<SplitTask>,
    batch_seed: u64,
    pool: Option<&mut WorkerPool>,
    b: u64,
    split_scratch: &mut Vec<(usize, u64)>,
    out: &mut Vec<KeyGroup>,
) {
    if let Some(pool) = pool {
        let engaged = (pool.helpers() + 1).min(tasks.len());
        if engaged > 1 && b >= POOL_MIN_DRAWS_PER_WORKER * engaged as u64 {
            pool.execute(state, tasks, batch_seed, split_scratch, out);
            return;
        }
    }
    for (i, task) in tasks.iter().enumerate() {
        let mut rng = Xoshiro256::seed_from_u64(derive_seed(batch_seed, 1 + i as u64));
        run_split_task(state, task, &mut rng, split_scratch, out);
    }
}

/// Count-based simulation with far-from-silence batching.
///
/// Memory is `O(#states)` — there is no agent vector — so populations of
/// `n = 10⁷…10⁹` fit comfortably as long as the protocol's state space
/// does.
pub struct CountSimulation<'a, P: InteractionSchema + ?Sized> {
    protocol: &'a P,
    state: ClassState,
    /// Interaction clock, `u128` so populations beyond `n = 2³⁰` cannot
    /// wrap it: total interactions to silence grow like `n² log n / W`
    /// draws and pass `u64::MAX ≈ 1.8·10¹⁹` around `n = 2³¹`.
    interactions: u128,
    productive: u64,
    ordered_pairs: u128,
    rng: Xoshiro256,
    batching: bool,
    batches_since_refresh: u32,
    /// Exact steps to take before re-checking batch eligibility (0 =
    /// check now); keeps the check off the exact-mode hot path.
    exact_steps_until_recheck: u32,
    /// Worker threads for batch splits (1 = everything on the calling
    /// thread). Never affects the trajectory, only wall-clock.
    threads: usize,
    /// Persistent parked workers backing `threads > 1`; created once in
    /// [`with_threads`](Self::with_threads) and reused for every eligible
    /// batch (and across snapshot restores).
    pool: Option<WorkerPool>,
    task_scratch: Vec<SplitTask>,
    split_scratch: Vec<(usize, u64)>,
    key_scratch: Vec<KeyGroup>,
    group_scratch: Vec<BatchGroup>,
    /// Byzantine/stuck-at occupancy overlay; `None` when inactive. When
    /// active, exact steps veto stuck participants' rewrites and batch
    /// groups are binomially thinned into update/no-update subgroups —
    /// both paths maintain `counts[s] ≥ byz[s]`.
    byz: Option<ByzOverlay>,
}

impl<'a, P: InteractionSchema + ?Sized> CountSimulation<'a, P> {
    /// Start from an explicit configuration, with batching enabled.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on population or state-range mismatch.
    pub fn new(protocol: &'a P, config: Vec<State>, seed: u64) -> Result<Self, ConfigError> {
        let n = protocol.population_size();
        if config.len() != n {
            return Err(ConfigError::WrongPopulation {
                expected: n,
                got: config.len(),
            });
        }
        init::validate(&config, protocol.num_states())?;
        Self::from_counts(protocol, init::counts(&config, protocol.num_states()), seed)
    }

    /// Start from per-state occupancy counts (must sum to the population),
    /// with batching enabled.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::WrongPopulation`] if counts do not sum to
    /// `n` or the counts vector length differs from the state-space size.
    pub fn from_counts(
        protocol: &'a P,
        counts: Vec<u32>,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        let n = protocol.population_size();
        let state = ClassState::new(protocol, counts)?;
        Ok(CountSimulation {
            protocol,
            state,
            interactions: 0,
            productive: 0,
            ordered_pairs: (n as u128) * (n as u128).saturating_sub(1),
            rng: Xoshiro256::seed_from_u64(seed),
            batching: true,
            batches_since_refresh: 0,
            exact_steps_until_recheck: 0,
            threads: 1,
            pool: None,
            task_scratch: Vec::new(),
            split_scratch: Vec::new(),
            key_scratch: Vec::new(),
            group_scratch: Vec::new(),
            byz: None,
        })
    }

    /// Enable or disable batch mode. With batching off the engine consumes
    /// its RNG draw-for-draw identically to
    /// [`JumpSimulation`](crate::jump::JumpSimulation) and reproduces the
    /// exact same trajectory per seed.
    pub fn with_batching(mut self, batching: bool) -> Self {
        self.batching = batching;
        self
    }

    /// Whether batch mode is enabled.
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// Set the number of worker threads for batch splits (0 = one per
    /// available core, 1 = serial, the default).
    ///
    /// For `threads > 1` this spawns a **persistent pool** of
    /// `threads − 1` parked workers that lives as long as the engine; the
    /// calling thread coordinates and runs tasks too. Each batch's
    /// per-class split work is pre-partitioned into tasks with their own
    /// seed-derived RNG streams and merged in task order, so for a fixed
    /// seed the trajectory is **bit-identical regardless of the thread
    /// count** — threads buy wall-clock, never change results.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let helpers = self.threads - 1;
        let rebuild = self.pool.as_ref().map(WorkerPool::helpers) != Some(helpers);
        if rebuild {
            self.pool = (helpers > 0).then(|| WorkerPool::new(helpers));
        }
        self
    }

    /// Worker threads used for batch splits.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current per-state occupancy counts.
    pub fn counts(&self) -> &[u32] {
        &self.state.counts
    }

    /// Total interactions simulated (nulls included, exact in
    /// distribution), saturating at `u64::MAX`. The internal clock is
    /// `u128` (see [`interactions_wide`](Self::interactions_wide)):
    /// beyond `n ≈ 2³¹` a full run exceeds `u64::MAX` total interactions.
    pub fn interactions(&self) -> u64 {
        // lint:allow(A001): documented saturating u64 API boundary —
        // the exact clock is `interactions_wide()`.
        self.interactions.min(u64::MAX as u128) as u64
    }

    /// Total interactions simulated, full-width.
    pub fn interactions_wide(&self) -> u128 {
        self.interactions
    }

    /// Productive interactions executed.
    pub fn productive_interactions(&self) -> u64 {
        self.productive
    }

    /// Parallel time elapsed: interactions / n (computed from the
    /// full-width clock, so it stays exact past `u64::MAX` interactions).
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.protocol.population_size() as f64
    }

    /// Number of productive ordered pairs in the current configuration.
    pub fn productive_pairs(&self) -> u64 {
        self.state.productive_pairs()
    }

    /// Silent iff no ordered pair is productive.
    pub fn is_silent(&self) -> bool {
        self.productive_pairs() == 0
    }

    /// Execute one productive interaction (plus the geometric number of
    /// preceding nulls), exactly as the jump simulator would — the
    /// sampling logic is literally shared
    /// ([`ClassState::sample_pair`](crate::classes::ClassState)), so
    /// identical RNG consumption and identical trajectories per seed are
    /// structural. Returns the ordered state pair rewritten, or `None` if
    /// the configuration is silent.
    pub fn step_productive(&mut self) -> Option<((State, State), (State, State))> {
        let w = self.state.productive_pairs();
        if w == 0 {
            return None;
        }
        debug_assert!(w as u128 <= self.ordered_pairs);
        let p = w as f64 / self.ordered_pairs as f64;
        // Near silence at n ≥ 2³¹ the geometric mean n(n−1)/w exceeds
        // u64::MAX, so the draw and the +1 must both happen at u128 width.
        self.interactions = self
            .interactions
            .saturating_add(self.rng.geometric_wide(p))
            .saturating_add(1);
        self.productive += 1;
        Some(self.sample_and_apply())
    }

    /// Sample the productive pair for an already-scheduled chain event,
    /// apply the transition (subject to Byzantine vetoes) and return the
    /// rewrite. Mirrors the jump engine's helper draw-for-draw so the two
    /// engines stay trace-identical in exact mode.
    fn sample_and_apply(&mut self) -> ((State, State), (State, State)) {
        let (si, sr) = self.state.sample_pair(&mut self.rng);
        let (mut si2, mut sr2) = self.protocol.transition(si, sr).unwrap_or_else(|| {
            panic!(
                "schema declared ({si},{sr}) productive but transition \
                 returned None (protocol contract violation)"
            )
        });
        match &self.byz {
            Some(byz) => {
                let (veto_i, veto_r) = byz.veto(&mut self.rng, &self.state.counts, si, sr);
                if veto_i {
                    si2 = si;
                }
                if veto_r {
                    sr2 = sr;
                }
            }
            None => {
                debug_assert!(si2 != si || sr2 != sr, "identity rewrite for ({si},{sr})");
            }
        }
        if si != si2 {
            self.state.update_count(si, -1);
            self.state.update_count(si2, 1);
        }
        if sr != sr2 {
            self.state.update_count(sr, -1);
            self.state.update_count(sr2, 1);
        }
        ((si, sr), (si2, sr2))
    }

    /// Drift scale and amortisation threshold of the current
    /// configuration, or `None` when some positive-weight class is not
    /// exchangeable. The safe batch size is `W / (8·scale)`: each class
    /// weight then drifts by at most ~25% within a batch.
    fn batch_params(&self, weights: [u64; 4]) -> Option<(u64, u64)> {
        let [w_eq, w_xx, w_cross, w_sparse] = weights;
        let schema = &self.state.schema;
        if (w_eq > 0 && !schema.eq_exchangeable)
            || (w_xx > 0 && !schema.xx_exchangeable)
            || (w_cross > 0 && !schema.cross_exchangeable)
            || (w_sparse > 0 && !schema.pairs_exchangeable)
        {
            return None;
        }
        let mut scale = 1u64;
        let mut threshold = MIN_BATCH;
        if w_eq > 0 {
            // Per-state expected draws capped at (c_s − 1)/8.
            scale = scale.max(self.state.max_eq_bound);
        }
        if w_xx > 0 || w_cross > 0 {
            let (occ_x, _c_max_x) = self.state.extra_occupancy();
            if w_xx > 0 {
                // A draw's two participants are uniform over the extra
                // population, so every extra state's occupancy drifts at
                // the same *relative* rate regardless of its own size:
                // capping expected xx draws at E/32 (scale 4(E−1), since
                // W_xx = E(E−1)) bounds each level's drift at ~6%. The
                // buffer epidemic grows exponentially, which amplifies
                // frozen-weight drift — hence the tighter rein than the
                // equal-rank class.
                scale = scale.max(4 * self.state.extra_agents.saturating_sub(1).max(1));
                threshold = threshold.max((occ_x * occ_x) as u64);
            }
            if w_cross > 0 {
                // W_cross = dirs·R·E: capping expected cross draws at
                // min(R, E)/16 means b ≤ W/(8·2·dirs·max(R, E)). Cross
                // draws feed the same exponential reset epidemic, so they
                // get the same tight rein as extra–extra.
                let dirs = self
                    .state
                    .schema
                    .cross
                    .map_or(1, CrossDirection::multiplier);
                scale = scale.max(2 * dirs * self.state.rank_agents.max(self.state.extra_agents));
                threshold = threshold.max(2 * occ_x as u64);
            }
        }
        if w_sparse > 0 {
            // Per-pair relative caps with a per-state floor, both read
            // off the incrementally-maintained (stale-high) sparse drift
            // bounds: expected draws of pair (a,b) stay under
            // min(c_a, c_b)/8, and no state's expected gross sparse
            // consumption exceeds c_s/4 — see `SparseState::drift_scale`.
            // The amortisation threshold charges only the pairs the split
            // can actually visit, so large declared-but-dormant rule sets
            // (every timer pair of loose leader election, say) no longer
            // price batching out of reach.
            scale = scale.max(self.state.sparse.drift_scale());
            threshold = threshold.max(self.state.sparse.occupied_pairs());
        }
        Some((scale, threshold))
    }

    /// Re-derive every lazily-tracked drift bound that currently matters
    /// (the equal-rank occupancy bound, the sparse partner/pair-scale
    /// bounds) and restart the refresh interval.
    fn refresh_drift_bounds(&mut self, weights: &[u64; 4]) {
        if weights[0] > 0 {
            self.state.refresh_max_eq();
        }
        if weights[3] > 0 {
            self.state.refresh_sparse();
        }
        self.batches_since_refresh = 0;
    }

    /// The safe batch size for the current configuration, or `None` when
    /// a positive-weight class is not exchangeable or the safe size is too
    /// small to pay for itself.
    fn batch_size(&mut self) -> Option<u64> {
        let weights = [
            self.state.eq_weight(),
            self.state.xx_weight(),
            self.state.cross_weight(),
            self.state.sparse_weight(),
        ];
        let w: u64 = weights.iter().sum();
        if w == 0 {
            return None;
        }
        let lazy_bounds = weights[0] > 0 || weights[3] > 0;
        if lazy_bounds && self.batches_since_refresh >= MAX_REFRESH_INTERVAL {
            self.refresh_drift_bounds(&weights);
        }
        let (scale, threshold) = self.batch_params(weights)?;
        let b = w / (8 * scale);
        if b >= threshold {
            return Some(b);
        }
        // The tracked equal-rank and sparse bounds only grow between
        // refreshes, so a stale-high value could disable batching
        // permanently. If a fresh bound could possibly change the verdict,
        // refresh once before giving up (`batches_since_refresh > 0` caps
        // this at one rescue scan per run of batches).
        if lazy_bounds && self.batches_since_refresh > 0 && w / 8 >= threshold {
            self.refresh_drift_bounds(&weights);
            let (scale, threshold) = self.batch_params(weights)?;
            let b = w / (8 * scale);
            if b >= threshold {
                return Some(b);
            }
        }
        None
    }

    /// Decide the next quantum: `Some(b)` = batch of `b`, `None` = one
    /// exact step. Shared by the observed and unobserved run loops so
    /// both consume the RNG identically for a given seed.
    fn decide_batch(&mut self) -> Option<u64> {
        if !self.batching {
            return None;
        }
        if self.exact_steps_until_recheck == 0 {
            if let Some(b) = self.batch_size() {
                return Some(b);
            }
            self.exact_steps_until_recheck = EXACT_RECHECK_INTERVAL;
        }
        self.exact_steps_until_recheck -= 1;
        None
    }

    /// [`decide_batch`](Self::decide_batch) with an absolute clock cap:
    /// the safe batch size is additionally clipped so the batch's expected
    /// clock drift stays well inside the cap (a scheduled fault must not
    /// be overrun by a whole batch). Near the cap the clipped size drops
    /// below [`MIN_BATCH`] and the engine exact-steps the final approach,
    /// where truncation at the cap is exact by memorylessness. A capped
    /// run's recheck-counter evolution can differ from an uncapped run's —
    /// it is still deterministic per seed and thread-count invariant.
    fn decide_batch_capped(&mut self, cap: u128) -> Option<u64> {
        if !self.batching {
            return None;
        }
        if self.exact_steps_until_recheck == 0 {
            if let Some(b) = self.batch_size() {
                let b = self.clip_batch_to_cap(b, cap);
                if b > 0 {
                    return Some(b);
                }
            }
            self.exact_steps_until_recheck = EXACT_RECHECK_INTERVAL;
        }
        self.exact_steps_until_recheck -= 1;
        None
    }

    /// Clip a safe batch size `b` so the batch's expected clock advance
    /// (`b/p` draws) is at most a quarter of the room left before `cap` —
    /// the negative-binomial null tail then crosses the cap only with
    /// vanishing probability. Returns 0 when the clipped batch is too
    /// small to pay for itself (the caller falls back to exact stepping).
    fn clip_batch_to_cap(&self, b: u64, cap: u128) -> u64 {
        if cap == u128::MAX {
            return b;
        }
        let room = cap.saturating_sub(self.interactions);
        let w = self.state.productive_pairs();
        let p = w as f64 / self.ordered_pairs as f64;
        let b_room = (room as f64) * p / 4.0;
        if (b as f64) <= b_room {
            b
        } else if b_room >= MIN_BATCH as f64 {
            b_room as u64
        } else {
            0
        }
    }

    /// Collect the coalesced rewrite keys of one batch of `b` steps, with
    /// all weights frozen at the current configuration, into
    /// `self.key_scratch`. No counts are mutated.
    ///
    /// The main RNG contributes exactly the class-level multinomial draws
    /// plus one `batch_seed`; all split randomness comes from streams
    /// derived from that seed, so the result is invariant under the
    /// thread count (see the module docs).
    fn collect_batch_keys(&mut self, b: u64, weights: [u64; 4]) {
        let [w_eq, w_xx, w_cross, w_sparse] = weights;
        let w = w_eq + w_xx + w_cross + w_sparse;

        // Multinomial split of the batch across the four classes.
        let mut rem = b;
        let mut w_rem = w;
        let mut class_draw = |cls_w: u64, rng: &mut Xoshiro256| -> u64 {
            if cls_w == 0 || rem == 0 {
                w_rem -= cls_w;
                return 0;
            }
            let k = if cls_w >= w_rem {
                rem
            } else {
                rng.binomial(rem, cls_w as f64 / w_rem as f64)
            };
            rem -= k;
            w_rem -= cls_w;
            k
        };
        let k_eq = class_draw(w_eq, &mut self.rng);
        let k_xx = class_draw(w_xx, &mut self.rng);
        let k_cross = class_draw(w_cross, &mut self.rng);
        let k_sparse = class_draw(w_sparse, &mut self.rng);
        debug_assert_eq!(k_eq + k_xx + k_cross + k_sparse, b);

        let batch_seed = self.rng.next_u64();
        let mut coord = Xoshiro256::seed_from_u64(derive_seed(batch_seed, 0));
        let mut tasks = std::mem::take(&mut self.task_scratch);
        tasks.clear();
        plan_tasks(&self.state, [k_eq, k_xx, k_cross, k_sparse], &mut coord, &mut tasks);

        let mut keys = std::mem::take(&mut self.key_scratch);
        keys.clear();
        let mut split = std::mem::take(&mut self.split_scratch);
        execute_tasks(
            &mut self.state,
            &mut tasks,
            batch_seed,
            self.pool.as_mut(),
            b,
            &mut split,
            &mut keys,
        );
        self.task_scratch = tasks;
        self.split_scratch = split;
        self.key_scratch = keys;
    }

    /// Apply one coalesced group of `k` identical `before` rewrites,
    /// clipping `k` so every application finds its participants (the
    /// weights were frozen at batch start, so the tail of a group can
    /// outrun the supply of agents). Returns the group actually applied.
    fn apply_group(&mut self, before: (State, State), k: u64) -> Option<BatchGroup> {
        let (a, b) = before;
        let (a2, b2) = self.protocol.transition(a, b).unwrap_or_else(|| {
            panic!(
                "schema declared ({a},{b}) productive but transition \
                 returned None (protocol contract violation)"
            )
        });
        debug_assert!(a2 != a || b2 != b, "identity rewrite for ({a},{b})");
        self.apply_group_to(before, (a2, b2), k, false)
    }

    /// Apply `k` identical `before → after` rewrites, clipping as in
    /// [`apply_group`](Self::apply_group). With `reserve_byz` the clip
    /// additionally reserves the Byzantine occupancy of the drained states
    /// (stuck-at agents never move). `after == before` groups are pure
    /// no-ops that still count as applied chain events.
    fn apply_group_to(
        &mut self,
        before: (State, State),
        after: (State, State),
        k: u64,
        reserve_byz: bool,
    ) -> Option<BatchGroup> {
        if k == 0 {
            return None;
        }
        let (a, b) = before;
        let (a2, b2) = after;
        if after == before {
            return Some(BatchGroup { before, after, applied: k });
        }
        // Per-application occupancy deltas over the (≤ 4) involved states.
        let mut deltas = [(0 as State, 0i64); 4];
        let mut len = 0usize;
        for (s, d) in [(a, -1i64), (b, -1), (a2, 1), (b2, 1)] {
            match deltas[..len].iter_mut().find(|e| e.0 == s) {
                Some(e) => e.1 += d,
                None => {
                    deltas[len] = (s, d);
                    len += 1;
                }
            }
        }
        // Clip: state a needs `2` agents per application when a == b,
        // else one agent in each of a and b; draining states bound the
        // group length.
        let mut kmax = k;
        for &(s, d) in &deltas[..len] {
            if s != a && s != b {
                continue;
            }
            let need: u64 = if a == b { 2 } else { 1 };
            let mut c = self.state.counts[s as usize] as u64;
            if reserve_byz {
                if let Some(byz) = &self.byz {
                    c = c.saturating_sub(byz.counts[s as usize] as u64);
                }
            }
            if c < need {
                kmax = 0;
                break;
            }
            if d < 0 {
                kmax = kmax.min((c - need) / ((-d) as u64) + 1);
            }
        }
        let k = kmax.min(k);
        if k == 0 {
            return None;
        }
        for &(s, d) in &deltas[..len] {
            if d != 0 {
                self.state.update_count(s, d * k as i64);
            }
        }
        Some(BatchGroup {
            before,
            after: (a2, b2),
            applied: k,
        })
    }

    /// Apply one coalesced key group under an active Byzantine overlay:
    /// the `k` draws are binomially thinned by the probability that each
    /// participant is a stuck-at agent (relative to the *current*
    /// occupancy of its state), then applied as up to four subgroups —
    /// both update, responder-only, initiator-only, neither. The vetoed
    /// subgroups still count as applied chain events (they advance the
    /// clock) but leave the counts untouched where a participant is
    /// stuck. Appends the applied subgroups to `groups` and returns the
    /// total applied.
    fn apply_group_byz(
        &mut self,
        before: (State, State),
        k: u64,
        groups: &mut Vec<BatchGroup>,
    ) -> u64 {
        let (a, b) = before;
        let ca = self.state.counts[a as usize] as u64;
        let cb = self.state.counts[b as usize] as u64;
        if ca == 0 || cb == 0 {
            // Drained by earlier groups of the same batch; drop the tail
            // exactly as the plain clipping path does.
            return 0;
        }
        let (ba, bb) = {
            let byz = self.byz.as_ref().expect("caller checked the overlay");
            (byz.counts[a as usize] as u64, byz.counts[b as usize] as u64)
        };
        if ba == 0 && bb == 0 {
            // No Byzantine mass in either participating state: identical
            // to the plain path, no thinning draws consumed.
            return match self.apply_group(before, k) {
                Some(g) => {
                    groups.push(g);
                    g.applied
                }
                None => 0,
            };
        }
        let (a2, b2) = self.protocol.transition(a, b).unwrap_or_else(|| {
            panic!(
                "schema declared ({a},{b}) productive but transition \
                 returned None (protocol contract violation)"
            )
        });
        // Initiator stuck with probability ba/ca, responder with bb/cb
        // (the without-replacement correction for a == b is dropped — the
        // batch already runs on frozen-weight approximations).
        let k_init = if ba >= ca {
            k
        } else if ba > 0 {
            self.rng.binomial(k, ba as f64 / ca as f64)
        } else {
            0
        };
        let p_resp = if bb >= cb { 1.0 } else { bb as f64 / cb as f64 };
        let draw_resp = |rng: &mut Xoshiro256, m: u64| -> u64 {
            if bb >= cb {
                m
            } else if bb > 0 && m > 0 {
                rng.binomial(m, p_resp)
            } else {
                0
            }
        };
        let k_both = draw_resp(&mut self.rng, k_init);
        let k_resp = draw_resp(&mut self.rng, k - k_init);
        let mut applied = 0u64;
        for (after, sub_k) in [
            ((a2, b2), k - k_init - k_resp),
            ((a, b2), k_init - k_both),
            ((a2, b), k_resp),
            ((a, b), k_both),
        ] {
            if let Some(g) = self.apply_group_to(before, after, sub_k, true) {
                applied += g.applied;
                groups.push(g);
            }
        }
        applied
    }

    /// Execute one batch of `b` statistically-exchangeable productive
    /// steps with frozen weights. Returns the number actually applied
    /// (≥ 1; per-group clipping can shave the tail).
    fn step_batch(&mut self, b: u64) -> u64 {
        let weights = [
            self.state.eq_weight(),
            self.state.xx_weight(),
            self.state.cross_weight(),
            self.state.sparse_weight(),
        ];
        let w: u64 = weights.iter().sum();
        let p = w as f64 / self.ordered_pairs as f64;
        self.batches_since_refresh += 1;

        // Phase 1: sample every coalesced rewrite key with frozen weights.
        self.collect_batch_keys(b, weights);

        // Phase 2: apply the groups in collection order, clipping tails.
        let keys = std::mem::take(&mut self.key_scratch);
        let mut groups = std::mem::take(&mut self.group_scratch);
        groups.clear();
        let mut applied_total = 0u64;
        if self.byz.is_none() {
            for &(before, k) in &keys {
                if let Some(group) = self.apply_group(before, k) {
                    applied_total += group.applied;
                    groups.push(group);
                }
            }
            debug_assert!(applied_total > 0, "batch applied nothing despite W > 0");
        } else {
            for &(before, k) in &keys {
                applied_total += self.apply_group_byz(before, k, &mut groups);
            }
            if applied_total == 0 {
                // Pathological corner: every group clipped away against
                // the Byzantine reservations. Account one vetoed chain
                // event so the clock always advances and the run loop
                // cannot spin.
                let before = keys.first().map_or((0, 0), |&(bf, _)| bf);
                groups.push(BatchGroup {
                    before,
                    after: before,
                    applied: 1,
                });
                applied_total = 1;
            }
        }
        self.productive += applied_total;
        // Widen each operand before summing: with tiny p the null count
        // alone can exceed u64::MAX, so the addition must happen at u128.
        self.interactions = self
            .interactions
            .saturating_add(applied_total as u128)
            .saturating_add(self.rng.neg_binomial_wide(applied_total, p));

        self.key_scratch = keys;
        self.group_scratch = groups;
        applied_total
    }

    /// Advance the chain by one quantum: a whole batch when the
    /// configuration is far from silence, one exact productive interaction
    /// otherwise. Returns the number of productive interactions applied,
    /// or `None` if silent.
    pub fn advance_chain(&mut self) -> Option<u64> {
        match self.decide_batch() {
            Some(b) => Some(self.step_batch(b)),
            None => self.step_productive().map(|_| 1),
        }
    }

    /// Run until silent or until more than `max_interactions` have
    /// elapsed. Semantics match the jump simulator. `u64::MAX` means
    /// *unbounded* (the internal clock is `u128` and can legitimately
    /// pass `u64::MAX` at `n ≥ 2³¹`).
    ///
    /// # Errors
    ///
    /// Returns [`StabilisationTimeout`] when the cap is exceeded first.
    pub fn run_until_silent(
        &mut self,
        max_interactions: u64,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        let cap = if max_interactions == u64::MAX {
            u128::MAX
        } else {
            max_interactions as u128
        };
        loop {
            if self.is_silent() {
                if self.interactions <= cap {
                    return Ok(StabilisationReport {
                        interactions: self.interactions(),
                        interactions_wide: self.interactions,
                        productive_interactions: self.productive,
                        parallel_time: self.parallel_time(),
                    });
                }
                return Err(StabilisationTimeout {
                    interactions: max_interactions,
                });
            }
            if self.interactions >= cap {
                return Err(StabilisationTimeout {
                    interactions: self.interactions(),
                });
            }
            self.advance_chain();
        }
    }

    /// Like [`run_until_silent`](Self::run_until_silent), reporting every
    /// productive rewrite to `observer`. Batched steps coalesce identical
    /// rewrites into one call with their multiplicity; all groups of one
    /// batch are reported with the same post-batch counts and clock.
    ///
    /// # Errors
    ///
    /// Returns [`StabilisationTimeout`] when the cap is exceeded first.
    pub fn run_until_silent_observed(
        &mut self,
        max_interactions: u64,
        observer: &mut dyn CountObserver,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        let cap = if max_interactions == u64::MAX {
            u128::MAX
        } else {
            max_interactions as u128
        };
        loop {
            if self.is_silent() {
                if self.interactions <= cap {
                    return Ok(StabilisationReport {
                        interactions: self.interactions(),
                        interactions_wide: self.interactions,
                        productive_interactions: self.productive,
                        parallel_time: self.parallel_time(),
                    });
                }
                return Err(StabilisationTimeout {
                    interactions: max_interactions,
                });
            }
            if self.interactions >= cap {
                return Err(StabilisationTimeout {
                    interactions: self.interactions(),
                });
            }
            match self.decide_batch() {
                Some(b) => {
                    self.step_batch(b);
                    let groups = std::mem::take(&mut self.group_scratch);
                    for g in &groups {
                        observer.on_productive(
                            self.interactions(),
                            g.before,
                            g.after,
                            g.applied,
                            &self.state.counts,
                        );
                    }
                    self.group_scratch = groups;
                }
                None => {
                    if let Some((before, after)) = self.step_productive() {
                        observer.on_productive(
                            self.interactions(),
                            before,
                            after,
                            1,
                            &self.state.counts,
                        );
                    }
                }
            }
        }
    }

    /// Move one agent from state `from` to state `to` (transient-fault
    /// injection). All sampling weights are kept consistent; the
    /// interaction clock is not advanced.
    ///
    /// # Panics
    ///
    /// Panics if `from` is unoccupied or either state id is out of range.
    pub fn inject_fault(&mut self, from: State, to: State) {
        assert!(
            (from as usize) < self.state.counts.len()
                && (to as usize) < self.state.counts.len(),
            "state out of range"
        );
        let reserved = self
            .byz
            .as_ref()
            .map_or(0, |byz| byz.counts[from as usize]);
        assert!(
            self.state.counts[from as usize] > reserved,
            "state {from} has no non-Byzantine occupant"
        );
        if from == to {
            return;
        }
        self.state.update_count(from, -1);
        self.state.update_count(to, 1);
    }

    /// Consume the simulation and return the final occupancy counts.
    pub fn into_counts(self) -> Vec<u32> {
        self.state.counts
    }

    pub(crate) fn rng_clone(&self) -> Xoshiro256 {
        self.rng.clone()
    }

    pub(crate) fn restore_parts(
        &mut self,
        counts: &[u32],
        interactions: u128,
        productive: u64,
        rng: Xoshiro256,
        ctl: Option<crate::engine::CountControl>,
    ) {
        let batching = self.batching;
        let threads = self.threads;
        let mut fresh = CountSimulation::from_counts(self.protocol, counts.to_vec(), 0)
            .expect("snapshot counts do not match this protocol");
        fresh.interactions = interactions;
        fresh.productive = productive;
        fresh.rng = rng;
        fresh.batching = batching;
        fresh.threads = threads;
        // The persistent pool survives restores — workers are stateless
        // between batches, so handing the existing pool to the restored
        // engine is free and avoids a re-spawn. The Byzantine overlay is
        // an engine-level property, not part of the captured
        // configuration: it survives too.
        fresh.pool = self.pool.take();
        fresh.byz = self.byz.take();
        // Batch decisions depend on this control state; restoring it makes
        // a same-engine restore replay the original trajectory exactly.
        // Cross-engine snapshots carry none — the canonical state computed
        // by `from_counts` is used instead.
        if let Some(ctl) = ctl {
            fresh.state.max_eq_bound = ctl.max_eq_count;
            fresh.state.sparse.max_partner_bound = ctl.max_sparse_partner;
            fresh.state.sparse.max_pair_scale_bound = ctl.max_sparse_pair_scale;
            fresh.batches_since_refresh = ctl.batches_since_refresh;
            fresh.exact_steps_until_recheck = ctl.exact_steps_until_recheck;
        }
        *self = fresh;
    }
}

impl<P: InteractionSchema + ?Sized> crate::engine::Engine for CountSimulation<'_, P> {
    fn engine_name(&self) -> &'static str {
        "count"
    }

    fn population_size(&self) -> usize {
        self.protocol.population_size()
    }

    fn counts(&self) -> &[u32] {
        &self.state.counts
    }

    fn interactions(&self) -> u64 {
        CountSimulation::interactions(self)
    }

    fn interactions_wide(&self) -> u128 {
        self.interactions
    }

    fn productive_interactions(&self) -> u64 {
        self.productive
    }

    fn is_silent(&self) -> bool {
        CountSimulation::is_silent(self)
    }

    /// One batch far from silence (`Some(k)`), one exact productive
    /// interaction otherwise (`Some(1)`), `None` when silent.
    fn advance(&mut self) -> Option<u64> {
        self.advance_chain()
    }

    fn run_until_silent(
        &mut self,
        max_interactions: u64,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        CountSimulation::run_until_silent(self, max_interactions)
    }

    fn run_until_silent_observed(
        &mut self,
        max_interactions: u64,
        observer: &mut dyn crate::engine::CountObserver,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        CountSimulation::run_until_silent_observed(self, max_interactions, observer)
    }

    fn advance_to(
        &mut self,
        cap: u128,
        observer: &mut dyn crate::engine::CountObserver,
    ) -> CappedAdvance {
        let w = self.state.productive_pairs();
        if w == 0 {
            return CappedAdvance::Silent;
        }
        if self.interactions >= cap {
            return CappedAdvance::CapReached;
        }
        match self.decide_batch_capped(cap) {
            Some(b) => {
                let applied = self.step_batch(b);
                let groups = std::mem::take(&mut self.group_scratch);
                for g in &groups {
                    observer.on_productive(
                        self.interactions(),
                        g.before,
                        g.after,
                        g.applied,
                        &self.state.counts,
                    );
                }
                self.group_scratch = groups;
                CappedAdvance::Applied(applied)
            }
            None => {
                debug_assert!(w as u128 <= self.ordered_pairs);
                let p = w as f64 / self.ordered_pairs as f64;
                let gap = self.rng.geometric_wide(p);
                let next = self
                    .interactions
                    .saturating_add(gap)
                    .saturating_add(1);
                if next > cap {
                    // Exact truncation by memorylessness — mirrors the
                    // jump engine.
                    self.interactions = cap;
                    return CappedAdvance::CapReached;
                }
                self.interactions = next;
                self.productive += 1;
                let (before, after) = self.sample_and_apply();
                observer.on_productive(self.interactions(), before, after, 1, &self.state.counts);
                CappedAdvance::Applied(1)
            }
        }
    }

    fn set_byzantine(&mut self, byz: &[u32]) {
        self.byz = ByzOverlay::build(byz, &self.state.counts);
    }

    fn num_rank_states(&self) -> usize {
        self.state.num_ranks
    }

    fn skip_nulls(&mut self, nulls: u128) {
        self.interactions = self.interactions.saturating_add(nulls);
    }

    fn inject_state_fault(&mut self, from: State, to: State) {
        CountSimulation::inject_fault(self, from, to);
    }

    fn snapshot(&self) -> crate::engine::EngineSnapshot {
        crate::engine::EngineSnapshot {
            agents: None,
            counts: self.state.counts.clone(),
            interactions: self.interactions,
            productive: self.productive,
            rng: self.rng_clone(),
            count_ctl: Some(crate::engine::CountControl {
                max_eq_count: self.state.max_eq_bound,
                max_sparse_partner: self.state.sparse.max_partner_bound,
                max_sparse_pair_scale: self.state.sparse.max_pair_scale_bound,
                batches_since_refresh: self.batches_since_refresh,
                exact_steps_until_recheck: self.exact_steps_until_recheck,
            }),
        }
    }

    fn restore(&mut self, snapshot: &crate::engine::EngineSnapshot) {
        self.restore_parts(
            &snapshot.counts,
            snapshot.interactions,
            snapshot.productive,
            snapshot.rng.clone(),
            snapshot.count_ctl,
        );
    }
}

impl<P: InteractionSchema + ?Sized> std::fmt::Debug for CountSimulation<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountSimulation")
            .field("protocol", &self.protocol.name())
            .field("n", &self.protocol.population_size())
            .field("interactions", &self.interactions)
            .field("productive", &self.productive)
            .field("batching", &self.batching)
            .field("silent", &self.is_silent())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jump::JumpSimulation;
    use crate::protocol::{ClassSpec, Protocol};

    struct Ag {
        n: usize,
    }
    impl Protocol for Ag {
        fn name(&self) -> &str {
            "A_G"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            if i == r {
                Some((i, (r + 1) % self.n as State))
            } else {
                None
            }
        }
    }
    impl InteractionSchema for Ag {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::equal_rank()]
        }
    }

    #[test]
    fn exact_mode_is_trace_identical_to_jump() {
        let p = Ag { n: 200 };
        let mut jump = JumpSimulation::new(&p, vec![0; 200], 77).unwrap();
        let mut count =
            CountSimulation::new(&p, vec![0; 200], 77).unwrap().with_batching(false);
        loop {
            let j = jump.step_productive();
            let c = count.step_productive();
            assert_eq!(j, c);
            assert_eq!(jump.interactions(), count.interactions());
            assert_eq!(jump.counts(), count.counts());
            if j.is_none() {
                break;
            }
        }
    }

    #[test]
    fn batched_run_reaches_perfect_ranking() {
        let p = Ag { n: 4096 };
        let mut sim = CountSimulation::new(&p, vec![0; 4096], 5).unwrap();
        let rep = sim.run_until_silent(u64::MAX).unwrap();
        assert!(sim.counts().iter().all(|&c| c == 1));
        assert!(rep.productive_interactions >= 4095);
        assert!(rep.interactions >= rep.productive_interactions);
    }

    #[test]
    fn wide_clock_survives_snapshot_roundtrip() {
        use crate::engine::Engine;
        let p = Ag { n: 8 };
        let mut sim = CountSimulation::new(&p, vec![0; 8], 9).unwrap();
        sim.step_productive();
        let mut snap = Engine::snapshot(&sim);
        let wide = u64::MAX as u128 + 12_345;
        snap.interactions = wide;
        Engine::restore(&mut sim, &snap);
        assert_eq!(sim.interactions_wide(), wide);
        assert_eq!(CountSimulation::interactions(&sim), u64::MAX);
        // Snapshot and advance keep the full-width clock exact.
        let snap2 = Engine::snapshot(&sim);
        assert_eq!(snap2.interactions_wide(), wide);
        assert_eq!(snap2.interactions(), u64::MAX);
        sim.step_productive();
        assert!(sim.interactions_wide() > wide);
    }

    #[test]
    fn batching_engages_far_from_silence() {
        let p = Ag { n: 4096 };
        let mut sim = CountSimulation::new(&p, vec![0; 4096], 6).unwrap();
        let applied = sim.advance_chain().unwrap();
        assert!(
            applied >= MIN_BATCH,
            "stacked start must batch, applied {applied}"
        );
        // Batched and exact stepping agree on conservation throughout.
        while sim.advance_chain().is_some() {
            assert_eq!(sim.counts().iter().map(|&c| c as u64).sum::<u64>(), 4096);
        }
        assert!(sim.is_silent());
    }

    #[test]
    fn batched_mean_time_matches_exact_chain() {
        // The batched chain is an approximation of the exact chain far
        // from silence; its stabilisation-time mean must track the exact
        // simulator within a few percent.
        let p = Ag { n: 256 };
        let trials = 60u64;
        let mean = |batching: bool| -> f64 {
            (0..trials)
                .map(|t| {
                    let mut s = CountSimulation::new(&p, vec![0; 256], 9000 + t)
                        .unwrap()
                        .with_batching(batching);
                    s.run_until_silent(u64::MAX).unwrap().interactions as f64
                })
                .sum::<f64>()
                / trials as f64
        };
        let batched = mean(true);
        let exact = mean(false);
        let rel = (batched - exact).abs() / exact;
        assert!(
            rel < 0.1,
            "batched mean {batched:.0} vs exact mean {exact:.0} ({rel:.3})"
        );
    }

    #[test]
    fn from_counts_validates_total() {
        let p = Ag { n: 4 };
        assert!(CountSimulation::from_counts(&p, vec![1, 1, 1, 0], 1).is_err());
        assert!(CountSimulation::from_counts(&p, vec![4, 0, 0, 0], 1).is_ok());
        assert!(CountSimulation::from_counts(&p, vec![4, 0, 0], 1).is_err());
    }

    #[test]
    fn timeout_semantics_match_jump() {
        let p = Ag { n: 64 };
        let mut sim = CountSimulation::new(&p, vec![0; 64], 3).unwrap();
        let err = sim.run_until_silent(2).unwrap_err();
        assert!(err.interactions >= 2);
    }

    #[test]
    fn fault_injection_reenables_stepping() {
        let p = Ag { n: 32 };
        let mut sim = CountSimulation::new(&p, (0..32).collect(), 11).unwrap();
        assert!(sim.is_silent());
        sim.inject_fault(3, 9);
        assert!(!sim.is_silent());
        sim.run_until_silent(u64::MAX).unwrap();
        assert!(sim.counts().iter().all(|&c| c == 1));
    }

    #[test]
    fn snapshot_restore_replays_exactly_while_batching() {
        use crate::engine::Engine;
        // n large enough that batch mode is active at snapshot time; the
        // snapshot must carry the batch-scheduling state so the restored
        // run replays the original continuation draw-for-draw.
        let p = Ag { n: 4096 };
        let mut sim = CountSimulation::new(&p, vec![0; 4096], 77).unwrap();
        for _ in 0..5 {
            sim.advance_chain();
        }
        let snap = Engine::snapshot(&sim);
        let cont: Vec<(u64, u64)> = (0..40)
            .map(|_| {
                sim.advance_chain();
                (sim.interactions(), sim.productive_interactions())
            })
            .collect();
        let counts_a = sim.counts().to_vec();
        Engine::restore(&mut sim, &snap);
        let replay: Vec<(u64, u64)> = (0..40)
            .map(|_| {
                sim.advance_chain();
                (sim.interactions(), sim.productive_interactions())
            })
            .collect();
        assert_eq!(cont, replay, "restored run must replay the original");
        assert_eq!(counts_a, sim.counts());
    }

    #[test]
    fn observed_and_unobserved_runs_are_identical() {
        use crate::engine::NullCountObserver;
        // Both entry points must share the batch/exact decision schedule,
        // otherwise the same seed yields different trajectories.
        let p = Ag { n: 2048 };
        let mut plain = CountSimulation::new(&p, vec![0; 2048], 13).unwrap();
        let rp = plain.run_until_silent(u64::MAX).unwrap();
        let mut observed = CountSimulation::new(&p, vec![0; 2048], 13).unwrap();
        let ro = observed
            .run_until_silent_observed(u64::MAX, &mut NullCountObserver)
            .unwrap();
        assert_eq!(rp.interactions, ro.interactions);
        assert_eq!(rp.productive_interactions, ro.productive_interactions);
        assert_eq!(plain.counts(), observed.counts());
    }

    #[test]
    fn stale_max_count_bound_cannot_disable_batching_permanently() {
        // Start stacked so max_eq_bound is learned high, let the mass
        // disperse, then verify batches keep firing once the true maximum
        // has dropped (the rescue refresh in batch_size).
        let p = Ag { n: 8192 };
        let mut sim = CountSimulation::new(&p, vec![0; 8192], 3).unwrap();
        let mut batched_quanta = 0u64;
        let mut total_quanta = 0u64;
        while let Some(applied) = sim.advance_chain() {
            total_quanta += 1;
            if applied > 1 {
                batched_quanta += 1;
            }
            if total_quanta > 50_000_000 {
                break;
            }
        }
        assert!(sim.is_silent());
        // Far from silence the overwhelming majority of productive work
        // must happen in batches; without the rescue the stale stacked
        // bound (8192) would throttle b below MIN_BATCH long before the
        // weight support actually thins out.
        assert!(
            batched_quanta > 100,
            "only {batched_quanta} of {total_quanta} quanta were batches"
        );
    }

    #[test]
    fn deterministic_given_seed_with_batching() {
        let p = Ag { n: 512 };
        let run = |seed| {
            let mut s = CountSimulation::new(&p, vec![7; 512], seed).unwrap();
            s.run_until_silent(u64::MAX).unwrap().interactions
        };
        assert_eq!(run(31), run(31));
    }

    /// The tentpole invariant: batched trajectories are bit-identical for
    /// a fixed seed regardless of the thread count. The start spreads the
    /// population over 16 states so the per-batch draw count clears both
    /// the pool-dispatch threshold and the task-partition granularity —
    /// the multi-thread runs genuinely execute tasks on pool workers.
    #[test]
    fn batched_trajectory_is_identical_across_thread_counts() {
        let n = 1 << 17;
        let p = Ag { n };
        let mut counts = vec![0u32; n];
        for s in 0..16 {
            counts[s * (n / 16)] = (n / 16) as u32;
        }
        let run = |threads: usize| {
            let mut s = CountSimulation::from_counts(&p, counts.clone(), 23)
                .unwrap()
                .with_threads(threads);
            let first = s.advance_chain().unwrap();
            assert!(
                first >= POOL_MIN_DRAWS_PER_WORKER * threads as u64,
                "first batch must clear the pool threshold (applied {first})"
            );
            for _ in 0..40 {
                s.advance_chain();
            }
            (s.interactions(), s.productive_interactions(), s.into_counts())
        };
        let serial = run(1);
        assert_eq!(serial, run(4), "1-thread vs 4-thread trajectories differ");
        assert_eq!(serial, run(3), "1-thread vs 3-thread trajectories differ");
    }

    /// Pool regression: a **long** run (hundreds of batches re-using the
    /// same parked workers, all the way into the exact-mode tail and
    /// silence) is bit-identical under the persistent pool and under
    /// serial execution. The task plan, per-task RNG streams, and merge
    /// order are unchanged from the per-batch scoped-spawn implementation,
    /// so this also pins the trajectory to the previous revision's
    /// behaviour for these seeds.
    #[test]
    fn persistent_pool_long_run_is_bit_identical_to_serial() {
        let n = 1 << 15;
        let p = Ag { n };
        for seed in [7u64, 23] {
            let run = |threads: usize| {
                let mut s = CountSimulation::new(&p, vec![0; n], seed)
                    .unwrap()
                    .with_threads(threads);
                let rep = s.run_until_silent(u64::MAX).unwrap();
                (rep.interactions, rep.productive_interactions, s.into_counts())
            };
            let serial = run(1);
            let pooled = run(3);
            assert_eq!(serial, pooled, "seed {seed}: pool run diverged");
        }
    }

    /// The pool must survive a snapshot restore (restore rebuilds the
    /// engine from counts) and keep producing the serial trajectory.
    #[test]
    fn pool_survives_snapshot_restore() {
        use crate::engine::Engine;
        let n = 1 << 15;
        let p = Ag { n };
        let mut s = CountSimulation::new(&p, vec![0; n], 11).unwrap().with_threads(3);
        for _ in 0..5 {
            s.advance_chain();
        }
        let snap = Engine::snapshot(&s);
        let cont: Vec<u64> = (0..30)
            .map(|_| {
                s.advance_chain();
                s.productive_interactions()
            })
            .collect();
        Engine::restore(&mut s, &snap);
        assert_eq!(s.threads(), 3, "thread budget lost across restore");
        let replay: Vec<u64> = (0..30)
            .map(|_| {
                s.advance_chain();
                s.productive_interactions()
            })
            .collect();
        assert_eq!(cont, replay, "restored pooled run must replay the original");
    }

    /// A multi-class protocol (equal-rank + extra–extra + symmetric cross,
    /// tree-protocol shaped): the generalised batch mode must engage on
    /// the extra classes and still conserve agents and reach silence.
    struct Multi {
        n: usize,
        x: usize,
    }
    impl Multi {
        fn extra(&self, i: usize) -> State {
            (self.n + i) as State
        }
    }
    impl Protocol for Multi {
        fn name(&self) -> &str {
            "multi"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n + self.x
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            let nr = self.n as State;
            match (i < nr, r < nr) {
                (true, true) => (i == r).then(|| {
                    if (r as usize) + 1 == self.n {
                        (self.extra(0), self.extra(0))
                    } else {
                        (i, r + 1)
                    }
                }),
                // Buffer epidemic: both agents climb to min+1, or re-enter
                // the root from the top buffer state.
                (false, false) => {
                    let low = i.min(r) as usize - self.n;
                    if low + 1 >= self.x {
                        Some((0, 0))
                    } else {
                        let up = self.extra(low + 1);
                        Some((up, up))
                    }
                }
                // Cross: the buffered agent re-enters at the root.
                (true, false) => Some((i, 0)),
                (false, true) => Some((0, r)),
            }
        }
    }
    impl InteractionSchema for Multi {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![
                ClassSpec::equal_rank(),
                ClassSpec::extra_extra(),
                ClassSpec::rank_extra(crate::protocol::CrossDirection::Both),
            ]
        }
    }

    #[test]
    fn multi_class_schema_validates() {
        crate::protocol::validate_interaction_schema(&Multi { n: 9, x: 3 }).unwrap();
    }

    #[test]
    fn multi_class_batches_extra_classes_and_conserves() {
        let n = 6000;
        let p = Multi { n, x: 4 };
        // Adversarial start: everyone buffered at the bottom extra state —
        // all productive weight is extra–extra, none equal-rank.
        let start = vec![p.extra(0); n];
        let mut sim = CountSimulation::new(&p, start, 21).unwrap();
        let first = sim.advance_chain().unwrap();
        assert!(
            first >= MIN_BATCH,
            "extra–extra start must batch, applied {first}"
        );
        while sim.advance_chain().is_some() {
            assert_eq!(
                sim.counts().iter().map(|&c| c as u64).sum::<u64>(),
                n as u64
            );
        }
        assert!(sim.is_silent());
        assert!(sim.counts()[..n].iter().all(|&c| c == 1));
    }

    #[test]
    fn multi_class_batched_mean_matches_exact_chain() {
        let n = 600;
        let p = Multi { n, x: 4 };
        let trials = 40u64;
        let mean = |batching: bool| -> f64 {
            (0..trials)
                .map(|t| {
                    let mut s = CountSimulation::new(&p, vec![p.extra(0); n], 7000 + t)
                        .unwrap()
                        .with_batching(batching);
                    s.run_until_silent(u64::MAX).unwrap().interactions as f64
                })
                .sum::<f64>()
                / trials as f64
        };
        let batched = mean(true);
        let exact = mean(false);
        let rel = (batched - exact).abs() / exact;
        assert!(
            rel < 0.1,
            "batched mean {batched:.0} vs exact mean {exact:.0} ({rel:.3})"
        );
    }

    /// Declaring a class non-exchangeable must force exact stepping
    /// whenever it has weight, and the run must still be trace-identical
    /// to the jump chain per seed.
    struct Frozen {
        n: usize,
    }
    impl Protocol for Frozen {
        fn name(&self) -> &str {
            "frozen"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            (i == r).then(|| (i, (r + 1) % self.n as State))
        }
    }
    impl InteractionSchema for Frozen {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::equal_rank().non_exchangeable()]
        }
    }

    #[test]
    fn non_exchangeable_class_forces_exact_stepping() {
        let p = Frozen { n: 4096 };
        let mut count = CountSimulation::new(&p, vec![0; 4096], 19).unwrap();
        let mut jump = JumpSimulation::new(&p, vec![0; 4096], 19).unwrap();
        for _ in 0..5_000 {
            assert_eq!(count.advance_chain(), Some(1));
            jump.step_productive();
        }
        assert_eq!(count.interactions(), jump.interactions());
        assert_eq!(count.counts(), jump.counts());
    }

    /// Sparse-only annihilation: `(1,2) → (0,0)` and `(2,1) → (0,0)`.
    /// Every draw drains both non-zero states, so the batch cap is fully
    /// exercised; from an even split both sides hit zero together
    /// (`c_1 − c_2` is invariant) and the run ends silent.
    struct Annihilate {
        n: usize,
    }
    impl Protocol for Annihilate {
        fn name(&self) -> &str {
            "annihilate"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            3
        }
        fn num_rank_states(&self) -> usize {
            3
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            matches!((i, r), (1, 2) | (2, 1)).then_some((0, 0))
        }
    }
    impl InteractionSchema for Annihilate {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::pair(1, 2), ClassSpec::pair(2, 1)]
        }
    }

    fn annihilate_counts(n: usize) -> Vec<u32> {
        vec![0, (n / 2) as u32, (n / 2) as u32]
    }

    #[test]
    fn sparse_batching_engages_with_per_pair_caps() {
        crate::protocol::validate_interaction_schema(&Annihilate { n: 8 }).unwrap();
        let n = 4096;
        let p = Annihilate { n };
        let mut sim = CountSimulation::from_counts(&p, annihilate_counts(n), 21).unwrap();
        let first = sim.advance_chain().unwrap();
        // W = 2c², pair scale = c, partner floor = 2c/2 = c ⇒ b = c/4.
        // The old global 2·partner-sum rein (scale 4c) allowed only c/16;
        // anything clearly above that proves the per-pair cap is in
        // charge.
        let c = (n / 2) as u64;
        assert!(
            first >= c / 8 && first <= c / 4 + 1,
            "first batch {first} outside the per-pair-cap regime (c = {c})"
        );
        while sim.advance_chain().is_some() {
            assert_eq!(
                sim.counts().iter().map(|&c| c as u64).sum::<u64>(),
                n as u64
            );
        }
        assert!(sim.is_silent());
        assert_eq!(sim.counts(), &[n as u32, 0, 0]);
    }

    #[test]
    fn sparse_batched_mean_matches_exact_chain() {
        let n = 512;
        let p = Annihilate { n };
        let trials = 60u64;
        let mean = |batching: bool| -> f64 {
            (0..trials)
                .map(|t| {
                    let mut s =
                        CountSimulation::from_counts(&p, annihilate_counts(n), 4_000 + t)
                            .unwrap()
                            .with_batching(batching);
                    s.run_until_silent(u64::MAX).unwrap().interactions as f64
                })
                .sum::<f64>()
                / trials as f64
        };
        let batched = mean(true);
        let exact = mean(false);
        let rel = (batched - exact).abs() / exact;
        assert!(
            rel < 0.1,
            "batched mean {batched:.0} vs exact mean {exact:.0} ({rel:.3})"
        );
    }

    #[test]
    fn stale_sparse_bounds_cannot_disable_batching_permanently() {
        // The sparse drift bounds are learned high at the well-mixed start
        // and only shrink on refresh; as annihilation thins both sides,
        // the periodic and rescue refreshes must keep batches firing until
        // the amortisation threshold genuinely wins (c/4 < MIN_BATCH).
        let n = 1 << 14;
        let p = Annihilate { n };
        let mut sim = CountSimulation::from_counts(&p, annihilate_counts(n), 3).unwrap();
        let mut total_quanta = 0u64;
        let mut last_batched_c = u64::MAX;
        while let Some(applied) = sim.advance_chain() {
            total_quanta += 1;
            if applied > 1 {
                // Smallest population at which a batch still fired (counts
                // are post-batch, which only strengthens the assertion).
                let c = sim.counts()[1].min(sim.counts()[2]) as u64;
                last_batched_c = last_batched_c.min(c);
            }
            assert!(total_quanta < 100_000, "runaway annihilation run");
        }
        assert!(sim.is_silent());
        // Without the sparse rescue refresh the stale initial scale
        // (c₀ = 8192) would stop batching near c ≈ 1024; with it, batches
        // must continue until the threshold regime (c/4 < 64 ⇒ c < 256).
        assert!(
            last_batched_c < 512,
            "batches stopped early: smallest post-batch population {last_batched_c}"
        );
        // And the whole run must be batch-dominated: ~13 geometric-decay
        // batches plus < 2·256 exact tail steps, far below the ~8k exact
        // steps a stalled run would need.
        assert!(
            total_quanta < 2_000,
            "sparse batching stalled: {total_quanta} quanta to silence"
        );
    }

    /// Initiator-copies-itself-onto-responder consensus over `s` states,
    /// declared as all `s(s−1)` ordered sparse pairs: many initiator
    /// groups with positive weight, so the per-group sparse split tasks
    /// genuinely fan out across pool workers.
    struct Consensus {
        s: usize,
        n: usize,
    }
    impl Protocol for Consensus {
        fn name(&self) -> &str {
            "consensus"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.s
        }
        fn num_rank_states(&self) -> usize {
            self.s
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            (i != r).then_some((i, i))
        }
    }
    impl InteractionSchema for Consensus {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            let s = self.s as State;
            (0..s)
                .flat_map(|a| (0..s).filter(move |&b| b != a).map(move |b| ClassSpec::pair(a, b)))
                .collect()
        }
    }

    /// 1-vs-4-thread bit-identity straight through the per-group sparse
    /// split tasks: 16 occupied initiator groups, batches big enough that
    /// the 4-thread run demonstrably dispatches to pool workers.
    #[test]
    fn sparse_group_tasks_are_bit_identical_across_thread_counts() {
        let s = 16;
        let n = 1 << 16;
        crate::protocol::validate_interaction_schema(&Consensus { s, n: 64 }).unwrap();
        let p = Consensus { s, n };
        let counts = vec![(n / s) as u32; s];
        let run = |threads: usize| {
            let mut sim = CountSimulation::from_counts(&p, counts.clone(), 29)
                .unwrap()
                .with_threads(threads);
            let first = sim.advance_chain().unwrap();
            assert!(
                first >= POOL_MIN_DRAWS_PER_WORKER * threads as u64,
                "first batch must clear the pool threshold (applied {first})"
            );
            for _ in 0..40 {
                sim.advance_chain();
            }
            (
                sim.interactions(),
                sim.productive_interactions(),
                sim.into_counts(),
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(4), "1 vs 4 threads through sparse group tasks");
    }

    /// Snapshot/restore round-trips the sparse drift bounds: batch-size
    /// decisions depend on them, so a restored run only replays the
    /// original continuation if `CountControl` carries them.
    #[test]
    fn sparse_snapshot_restore_replays_exactly_while_batching() {
        use crate::engine::Engine;
        let n = 4096;
        let p = Annihilate { n };
        let mut sim = CountSimulation::from_counts(&p, annihilate_counts(n), 99).unwrap();
        for _ in 0..3 {
            sim.advance_chain();
        }
        let snap = Engine::snapshot(&sim);
        let cont: Vec<(u64, u64)> = (0..25)
            .map(|_| {
                sim.advance_chain();
                (sim.interactions(), sim.productive_interactions())
            })
            .collect();
        let counts_a = sim.counts().to_vec();
        Engine::restore(&mut sim, &snap);
        let replay: Vec<(u64, u64)> = (0..25)
            .map(|_| {
                sim.advance_chain();
                (sim.interactions(), sim.productive_interactions())
            })
            .collect();
        assert_eq!(cont, replay, "restored sparse run must replay the original");
        assert_eq!(counts_a, sim.counts());
    }
}
