//! Count-based batched simulation: `O(#states)` memory, amortised
//! sub-interaction stepping.
//!
//! Every protocol in this workspace is *anonymous*: the transition function
//! sees states, never agent identities, so the Markov chain is fully
//! determined by the per-state occupancy vector. [`CountSimulation`]
//! exploits this twice:
//!
//! 1. **Exact mode** — the same embedded jump chain as
//!    [`JumpSimulation`](crate::jump::JumpSimulation): sample a productive
//!    ordered state pair proportionally to its weight, apply the rewrite to
//!    the counts, and account for the skipped null interactions with a
//!    geometric draw. Given the same seed, the exact mode consumes the RNG
//!    draw-for-draw identically to the jump simulator and therefore walks
//!    the *identical* trajectory (the cross-engine test suite asserts
//!    this).
//! 2. **Batch mode** — far from silence, consecutive productive steps are
//!    *statistically exchangeable*: with per-state weights `w_s = c_s(c_s −
//!    1)`, a batch of `B` steps splits across states as a multinomial.
//!    The batch is drawn in `O(occupied · log #states)` total — not `O(B)`
//!    — by recursive **binomial splitting** down a complete binary weight
//!    tree (the classic trick from batched population-protocol simulation,
//!    cf. Berenbrink et al.), and all `B` null gaps are accounted at once
//!    with a single negative-binomial draw. Weights are frozen for the
//!    duration of one batch; the batch size is capped at
//!    `W / (8·c_max)` so no state's weight can drift by more than ~25%
//!    within a batch, which keeps the stabilisation-time distribution
//!    statistically indistinguishable from the exact chain (KS-tested in
//!    `tests/cross_simulator.rs`).
//!
//! Batch mode engages only while **all** productive weight lies in
//! equal-rank pairs (`A_G` and the ring protocol always; the line/tree
//! protocols whenever no agent occupies an extra state) and the safe batch
//! size is large enough to pay for itself; otherwise the engine falls back
//! to exact stepping for that step. Correctness near silence is therefore
//! always the exact jump chain.
//!
//! # Examples
//!
//! ```
//! use ssr_engine::count::CountSimulation;
//! use ssr_engine::protocol::{Protocol, ProductiveClasses, State};
//!
//! struct Ag { n: usize }
//! impl Protocol for Ag {
//!     fn name(&self) -> &str { "A_G" }
//!     fn population_size(&self) -> usize { self.n }
//!     fn num_states(&self) -> usize { self.n }
//!     fn num_rank_states(&self) -> usize { self.n }
//!     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
//!         (i == r).then(|| (i, (r + 1) % self.n as State))
//!     }
//! }
//! impl ProductiveClasses for Ag {}
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = Ag { n: 10_000 };
//! let mut sim = CountSimulation::new(&p, vec![0; 10_000], 42)?;
//! let report = sim.run_until_silent(u64::MAX)?;
//! assert!(sim.is_silent());
//! assert!(report.productive_interactions >= 9_999);
//! # Ok(())
//! # }
//! ```

use crate::engine::CountObserver;
use crate::error::{ConfigError, StabilisationTimeout};
use crate::fenwick::Fenwick;
use crate::init;
use crate::protocol::{ExtraRankCross, ProductiveClasses, State};
use crate::rng::Xoshiro256;
use crate::sim::StabilisationReport;

/// Below this safe batch size, batching cannot pay for its overhead and
/// the engine steps exactly.
const MIN_BATCH: u64 = 64;

/// After the safe batch size drops below [`MIN_BATCH`], stay in exact
/// mode for this many steps before re-checking — the productive weight
/// changes by O(c_max) per step, so eligibility cannot swing back
/// instantly, and checking per step would tax the exact hot loop.
const EXACT_RECHECK_INTERVAL: u32 = 32;

/// At or below this many remaining draws, [`WeightTree::split`] switches
/// from binomial splitting to direct weighted descends (cheaper in RNG
/// draws, identical in distribution).
const SPLIT_DIRECT_THRESHOLD: u64 = 8;

/// Re-derive the exact maximum productive occupancy every this many
/// batches (between refreshes the tracked bound is a safe over-estimate).
const MAX_REFRESH_INTERVAL: u32 = 32;

/// Complete binary weight tree over `u64` weights: `O(log n)` point
/// updates, `O(1)` totals, `O(log n)` weighted sampling, and — the reason
/// it exists next to [`Fenwick`] — recursive multinomial **splitting** of a
/// batch over all weighted slots in `O(occupied)` binomial draws.
///
/// `sample` maps a target offset to the slot containing it in prefix-sum
/// order, exactly like [`Fenwick::sample`], so the two structures are
/// interchangeable draw-for-draw.
#[derive(Debug, Clone)]
pub struct WeightTree {
    /// Number of leaves (padded to a power of two).
    size: usize,
    /// Logical slot count.
    len: usize,
    /// 1-based heap layout; `tree[1]` is the root, leaves start at `size`.
    tree: Vec<u64>,
}

impl WeightTree {
    /// Tree of `len` zero weights.
    pub fn new(len: usize) -> Self {
        let size = len.next_power_of_two().max(1);
        WeightTree {
            size,
            len,
            tree: vec![0; 2 * size],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current weight at `index`.
    #[inline]
    pub fn weight(&self, index: usize) -> u64 {
        self.tree[self.size + index]
    }

    /// Sum of all weights.
    #[inline]
    pub fn total(&self) -> u64 {
        self.tree[1]
    }

    /// Set the weight at `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: u64) {
        assert!(index < self.len, "weight index out of range");
        let mut node = self.size + index;
        let old = self.tree[node];
        if old == value {
            return;
        }
        // Delta propagation: one read-modify-write per ancestor.
        if value >= old {
            let delta = value - old;
            while node >= 1 {
                self.tree[node] += delta;
                node >>= 1;
            }
        } else {
            let delta = old - value;
            while node >= 1 {
                self.tree[node] -= delta;
                node >>= 1;
            }
        }
    }

    /// Slot containing offset `target` when weights are laid end to end
    /// (identical mapping to [`Fenwick::sample`]).
    ///
    /// # Panics
    ///
    /// Debug-panics if `target >= total()`.
    #[inline]
    pub fn sample(&self, mut target: u64) -> usize {
        debug_assert!(target < self.total(), "sample target out of range");
        let mut node = 1usize;
        while node < self.size {
            let left = 2 * node;
            if self.tree[left] > target {
                node = left;
            } else {
                target -= self.tree[left];
                node = left + 1;
            }
        }
        node - self.size
    }

    /// Split a batch of `b` weighted draws across all slots: appends
    /// `(slot, k_slot)` pairs with `Σ k_slot == b`, distributed
    /// multinomially with probabilities proportional to slot weights.
    ///
    /// Implemented by recursive binomial splitting at each tree node, so
    /// the cost is `O(occupied)` binomial draws rather than `O(b)` samples.
    ///
    /// # Panics
    ///
    /// Debug-panics if `b > 0` with zero total weight.
    pub fn split(&self, b: u64, rng: &mut Xoshiro256, out: &mut Vec<(usize, u64)>) {
        if b == 0 {
            return;
        }
        debug_assert!(self.total() > 0, "cannot split over zero weight");
        self.split_rec(1, b, rng, out);
    }

    fn split_rec(&self, node: usize, b: u64, rng: &mut Xoshiro256, out: &mut Vec<(usize, u64)>) {
        if b == 0 {
            return;
        }
        if node >= self.size {
            out.push((node - self.size, b));
            return;
        }
        if b <= SPLIT_DIRECT_THRESHOLD {
            // Few draws left in this subtree: b direct weighted descends
            // (one RNG draw each) beat a binomial per level. Identical in
            // distribution — both are the multinomial over leaf weights.
            let total = self.tree[node];
            for _ in 0..b {
                let mut target = rng.below(total);
                let mut pos = node;
                while pos < self.size {
                    let left = 2 * pos;
                    if self.tree[left] > target {
                        pos = left;
                    } else {
                        target -= self.tree[left];
                        pos = left + 1;
                    }
                }
                let leaf = pos - self.size;
                // Runs of the same leaf are coalesced opportunistically;
                // duplicates across runs are harmless to the caller.
                match out.last_mut() {
                    Some((last, k)) if *last == leaf => *k += 1,
                    _ => out.push((leaf, 1)),
                }
            }
            return;
        }
        let left = 2 * node;
        let wl = self.tree[left];
        let wr = self.tree[left + 1];
        let kl = if wr == 0 {
            b
        } else if wl == 0 {
            0
        } else {
            rng.binomial(b, wl as f64 / (wl + wr) as f64)
        };
        self.split_rec(left, kl, rng, out);
        self.split_rec(left + 1, b - kl, rng, out);
    }
}

/// One coalesced group of identical rewrites applied by a batch step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchGroup {
    before: (State, State),
    after: (State, State),
    applied: u64,
}

/// Count-based simulation with far-from-silence batching.
///
/// Memory is `O(#states)` — there is no agent vector — so populations of
/// `n = 10⁷…10⁹` fit comfortably as long as the protocol's state space
/// does.
pub struct CountSimulation<'a, P: ProductiveClasses + ?Sized> {
    protocol: &'a P,
    counts: Vec<u32>,
    /// Per-rank-state productive weight `c(c−1)` where an equal-rank rule
    /// exists.
    eq: WeightTree,
    /// Per-rank-state occupancy (for cross-pair sampling in exact mode).
    rank_occ: Fenwick,
    has_eq: Vec<bool>,
    num_ranks: usize,
    rank_agents: u64,
    extra_agents: u64,
    cross: ExtraRankCross,
    xx_all: bool,
    interactions: u64,
    productive: u64,
    ordered_pairs: u64,
    rng: Xoshiro256,
    batching: bool,
    /// Upper bound on the occupancy of any rank state with an equal-rank
    /// rule; grows eagerly, shrinks on periodic refresh.
    max_eq_count: u64,
    batches_since_refresh: u32,
    /// Exact steps to take before re-checking batch eligibility (0 =
    /// check now); keeps the check off the exact-mode hot path.
    exact_steps_until_recheck: u32,
    split_scratch: Vec<(usize, u64)>,
    group_scratch: Vec<BatchGroup>,
}

impl<'a, P: ProductiveClasses + ?Sized> CountSimulation<'a, P> {
    /// Start from an explicit configuration, with batching enabled.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on population or state-range mismatch.
    pub fn new(protocol: &'a P, config: Vec<State>, seed: u64) -> Result<Self, ConfigError> {
        let n = protocol.population_size();
        if config.len() != n {
            return Err(ConfigError::WrongPopulation {
                expected: n,
                got: config.len(),
            });
        }
        init::validate(&config, protocol.num_states())?;
        Self::from_counts(protocol, init::counts(&config, protocol.num_states()), seed)
    }

    /// Start from per-state occupancy counts (must sum to the population),
    /// with batching enabled.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::WrongPopulation`] if counts do not sum to
    /// `n` or the counts vector length differs from the state-space size.
    pub fn from_counts(
        protocol: &'a P,
        counts: Vec<u32>,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        let n = protocol.population_size();
        if counts.len() != protocol.num_states() {
            return Err(ConfigError::WrongPopulation {
                expected: protocol.num_states(),
                got: counts.len(),
            });
        }
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        if total != n as u64 {
            return Err(ConfigError::WrongPopulation {
                expected: n,
                got: total as usize,
            });
        }
        let num_ranks = protocol.num_rank_states();
        let has_eq: Vec<bool> = (0..num_ranks)
            .map(|s| protocol.has_equal_rank_rule(s as State))
            .collect();
        let mut eq = WeightTree::new(num_ranks);
        let mut rank_occ = Fenwick::new(num_ranks);
        let mut rank_agents = 0u64;
        let mut max_eq_count = 1u64;
        for s in 0..num_ranks {
            let c = counts[s] as u64;
            rank_agents += c;
            rank_occ.set(s, c);
            if has_eq[s] {
                eq.set(s, c * c.saturating_sub(1));
                max_eq_count = max_eq_count.max(c);
            }
        }
        let extra_agents = n as u64 - rank_agents;
        Ok(CountSimulation {
            protocol,
            counts,
            eq,
            rank_occ,
            has_eq,
            num_ranks,
            rank_agents,
            extra_agents,
            cross: protocol.extra_rank_cross(),
            xx_all: protocol.extra_extra_all(),
            interactions: 0,
            productive: 0,
            ordered_pairs: (n as u64) * (n as u64).saturating_sub(1),
            rng: Xoshiro256::seed_from_u64(seed),
            batching: true,
            max_eq_count,
            batches_since_refresh: 0,
            exact_steps_until_recheck: 0,
            split_scratch: Vec::new(),
            group_scratch: Vec::new(),
        })
    }

    /// Enable or disable batch mode. With batching off the engine consumes
    /// its RNG draw-for-draw identically to
    /// [`JumpSimulation`](crate::jump::JumpSimulation) and reproduces the
    /// exact same trajectory per seed.
    pub fn with_batching(mut self, batching: bool) -> Self {
        self.batching = batching;
        self
    }

    /// Whether batch mode is enabled.
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// Current per-state occupancy counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total interactions simulated (nulls included, exact in
    /// distribution).
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Productive interactions executed.
    pub fn productive_interactions(&self) -> u64 {
        self.productive
    }

    /// Parallel time elapsed: interactions / n.
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.protocol.population_size() as f64
    }

    /// Number of productive ordered pairs in the current configuration.
    pub fn productive_pairs(&self) -> u64 {
        self.eq.total() + self.xx_weight() + self.cross_weight()
    }

    /// Silent iff no ordered pair is productive.
    pub fn is_silent(&self) -> bool {
        self.productive_pairs() == 0
    }

    #[inline]
    fn xx_weight(&self) -> u64 {
        if self.xx_all {
            self.extra_agents * self.extra_agents.saturating_sub(1)
        } else {
            0
        }
    }

    #[inline]
    fn cross_weight(&self) -> u64 {
        match self.cross {
            ExtraRankCross::None => 0,
            ExtraRankCross::RankInitiatorOnly => self.rank_agents * self.extra_agents,
            ExtraRankCross::Symmetric => 2 * self.rank_agents * self.extra_agents,
        }
    }

    #[inline]
    fn update_count(&mut self, s: State, delta: i64) {
        let su = s as usize;
        let c = (self.counts[su] as i64 + delta) as u32;
        self.counts[su] = c;
        if su < self.num_ranks {
            self.rank_agents = (self.rank_agents as i64 + delta) as u64;
            self.rank_occ.set(su, c as u64);
            if self.has_eq[su] {
                let c = c as u64;
                self.eq.set(su, c * c.saturating_sub(1));
                if c > self.max_eq_count {
                    self.max_eq_count = c;
                }
            }
        } else {
            self.extra_agents = (self.extra_agents as i64 + delta) as u64;
        }
    }

    /// Execute one productive interaction (plus the geometric number of
    /// preceding nulls), exactly as the jump simulator would — the
    /// sampling logic is literally shared (`pairsample`), so identical
    /// RNG consumption and identical trajectories per seed are structural.
    /// Returns the ordered state pair rewritten, or `None` if the
    /// configuration is silent.
    pub fn step_productive(&mut self) -> Option<((State, State), (State, State))> {
        let w = self.productive_pairs();
        if w == 0 {
            return None;
        }
        debug_assert!(w <= self.ordered_pairs);
        let p = w as f64 / self.ordered_pairs as f64;
        self.interactions += self.rng.geometric(p) + 1;
        self.productive += 1;

        let classes = crate::pairsample::PairClasses {
            counts: &self.counts,
            num_ranks: self.num_ranks,
            rank_agents: self.rank_agents,
            extra_agents: self.extra_agents,
            cross: self.cross,
            xx_all: self.xx_all,
        };
        let (si, sr) =
            crate::pairsample::sample_pair(&classes, &self.eq, &self.rank_occ, &mut self.rng);

        let (si2, sr2) = self.protocol.transition(si, sr).unwrap_or_else(|| {
            panic!(
                "ProductiveClasses declared ({si},{sr}) productive but \
                 transition returned None (protocol contract violation)"
            )
        });
        debug_assert!(si2 != si || sr2 != sr, "identity rewrite for ({si},{sr})");
        if si != si2 {
            self.update_count(si, -1);
            self.update_count(si2, 1);
        }
        if sr != sr2 {
            self.update_count(sr, -1);
            self.update_count(sr2, 1);
        }
        Some(((si, sr), (si2, sr2)))
    }

    /// The safe batch size for the current configuration, or `None` when
    /// productive weight is not purely equal-rank or the safe size is too
    /// small to pay for itself.
    fn batch_size(&mut self) -> Option<u64> {
        let w = self.eq.total();
        if w == 0 || self.xx_weight() != 0 || self.cross_weight() != 0 {
            return None;
        }
        if self.batches_since_refresh >= MAX_REFRESH_INTERVAL {
            self.refresh_max_eq_count();
        }
        // Cap the expected per-state draw at (c_s − 1)/8: weights drift by
        // at most ~25% within a batch and clipping is a tail event.
        let b = w / (8 * self.max_eq_count.max(1));
        if b >= MIN_BATCH {
            return Some(b);
        }
        // The tracked bound only grows between refreshes, so a stale-high
        // value could disable batching permanently. If a fresh bound could
        // possibly change the verdict, refresh once before giving up
        // (`batches_since_refresh > 0` caps this at one rescue scan per
        // run of batches).
        if self.batches_since_refresh > 0 && w / 8 >= MIN_BATCH {
            self.refresh_max_eq_count();
            let b = w / (8 * self.max_eq_count.max(1));
            if b >= MIN_BATCH {
                return Some(b);
            }
        }
        None
    }

    /// Decide the next quantum: `Some(b)` = batch of `b`, `None` = one
    /// exact step. Shared by the observed and unobserved run loops so
    /// both consume the RNG identically for a given seed.
    fn decide_batch(&mut self) -> Option<u64> {
        if !self.batching {
            return None;
        }
        if self.exact_steps_until_recheck == 0 {
            if let Some(b) = self.batch_size() {
                return Some(b);
            }
            self.exact_steps_until_recheck = EXACT_RECHECK_INTERVAL;
        }
        self.exact_steps_until_recheck -= 1;
        None
    }

    fn refresh_max_eq_count(&mut self) {
        self.batches_since_refresh = 0;
        let mut max = 1u64;
        for s in 0..self.num_ranks {
            if self.has_eq[s] {
                max = max.max(self.counts[s] as u64);
            }
        }
        self.max_eq_count = max;
    }

    /// Execute one batch of `b` statistically-exchangeable productive
    /// steps with frozen weights. Returns the number actually applied
    /// (≥ 1; per-state clipping can shave the tail).
    fn step_batch(&mut self, b: u64) -> u64 {
        let w = self.eq.total();
        let p = w as f64 / self.ordered_pairs as f64;
        self.batches_since_refresh += 1;

        let mut split = std::mem::take(&mut self.split_scratch);
        split.clear();
        self.eq.split(b, &mut self.rng, &mut split);

        let mut groups = std::mem::take(&mut self.group_scratch);
        groups.clear();
        let mut applied_total = 0u64;
        for &(s, k) in &split {
            let s = s as State;
            let (a, b2) = self.protocol.transition(s, s).unwrap_or_else(|| {
                panic!(
                    "ProductiveClasses declared ({s},{s}) productive but \
                     transition returned None (protocol contract violation)"
                )
            });
            // The weights were frozen at batch start; clip the group so the
            // state keeps enough agents for every applied interaction.
            let c = self.counts[s as usize] as u64;
            let slack = if a == s || b2 == s {
                c.saturating_sub(1)
            } else {
                c / 2
            };
            let k = k.min(slack);
            if k == 0 {
                continue;
            }
            let kd = k as i64;
            if a != s {
                self.update_count(s, -kd);
                self.update_count(a, kd);
            }
            if b2 != s {
                self.update_count(s, -kd);
                self.update_count(b2, kd);
            }
            applied_total += k;
            groups.push(BatchGroup {
                before: (s, s),
                after: (a, b2),
                applied: k,
            });
        }
        debug_assert!(applied_total > 0, "batch applied nothing despite W > 0");
        self.productive += applied_total;
        self.interactions += applied_total + self.rng.neg_binomial(applied_total, p);

        self.split_scratch = split;
        self.group_scratch = groups;
        applied_total
    }

    /// Advance the chain by one quantum: a whole batch when the
    /// configuration is far from silence, one exact productive interaction
    /// otherwise. Returns the number of productive interactions applied,
    /// or `None` if silent.
    pub fn advance_chain(&mut self) -> Option<u64> {
        match self.decide_batch() {
            Some(b) => Some(self.step_batch(b)),
            None => self.step_productive().map(|_| 1),
        }
    }

    /// Run until silent or until more than `max_interactions` have
    /// elapsed. Semantics match the jump simulator.
    ///
    /// # Errors
    ///
    /// Returns [`StabilisationTimeout`] when the cap is exceeded first.
    pub fn run_until_silent(
        &mut self,
        max_interactions: u64,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        loop {
            if self.is_silent() {
                if self.interactions <= max_interactions {
                    return Ok(StabilisationReport {
                        interactions: self.interactions,
                        productive_interactions: self.productive,
                        parallel_time: self.parallel_time(),
                    });
                }
                return Err(StabilisationTimeout {
                    interactions: max_interactions,
                });
            }
            if self.interactions >= max_interactions {
                return Err(StabilisationTimeout {
                    interactions: self.interactions,
                });
            }
            self.advance_chain();
        }
    }

    /// Like [`run_until_silent`](Self::run_until_silent), reporting every
    /// productive rewrite to `observer`. Batched steps coalesce identical
    /// rewrites into one call with their multiplicity; all groups of one
    /// batch are reported with the same post-batch counts and clock.
    ///
    /// # Errors
    ///
    /// Returns [`StabilisationTimeout`] when the cap is exceeded first.
    pub fn run_until_silent_observed(
        &mut self,
        max_interactions: u64,
        observer: &mut dyn CountObserver,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        loop {
            if self.is_silent() {
                if self.interactions <= max_interactions {
                    return Ok(StabilisationReport {
                        interactions: self.interactions,
                        productive_interactions: self.productive,
                        parallel_time: self.parallel_time(),
                    });
                }
                return Err(StabilisationTimeout {
                    interactions: max_interactions,
                });
            }
            if self.interactions >= max_interactions {
                return Err(StabilisationTimeout {
                    interactions: self.interactions,
                });
            }
            match self.decide_batch() {
                Some(b) => {
                    self.step_batch(b);
                    let groups = std::mem::take(&mut self.group_scratch);
                    for g in &groups {
                        observer.on_productive(
                            self.interactions,
                            g.before,
                            g.after,
                            g.applied,
                            &self.counts,
                        );
                    }
                    self.group_scratch = groups;
                }
                None => {
                    if let Some((before, after)) = self.step_productive() {
                        observer.on_productive(
                            self.interactions,
                            before,
                            after,
                            1,
                            &self.counts,
                        );
                    }
                }
            }
        }
    }

    /// Move one agent from state `from` to state `to` (transient-fault
    /// injection). All sampling weights are kept consistent; the
    /// interaction clock is not advanced.
    ///
    /// # Panics
    ///
    /// Panics if `from` is unoccupied or either state id is out of range.
    pub fn inject_fault(&mut self, from: State, to: State) {
        assert!(
            (from as usize) < self.counts.len() && (to as usize) < self.counts.len(),
            "state out of range"
        );
        assert!(self.counts[from as usize] > 0, "state {from} is unoccupied");
        if from == to {
            return;
        }
        self.update_count(from, -1);
        self.update_count(to, 1);
    }

    /// Consume the simulation and return the final occupancy counts.
    pub fn into_counts(self) -> Vec<u32> {
        self.counts
    }

    pub(crate) fn rng_clone(&self) -> Xoshiro256 {
        self.rng.clone()
    }

    pub(crate) fn restore_parts(
        &mut self,
        counts: &[u32],
        interactions: u64,
        productive: u64,
        rng: Xoshiro256,
        ctl: Option<crate::engine::CountControl>,
    ) {
        let batching = self.batching;
        let mut fresh = CountSimulation::from_counts(self.protocol, counts.to_vec(), 0)
            .expect("snapshot counts do not match this protocol");
        fresh.interactions = interactions;
        fresh.productive = productive;
        fresh.rng = rng;
        fresh.batching = batching;
        // Batch decisions depend on this control state; restoring it makes
        // a same-engine restore replay the original trajectory exactly.
        // Cross-engine snapshots carry none — the canonical state computed
        // by `from_counts` is used instead.
        if let Some(ctl) = ctl {
            fresh.max_eq_count = ctl.max_eq_count;
            fresh.batches_since_refresh = ctl.batches_since_refresh;
            fresh.exact_steps_until_recheck = ctl.exact_steps_until_recheck;
        }
        *self = fresh;
    }
}

impl<P: ProductiveClasses + ?Sized> crate::engine::Engine for CountSimulation<'_, P> {
    fn engine_name(&self) -> &'static str {
        "count"
    }

    fn population_size(&self) -> usize {
        self.protocol.population_size()
    }

    fn counts(&self) -> &[u32] {
        &self.counts
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn productive_interactions(&self) -> u64 {
        self.productive
    }

    fn is_silent(&self) -> bool {
        CountSimulation::is_silent(self)
    }

    /// One batch far from silence (`Some(k)`), one exact productive
    /// interaction otherwise (`Some(1)`), `None` when silent.
    fn advance(&mut self) -> Option<u64> {
        self.advance_chain()
    }

    fn run_until_silent(
        &mut self,
        max_interactions: u64,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        CountSimulation::run_until_silent(self, max_interactions)
    }

    fn run_until_silent_observed(
        &mut self,
        max_interactions: u64,
        observer: &mut dyn crate::engine::CountObserver,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        CountSimulation::run_until_silent_observed(self, max_interactions, observer)
    }

    fn inject_state_fault(&mut self, from: State, to: State) {
        CountSimulation::inject_fault(self, from, to);
    }

    fn snapshot(&self) -> crate::engine::EngineSnapshot {
        crate::engine::EngineSnapshot {
            agents: None,
            counts: self.counts.clone(),
            interactions: self.interactions,
            productive: self.productive,
            rng: self.rng_clone(),
            count_ctl: Some(crate::engine::CountControl {
                max_eq_count: self.max_eq_count,
                batches_since_refresh: self.batches_since_refresh,
                exact_steps_until_recheck: self.exact_steps_until_recheck,
            }),
        }
    }

    fn restore(&mut self, snapshot: &crate::engine::EngineSnapshot) {
        self.restore_parts(
            &snapshot.counts,
            snapshot.interactions,
            snapshot.productive,
            snapshot.rng.clone(),
            snapshot.count_ctl,
        );
    }
}

impl<P: ProductiveClasses + ?Sized> std::fmt::Debug for CountSimulation<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountSimulation")
            .field("protocol", &self.protocol.name())
            .field("n", &self.protocol.population_size())
            .field("interactions", &self.interactions)
            .field("productive", &self.productive)
            .field("batching", &self.batching)
            .field("silent", &self.is_silent())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jump::JumpSimulation;
    use crate::protocol::Protocol;

    struct Ag {
        n: usize,
    }
    impl Protocol for Ag {
        fn name(&self) -> &str {
            "A_G"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            if i == r {
                Some((i, (r + 1) % self.n as State))
            } else {
                None
            }
        }
    }
    impl ProductiveClasses for Ag {}

    #[test]
    fn weight_tree_matches_reference() {
        let weights = [3u64, 0, 5, 1, 0, 0, 9, 2, 4, 0, 1];
        let mut t = WeightTree::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            t.set(i, w);
        }
        assert_eq!(t.total(), weights.iter().sum::<u64>());
        assert_eq!(t.weight(6), 9);
        let mut offset = 0u64;
        for (i, &w) in weights.iter().enumerate() {
            if w > 0 {
                assert_eq!(t.sample(offset), i, "slot start {i}");
                assert_eq!(t.sample(offset + w - 1), i, "slot end {i}");
                offset += w;
            }
        }
    }

    #[test]
    fn weight_tree_sample_agrees_with_fenwick() {
        let mut t = WeightTree::new(37);
        let mut f = Fenwick::new(37);
        let mut rng = Xoshiro256::seed_from_u64(3);
        for i in 0..37 {
            let w = rng.below(9);
            t.set(i, w);
            f.set(i, w);
        }
        assert_eq!(t.total(), f.total());
        for target in 0..t.total() {
            assert_eq!(t.sample(target), f.sample(target), "target {target}");
        }
    }

    #[test]
    fn weight_tree_split_conserves_and_tracks_weights() {
        let mut t = WeightTree::new(16);
        for (i, w) in [(0usize, 100u64), (3, 300), (7, 500), (15, 100)] {
            t.set(i, w);
        }
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut totals = [0u64; 16];
        let b = 1000;
        let rounds = 200;
        for _ in 0..rounds {
            let mut out = Vec::new();
            t.split(b, &mut rng, &mut out);
            assert_eq!(out.iter().map(|&(_, k)| k).sum::<u64>(), b);
            for (i, k) in out {
                assert!(t.weight(i) > 0, "slot {i} drawn with zero weight");
                totals[i] += k;
            }
        }
        // Expected proportions 0.1 / 0.3 / 0.5 / 0.1 within a few percent.
        let grand = (b * rounds) as f64;
        for (i, expect) in [(0usize, 0.1), (3, 0.3), (7, 0.5), (15, 0.1)] {
            let got = totals[i] as f64 / grand;
            assert!(
                (got - expect).abs() < 0.02,
                "slot {i}: {got:.3} vs {expect}"
            );
        }
    }

    #[test]
    fn exact_mode_is_trace_identical_to_jump() {
        let p = Ag { n: 200 };
        let mut jump = JumpSimulation::new(&p, vec![0; 200], 77).unwrap();
        let mut count =
            CountSimulation::new(&p, vec![0; 200], 77).unwrap().with_batching(false);
        loop {
            let j = jump.step_productive();
            let c = count.step_productive();
            assert_eq!(j, c);
            assert_eq!(jump.interactions(), count.interactions());
            assert_eq!(jump.counts(), count.counts());
            if j.is_none() {
                break;
            }
        }
    }

    #[test]
    fn batched_run_reaches_perfect_ranking() {
        let p = Ag { n: 4096 };
        let mut sim = CountSimulation::new(&p, vec![0; 4096], 5).unwrap();
        let rep = sim.run_until_silent(u64::MAX).unwrap();
        assert!(sim.counts().iter().all(|&c| c == 1));
        assert!(rep.productive_interactions >= 4095);
        assert!(rep.interactions >= rep.productive_interactions);
    }

    #[test]
    fn batching_engages_far_from_silence() {
        let p = Ag { n: 4096 };
        let mut sim = CountSimulation::new(&p, vec![0; 4096], 6).unwrap();
        let applied = sim.advance_chain().unwrap();
        assert!(
            applied >= MIN_BATCH,
            "stacked start must batch, applied {applied}"
        );
        // Batched and exact stepping agree on conservation throughout.
        while sim.advance_chain().is_some() {
            assert_eq!(sim.counts().iter().map(|&c| c as u64).sum::<u64>(), 4096);
        }
        assert!(sim.is_silent());
    }

    #[test]
    fn batched_mean_time_matches_exact_chain() {
        // The batched chain is an approximation of the exact chain far
        // from silence; its stabilisation-time mean must track the exact
        // simulator within a few percent.
        let p = Ag { n: 256 };
        let trials = 60u64;
        let mean = |batching: bool| -> f64 {
            (0..trials)
                .map(|t| {
                    let mut s = CountSimulation::new(&p, vec![0; 256], 9000 + t)
                        .unwrap()
                        .with_batching(batching);
                    s.run_until_silent(u64::MAX).unwrap().interactions as f64
                })
                .sum::<f64>()
                / trials as f64
        };
        let batched = mean(true);
        let exact = mean(false);
        let rel = (batched - exact).abs() / exact;
        assert!(
            rel < 0.1,
            "batched mean {batched:.0} vs exact mean {exact:.0} ({rel:.3})"
        );
    }

    #[test]
    fn from_counts_validates_total() {
        let p = Ag { n: 4 };
        assert!(CountSimulation::from_counts(&p, vec![1, 1, 1, 0], 1).is_err());
        assert!(CountSimulation::from_counts(&p, vec![4, 0, 0, 0], 1).is_ok());
        assert!(CountSimulation::from_counts(&p, vec![4, 0, 0], 1).is_err());
    }

    #[test]
    fn timeout_semantics_match_jump() {
        let p = Ag { n: 64 };
        let mut sim = CountSimulation::new(&p, vec![0; 64], 3).unwrap();
        let err = sim.run_until_silent(2).unwrap_err();
        assert!(err.interactions >= 2);
    }

    #[test]
    fn fault_injection_reenables_stepping() {
        let p = Ag { n: 32 };
        let mut sim = CountSimulation::new(&p, (0..32).collect(), 11).unwrap();
        assert!(sim.is_silent());
        sim.inject_fault(3, 9);
        assert!(!sim.is_silent());
        sim.run_until_silent(u64::MAX).unwrap();
        assert!(sim.counts().iter().all(|&c| c == 1));
    }

    #[test]
    fn snapshot_restore_replays_exactly_while_batching() {
        use crate::engine::Engine;
        // n large enough that batch mode is active at snapshot time; the
        // snapshot must carry the batch-scheduling state so the restored
        // run replays the original continuation draw-for-draw.
        let p = Ag { n: 4096 };
        let mut sim = CountSimulation::new(&p, vec![0; 4096], 77).unwrap();
        for _ in 0..5 {
            sim.advance_chain();
        }
        let snap = Engine::snapshot(&sim);
        let cont: Vec<(u64, u64)> = (0..40)
            .map(|_| {
                sim.advance_chain();
                (sim.interactions(), sim.productive_interactions())
            })
            .collect();
        let counts_a = sim.counts().to_vec();
        Engine::restore(&mut sim, &snap);
        let replay: Vec<(u64, u64)> = (0..40)
            .map(|_| {
                sim.advance_chain();
                (sim.interactions(), sim.productive_interactions())
            })
            .collect();
        assert_eq!(cont, replay, "restored run must replay the original");
        assert_eq!(counts_a, sim.counts());
    }

    #[test]
    fn observed_and_unobserved_runs_are_identical() {
        use crate::engine::NullCountObserver;
        // Both entry points must share the batch/exact decision schedule,
        // otherwise the same seed yields different trajectories.
        let p = Ag { n: 2048 };
        let mut plain = CountSimulation::new(&p, vec![0; 2048], 13).unwrap();
        let rp = plain.run_until_silent(u64::MAX).unwrap();
        let mut observed = CountSimulation::new(&p, vec![0; 2048], 13).unwrap();
        let ro = observed
            .run_until_silent_observed(u64::MAX, &mut NullCountObserver)
            .unwrap();
        assert_eq!(rp.interactions, ro.interactions);
        assert_eq!(rp.productive_interactions, ro.productive_interactions);
        assert_eq!(plain.counts(), observed.counts());
    }

    #[test]
    fn stale_max_count_bound_cannot_disable_batching_permanently() {
        // Start stacked so max_eq_count is learned high, let the mass
        // disperse, then verify batches keep firing once the true maximum
        // has dropped (the rescue refresh in batch_size).
        let p = Ag { n: 8192 };
        let mut sim = CountSimulation::new(&p, vec![0; 8192], 3).unwrap();
        let mut batched_quanta = 0u64;
        let mut total_quanta = 0u64;
        while let Some(applied) = sim.advance_chain() {
            total_quanta += 1;
            if applied > 1 {
                batched_quanta += 1;
            }
            if total_quanta > 50_000_000 {
                break;
            }
        }
        assert!(sim.is_silent());
        // Far from silence the overwhelming majority of productive work
        // must happen in batches; without the rescue the stale stacked
        // bound (8192) would throttle b below MIN_BATCH long before the
        // weight support actually thins out.
        assert!(
            batched_quanta > 100,
            "only {batched_quanta} of {total_quanta} quanta were batches"
        );
    }

    #[test]
    fn deterministic_given_seed_with_batching() {
        let p = Ag { n: 512 };
        let run = |seed| {
            let mut s = CountSimulation::new(&p, vec![7; 512], seed).unwrap();
            s.run_until_silent(u64::MAX).unwrap().interactions
        };
        assert_eq!(run(31), run(31));
    }
}
