//! Fenwick (binary indexed) tree over `u64` weights with O(log n) point
//! updates and O(log n) weighted sampling.
//!
//! The jump-chain simulator keeps one Fenwick tree of per-state productive
//! weights `c_s(c_s − 1)` and one of raw occupancies `c_s`; both need fast
//! "sample an index proportional to weight" queries, which the classic
//! Fenwick descend provides.
//!
//! # Examples
//!
//! ```
//! use ssr_engine::fenwick::Fenwick;
//!
//! let mut f = Fenwick::new(4);
//! f.set(0, 1);
//! f.set(2, 3);
//! assert_eq!(f.total(), 4);
//! assert_eq!(f.sample(0), 0);
//! assert_eq!(f.sample(1), 2);
//! assert_eq!(f.sample(3), 2);
//! ```

/// Fenwick tree over non-negative `u64` weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fenwick {
    /// 1-based internal array; `tree[i]` covers a range ending at `i`.
    tree: Vec<u64>,
    /// Cached current weights for O(1) reads and delta computation.
    weights: Vec<u64>,
    /// Cached total weight.
    total: u64,
    /// Largest power of two `<= len`, used by the descend.
    top_bit: usize,
}

impl Fenwick {
    /// Create a tree of `len` zero weights.
    pub fn new(len: usize) -> Self {
        let top_bit = if len == 0 {
            0
        } else {
            1usize << (usize::BITS - 1 - len.leading_zeros())
        };
        Fenwick {
            tree: vec![0; len + 1],
            weights: vec![0; len],
            total: 0,
            top_bit,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current weight at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn weight(&self, index: usize) -> u64 {
        self.weights[index]
    }

    /// Sum of all weights.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Set the weight at `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: u64) {
        let old = self.weights[index];
        if old == value {
            return;
        }
        self.weights[index] = value;
        if value >= old {
            let delta = value - old;
            self.total += delta;
            let mut i = index + 1;
            while i < self.tree.len() {
                self.tree[i] += delta;
                i += i & i.wrapping_neg();
            }
        } else {
            let delta = old - value;
            self.total -= delta;
            let mut i = index + 1;
            while i < self.tree.len() {
                self.tree[i] -= delta;
                i += i & i.wrapping_neg();
            }
        }
    }

    /// Prefix sum of weights over `0..=index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn prefix_sum(&self, index: usize) -> u64 {
        assert!(index < self.len());
        let mut i = index + 1;
        let mut acc = 0;
        while i > 0 {
            acc += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        acc
    }

    /// Smallest `index` such that `prefix_sum(index) > target`, i.e. the
    /// slot containing offset `target` when weights are laid end to end.
    ///
    /// Sampling `target` uniformly from `[0, total())` yields an index
    /// distributed proportionally to its weight.
    ///
    /// # Panics
    ///
    /// Panics if `target >= total()`.
    #[inline]
    pub fn sample(&self, mut target: u64) -> usize {
        debug_assert!(target < self.total, "sample target out of range");
        let mut pos = 0usize;
        let mut step = self.top_bit;
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        // pos is the count of full slots passed; the sampled index is pos.
        debug_assert!(pos < self.len());
        debug_assert!(self.weights[pos] > 0, "sampled a zero-weight slot");
        pos
    }

    /// Reset every weight to zero.
    pub fn clear(&mut self) {
        self.tree.iter_mut().for_each(|w| *w = 0);
        self.weights.iter_mut().for_each(|w| *w = 0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(0);
        assert_eq!(f.total(), 0);
        assert!(f.is_empty());
    }

    #[test]
    fn set_and_total() {
        let mut f = Fenwick::new(10);
        f.set(3, 5);
        f.set(7, 2);
        assert_eq!(f.total(), 7);
        f.set(3, 1);
        assert_eq!(f.total(), 3);
        assert_eq!(f.weight(3), 1);
        f.set(3, 0);
        assert_eq!(f.total(), 2);
    }

    #[test]
    fn prefix_sums_match_naive() {
        let mut f = Fenwick::new(17);
        let weights = [3u64, 0, 5, 1, 0, 0, 9, 2, 4, 0, 1, 1, 7, 0, 0, 2, 6];
        for (i, &w) in weights.iter().enumerate() {
            f.set(i, w);
        }
        let mut acc = 0;
        for (i, &w) in weights.iter().enumerate() {
            acc += w;
            assert_eq!(f.prefix_sum(i), acc, "prefix at {i}");
        }
    }

    #[test]
    fn sample_covers_each_weighted_slot() {
        let mut f = Fenwick::new(6);
        let weights = [2u64, 0, 3, 0, 0, 1];
        for (i, &w) in weights.iter().enumerate() {
            f.set(i, w);
        }
        // Deterministic: walk every offset and check the slot boundaries.
        let expected = [0, 0, 2, 2, 2, 5];
        for (t, &e) in expected.iter().enumerate() {
            assert_eq!(f.sample(t as u64), e, "target {t}");
        }
    }

    #[test]
    fn sample_distribution_proportional_to_weight() {
        let mut f = Fenwick::new(8);
        let weights = [1u64, 2, 0, 4, 0, 8, 0, 1];
        for (i, &w) in weights.iter().enumerate() {
            f.set(i, w);
        }
        let mut rng = Xoshiro256::seed_from_u64(5);
        let trials = 160_000u64;
        let mut hist = [0u64; 8];
        for _ in 0..trials {
            let t = rng.below(f.total());
            hist[f.sample(t)] += 1;
        }
        let total_w: u64 = weights.iter().sum();
        for i in 0..8 {
            let expected = trials * weights[i] / total_w;
            if weights[i] == 0 {
                assert_eq!(hist[i], 0);
            } else {
                let diff = (hist[i] as i64 - expected as i64).abs();
                assert!(
                    diff < (expected as i64 / 10).max(300),
                    "slot {i}: {} vs ~{expected}",
                    hist[i]
                );
            }
        }
    }

    #[test]
    fn non_power_of_two_lengths() {
        for len in [1usize, 2, 3, 5, 6, 7, 9, 100, 1023, 1025] {
            let mut f = Fenwick::new(len);
            for i in 0..len {
                f.set(i, (i as u64 % 3) + 1);
            }
            // sample every boundary offset
            let mut acc = 0;
            for i in 0..len {
                assert_eq!(f.sample(acc), i, "len {len} slot {i}");
                acc += f.weight(i);
            }
            assert_eq!(acc, f.total());
        }
    }

    #[test]
    fn clear_resets() {
        let mut f = Fenwick::new(4);
        f.set(1, 10);
        f.clear();
        assert_eq!(f.total(), 0);
        assert_eq!(f.weight(1), 0);
        f.set(2, 3);
        assert_eq!(f.sample(0), 2);
    }
}
