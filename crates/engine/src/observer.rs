//! Observation hooks for the naive simulator.
//!
//! Observers are invoked on every **productive** interaction (null
//! interactions cannot change any quantity derived from the configuration,
//! so nothing is lost by skipping them) and receive the post-transition
//! occupancy counts. They power the invariant tests for the paper's Facts
//! and Lemmas, and the time-series recordings in the experiment binaries.

use crate::protocol::State;

/// A single productive interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionEvent {
    /// Index of the initiating agent.
    pub initiator: usize,
    /// Index of the responding agent.
    pub responder: usize,
    /// States before the interaction `(initiator, responder)`.
    pub before: (State, State),
    /// States after the interaction `(initiator, responder)`.
    pub after: (State, State),
}

/// Receives productive interactions from [`crate::sim::Simulation`].
pub trait Observer {
    /// Called after a productive interaction has been applied.
    ///
    /// `step` is the total interaction count (nulls included) and `counts`
    /// the post-transition per-state occupancy.
    fn on_transition(&mut self, step: u64, event: &TransitionEvent, counts: &[u32]);
}

/// Ignores everything; compiles away in the hot loop.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_transition(&mut self, _step: u64, _event: &TransitionEvent, _counts: &[u32]) {}
}

/// Adapts a closure into an [`Observer`].
///
/// # Examples
///
/// ```
/// use ssr_engine::observer::{FnObserver, Observer, TransitionEvent};
///
/// let mut productive = 0u64;
/// {
///     let mut obs = FnObserver::new(|_step, _ev: &TransitionEvent, _c: &[u32]| {
///         productive += 1;
///     });
///     obs.on_transition(3, &TransitionEvent {
///         initiator: 0, responder: 1, before: (0, 0), after: (0, 1),
///     }, &[1, 1]);
/// }
/// assert_eq!(productive, 1);
/// ```
#[derive(Debug)]
pub struct FnObserver<F>(F);

impl<F: FnMut(u64, &TransitionEvent, &[u32])> FnObserver<F> {
    /// Wrap a closure.
    pub fn new(f: F) -> Self {
        FnObserver(f)
    }
}

impl<F: FnMut(u64, &TransitionEvent, &[u32])> Observer for FnObserver<F> {
    #[inline]
    fn on_transition(&mut self, step: u64, event: &TransitionEvent, counts: &[u32]) {
        (self.0)(step, event, counts)
    }
}

/// Checks a configuration invariant after every productive interaction and
/// records the first violation instead of panicking, so tests can assert on
/// it with context.
pub struct InvariantChecker<F> {
    check: F,
    violation: Option<(u64, String)>,
    name: &'static str,
}

impl<F: FnMut(&[u32]) -> Result<(), String>> InvariantChecker<F> {
    /// Create a checker with a diagnostic name.
    pub fn new(name: &'static str, check: F) -> Self {
        InvariantChecker {
            check,
            violation: None,
            name,
        }
    }

    /// First violation, if any: `(step, message)`.
    pub fn violation(&self) -> Option<&(u64, String)> {
        self.violation.as_ref()
    }

    /// Panic with context if the invariant was ever violated.
    ///
    /// # Panics
    ///
    /// Panics when a violation was recorded.
    pub fn assert_held(&self) {
        if let Some((step, msg)) = &self.violation {
            panic!(
                "invariant '{}' violated at interaction {step}: {msg}",
                self.name
            );
        }
    }
}

impl<F: FnMut(&[u32]) -> Result<(), String>> Observer for InvariantChecker<F> {
    fn on_transition(&mut self, step: u64, _event: &TransitionEvent, counts: &[u32]) {
        if self.violation.is_none() {
            if let Err(msg) = (self.check)(counts) {
                self.violation = Some((step, msg));
            }
        }
    }
}

impl<F> std::fmt::Debug for InvariantChecker<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvariantChecker")
            .field("name", &self.name)
            .field("violation", &self.violation)
            .finish()
    }
}

/// Records `(interaction, value)` samples of a scalar metric, at most once
/// every `resolution` interactions (metrics derived from the configuration
/// only change on productive steps, so this loses nothing between samples).
pub struct TimeSeries<F> {
    metric: F,
    resolution: u64,
    last_recorded: Option<u64>,
    samples: Vec<(u64, f64)>,
}

impl<F: FnMut(&[u32]) -> f64> TimeSeries<F> {
    /// Record at most one sample per `resolution` interactions.
    pub fn new(resolution: u64, metric: F) -> Self {
        TimeSeries {
            metric,
            resolution: resolution.max(1),
            last_recorded: None,
            samples: Vec::new(),
        }
    }

    /// The recorded `(interaction, value)` samples.
    pub fn samples(&self) -> &[(u64, f64)] {
        &self.samples
    }

    /// Consume the recorder, returning its samples.
    pub fn into_samples(self) -> Vec<(u64, f64)> {
        self.samples
    }
}

impl<F: FnMut(&[u32]) -> f64> Observer for TimeSeries<F> {
    fn on_transition(&mut self, step: u64, _event: &TransitionEvent, counts: &[u32]) {
        let due = match self.last_recorded {
            None => true,
            Some(last) => step - last >= self.resolution,
        };
        if due {
            self.samples.push((step, (self.metric)(counts)));
            self.last_recorded = Some(step);
        }
    }
}

impl<F> std::fmt::Debug for TimeSeries<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSeries")
            .field("resolution", &self.resolution)
            .field("samples", &self.samples.len())
            .finish()
    }
}

/// Bounded log of the most recent productive interactions (ring buffer) —
/// post-mortem debugging for tests and examples without unbounded memory.
#[derive(Debug, Clone)]
pub struct EventLog {
    capacity: usize,
    events: std::collections::VecDeque<(u64, TransitionEvent)>,
    total: u64,
}

impl EventLog {
    /// Keep at most `capacity` recent events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event log needs positive capacity");
        EventLog {
            capacity,
            events: std::collections::VecDeque::with_capacity(capacity),
            total: 0,
        }
    }

    /// Recorded `(interaction, event)` pairs, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, TransitionEvent)> {
        self.events.iter()
    }

    /// Total productive interactions observed (including evicted ones).
    pub fn total_observed(&self) -> u64 {
        self.total
    }

    /// The most recent event, if any.
    pub fn last(&self) -> Option<&(u64, TransitionEvent)> {
        self.events.back()
    }
}

impl Observer for EventLog {
    fn on_transition(&mut self, step: u64, event: &TransitionEvent, _counts: &[u32]) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back((step, *event));
        self.total += 1;
    }
}

/// Chains two observers, invoking both.
#[derive(Debug)]
pub struct Pair<A, B>(pub A, pub B);

impl<A: Observer, B: Observer> Observer for Pair<A, B> {
    #[inline]
    fn on_transition(&mut self, step: u64, event: &TransitionEvent, counts: &[u32]) {
        self.0.on_transition(step, event, counts);
        self.1.on_transition(step, event, counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev() -> TransitionEvent {
        TransitionEvent {
            initiator: 0,
            responder: 1,
            before: (0, 0),
            after: (0, 1),
        }
    }

    #[test]
    fn invariant_checker_records_first_violation_only() {
        let mut calls = 0;
        let mut chk = InvariantChecker::new("test", |_c: &[u32]| {
            calls += 1;
            Err("boom".to_string())
        });
        chk.on_transition(5, &ev(), &[1, 1]);
        chk.on_transition(9, &ev(), &[1, 1]);
        let (step, msg) = chk.violation().unwrap();
        assert_eq!(*step, 5);
        assert_eq!(msg, "boom");
    }

    #[test]
    #[should_panic(expected = "invariant 'k'")]
    fn assert_held_panics_on_violation() {
        let mut chk = InvariantChecker::new("k", |_c: &[u32]| Err("x".into()));
        chk.on_transition(1, &ev(), &[]);
        chk.assert_held();
    }

    #[test]
    fn invariant_checker_passes_clean() {
        let mut chk = InvariantChecker::new("ok", |_c: &[u32]| Ok(()));
        chk.on_transition(1, &ev(), &[]);
        chk.assert_held();
        assert!(chk.violation().is_none());
    }

    #[test]
    fn time_series_respects_resolution() {
        let mut ts = TimeSeries::new(10, |c: &[u32]| c.iter().sum::<u32>() as f64);
        for step in [1u64, 2, 3, 11, 12, 30] {
            ts.on_transition(step, &ev(), &[2, 3]);
        }
        let steps: Vec<u64> = ts.samples().iter().map(|&(s, _)| s).collect();
        assert_eq!(steps, vec![1, 11, 30]);
        assert!(ts.samples().iter().all(|&(_, v)| v == 5.0));
    }

    #[test]
    fn event_log_bounds_memory_and_counts_all() {
        let mut log = EventLog::new(3);
        for step in 1..=10u64 {
            log.on_transition(step, &ev(), &[]);
        }
        assert_eq!(log.total_observed(), 10);
        let steps: Vec<u64> = log.events().map(|&(s, _)| s).collect();
        assert_eq!(steps, vec![8, 9, 10]);
        assert_eq!(log.last().unwrap().0, 10);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn event_log_rejects_zero_capacity() {
        EventLog::new(0);
    }

    #[test]
    fn pair_invokes_both() {
        let mut a = 0u64;
        let mut b = 0u64;
        {
            let mut p = Pair(
                FnObserver::new(|_, _: &TransitionEvent, _: &[u32]| a += 1),
                FnObserver::new(|_, _: &TransitionEvent, _: &[u32]| b += 1),
            );
            p.on_transition(1, &ev(), &[]);
            p.on_transition(2, &ev(), &[]);
        }
        assert_eq!((a, b), (2, 2));
    }
}
