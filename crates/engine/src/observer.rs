//! Observation hooks.
//!
//! Observers are invoked on every **productive** interaction (null
//! interactions cannot change any quantity derived from the configuration,
//! so nothing is lost by skipping them) and receive the post-transition
//! occupancy counts. They power the invariant tests for the paper's Facts
//! and Lemmas, and the time-series recordings in the experiment binaries.
//!
//! The [`Observer`] trait here is the naive simulator's agent-level hook.
//! The engine-level, counts-only hook shared by all three engines is
//! [`CountObserver`](crate::engine::CountObserver); this module provides
//! its main production implementation, [`RecoveryTracker`], which
//! integrates availability and `k`-distance excursions for the adversary
//! subsystem ([`run_with_plan`](crate::faults::run_with_plan)).

use crate::engine::CountObserver;
use crate::faults::BurstRecord;
use crate::protocol::State;

/// A single productive interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionEvent {
    /// Index of the initiating agent.
    pub initiator: usize,
    /// Index of the responding agent.
    pub responder: usize,
    /// States before the interaction `(initiator, responder)`.
    pub before: (State, State),
    /// States after the interaction `(initiator, responder)`.
    pub after: (State, State),
}

/// Receives productive interactions from [`crate::sim::Simulation`].
pub trait Observer {
    /// Called after a productive interaction has been applied.
    ///
    /// `step` is the total interaction count (nulls included) and `counts`
    /// the post-transition per-state occupancy.
    fn on_transition(&mut self, step: u64, event: &TransitionEvent, counts: &[u32]);
}

/// Ignores everything; compiles away in the hot loop.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_transition(&mut self, _step: u64, _event: &TransitionEvent, _counts: &[u32]) {}
}

/// Adapts a closure into an [`Observer`].
///
/// # Examples
///
/// ```
/// use ssr_engine::observer::{FnObserver, Observer, TransitionEvent};
///
/// let mut productive = 0u64;
/// {
///     let mut obs = FnObserver::new(|_step, _ev: &TransitionEvent, _c: &[u32]| {
///         productive += 1;
///     });
///     obs.on_transition(3, &TransitionEvent {
///         initiator: 0, responder: 1, before: (0, 0), after: (0, 1),
///     }, &[1, 1]);
/// }
/// assert_eq!(productive, 1);
/// ```
#[derive(Debug)]
pub struct FnObserver<F>(F);

impl<F: FnMut(u64, &TransitionEvent, &[u32])> FnObserver<F> {
    /// Wrap a closure.
    pub fn new(f: F) -> Self {
        FnObserver(f)
    }
}

impl<F: FnMut(u64, &TransitionEvent, &[u32])> Observer for FnObserver<F> {
    #[inline]
    fn on_transition(&mut self, step: u64, event: &TransitionEvent, counts: &[u32]) {
        (self.0)(step, event, counts)
    }
}

/// Checks a configuration invariant after every productive interaction and
/// records the first violation instead of panicking, so tests can assert on
/// it with context.
pub struct InvariantChecker<F> {
    check: F,
    violation: Option<(u64, String)>,
    name: &'static str,
}

impl<F: FnMut(&[u32]) -> Result<(), String>> InvariantChecker<F> {
    /// Create a checker with a diagnostic name.
    pub fn new(name: &'static str, check: F) -> Self {
        InvariantChecker {
            check,
            violation: None,
            name,
        }
    }

    /// First violation, if any: `(step, message)`.
    pub fn violation(&self) -> Option<&(u64, String)> {
        self.violation.as_ref()
    }

    /// Panic with context if the invariant was ever violated.
    ///
    /// # Panics
    ///
    /// Panics when a violation was recorded.
    pub fn assert_held(&self) {
        if let Some((step, msg)) = &self.violation {
            panic!(
                "invariant '{}' violated at interaction {step}: {msg}",
                self.name
            );
        }
    }
}

impl<F: FnMut(&[u32]) -> Result<(), String>> Observer for InvariantChecker<F> {
    fn on_transition(&mut self, step: u64, _event: &TransitionEvent, counts: &[u32]) {
        if self.violation.is_none() {
            if let Err(msg) = (self.check)(counts) {
                self.violation = Some((step, msg));
            }
        }
    }
}

impl<F> std::fmt::Debug for InvariantChecker<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvariantChecker")
            .field("name", &self.name)
            .field("violation", &self.violation)
            .finish()
    }
}

/// Records `(interaction, value)` samples of a scalar metric, at most once
/// every `resolution` interactions (metrics derived from the configuration
/// only change on productive steps, so this loses nothing between samples).
pub struct TimeSeries<F> {
    metric: F,
    resolution: u64,
    last_recorded: Option<u64>,
    samples: Vec<(u64, f64)>,
}

impl<F: FnMut(&[u32]) -> f64> TimeSeries<F> {
    /// Record at most one sample per `resolution` interactions.
    pub fn new(resolution: u64, metric: F) -> Self {
        TimeSeries {
            metric,
            resolution: resolution.max(1),
            last_recorded: None,
            samples: Vec::new(),
        }
    }

    /// The recorded `(interaction, value)` samples.
    pub fn samples(&self) -> &[(u64, f64)] {
        &self.samples
    }

    /// Consume the recorder, returning its samples.
    pub fn into_samples(self) -> Vec<(u64, f64)> {
        self.samples
    }
}

impl<F: FnMut(&[u32]) -> f64> Observer for TimeSeries<F> {
    fn on_transition(&mut self, step: u64, _event: &TransitionEvent, counts: &[u32]) {
        let due = match self.last_recorded {
            None => true,
            Some(last) => step - last >= self.resolution,
        };
        if due {
            self.samples.push((step, (self.metric)(counts)));
            self.last_recorded = Some(step);
        }
    }
}

impl<F> std::fmt::Debug for TimeSeries<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSeries")
            .field("resolution", &self.resolution)
            .field("samples", &self.samples.len())
            .finish()
    }
}

/// Bounded log of the most recent productive interactions (ring buffer) —
/// post-mortem debugging for tests and examples without unbounded memory.
#[derive(Debug, Clone)]
pub struct EventLog {
    capacity: usize,
    events: std::collections::VecDeque<(u64, TransitionEvent)>,
    total: u64,
}

impl EventLog {
    /// Keep at most `capacity` recent events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event log needs positive capacity");
        EventLog {
            capacity,
            events: std::collections::VecDeque::with_capacity(capacity),
            total: 0,
        }
    }

    /// Recorded `(interaction, event)` pairs, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, TransitionEvent)> {
        self.events.iter()
    }

    /// Total productive interactions observed (including evicted ones).
    pub fn total_observed(&self) -> u64 {
        self.total
    }

    /// The most recent event, if any.
    pub fn last(&self) -> Option<&(u64, TransitionEvent)> {
        self.events.back()
    }
}

impl Observer for EventLog {
    fn on_transition(&mut self, step: u64, event: &TransitionEvent, _counts: &[u32]) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back((step, *event));
        self.total += 1;
    }
}

/// Integrates steady-state observables for a fault-plan run: time-weighted
/// availability (fraction of interaction time with `k`-distance zero),
/// mean and maximum `k` excursion, and per-burst recovery times.
///
/// The tracker keeps its own occupancy ledger, updated from
/// [`CountObserver`] rewrites and from fault injections reported by the
/// plan executor, so it never has to rescan the engine's counts. Time is
/// integrated on the interaction clock: each observed instant `t` closes
/// the interval `[last, t)` at the `k` value that held throughout it.
///
/// Count-engine batch groups all report the post-batch clock and counts,
/// so a batch integrates as a single step — availability inside a batch is
/// resolved at batch granularity (exact-stepping engines resolve it per
/// interaction). The observer clock argument is `u64`; beyond `u64::MAX`
/// interactions the plan executor advances the tracker from the engine's
/// wide clock instead, so nothing saturates in practice.
#[derive(Debug)]
pub struct RecoveryTracker {
    counts: Vec<u32>,
    num_rank_states: usize,
    start: u128,
    last: u128,
    time_ok: u128,
    k_time: f64,
    k: usize,
    max_k: usize,
    /// Open bursts: `(opened_at_clock, scheduled_time, faults, k_after)`.
    open: Vec<(u128, u128, u32, usize)>,
    closed: Vec<BurstRecord>,
}

impl RecoveryTracker {
    /// Start tracking from configuration `counts` at clock time `start`.
    pub fn new(counts: &[u32], num_rank_states: usize, start: u128) -> Self {
        let k = counts[..num_rank_states]
            .iter()
            .filter(|&&c| c == 0)
            .count();
        RecoveryTracker {
            counts: counts.to_vec(),
            num_rank_states,
            start,
            last: start,
            time_ok: 0,
            k_time: 0.0,
            k,
            max_k: k,
            open: Vec::new(),
            closed: Vec::new(),
        }
    }

    /// The current `k`-distance (unoccupied rank states) of the ledger.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Maximum `k`-distance excursion observed so far.
    pub fn max_k(&self) -> usize {
        self.max_k
    }

    /// Integrate elapsed time up to clock `t` at the current `k` value.
    /// No-op if `t` is not ahead of the last observed instant.
    pub fn advance(&mut self, t: u128) {
        if t <= self.last {
            return;
        }
        let dt = t - self.last;
        if self.k == 0 {
            self.time_ok += dt;
        }
        self.k_time += self.k as f64 * dt as f64;
        self.last = t;
    }

    /// Apply one fault injection (`from → to`) to the ledger. The caller
    /// must [`advance`](Self::advance) to the injection instant first.
    pub fn apply_fault(&mut self, from: State, to: State) {
        self.apply_deltas(&[(from as usize, -1), (to as usize, 1)]);
    }

    /// Open a recovery record for a burst injected at clock `now` that
    /// was scheduled for `scheduled`. If the burst left `k` at zero it
    /// closes immediately with a zero recovery time.
    pub fn open_burst(&mut self, now: u128, scheduled: u128, faults: u32) {
        if self.k == 0 {
            self.closed.push(BurstRecord {
                time: scheduled,
                faults,
                k_after: 0,
                recovery: Some(0),
            });
        } else {
            self.open.push((now, scheduled, faults, self.k));
        }
    }

    /// Integrate up to the final clock and close any still-open bursts as
    /// unrecovered.
    pub fn finalize(&mut self, t: u128) {
        self.advance(t);
        for (_, scheduled, faults, k_after) in self.open.drain(..) {
            self.closed.push(BurstRecord {
                time: scheduled,
                faults,
                k_after,
                recovery: None,
            });
        }
    }

    /// Fraction of integrated time with `k == 0`; `1.0` for an empty span.
    pub fn availability(&self) -> f64 {
        let span = self.last - self.start;
        if span == 0 {
            1.0
        } else {
            self.time_ok as f64 / span as f64
        }
    }

    /// Time-weighted mean `k`-distance; `0.0` for an empty span.
    pub fn mean_k(&self) -> f64 {
        let span = self.last - self.start;
        if span == 0 {
            0.0
        } else {
            self.k_time / span as f64
        }
    }

    /// Take the closed burst records, sorted by scheduled time.
    pub fn take_bursts(&mut self) -> Vec<BurstRecord> {
        let mut bursts = std::mem::take(&mut self.closed);
        bursts.sort_by_key(|b| b.time);
        bursts
    }

    /// Apply merged occupancy deltas, tracking `k` by zero-crossings of
    /// rank-state occupancies; merging first avoids transient underflow
    /// when a rewrite touches the same state twice.
    fn apply_deltas(&mut self, deltas: &[(usize, i64)]) {
        for &(s, d) in deltas {
            if d == 0 {
                continue;
            }
            let old = self.counts[s];
            let new = old as i64 + d;
            debug_assert!(new >= 0, "state {s} occupancy would go negative");
            let new = new as u32;
            self.counts[s] = new;
            if s < self.num_rank_states {
                if old == 0 && new > 0 {
                    self.k -= 1;
                } else if old > 0 && new == 0 {
                    self.k += 1;
                    self.max_k = self.max_k.max(self.k);
                }
            }
        }
        if self.k == 0 && !self.open.is_empty() {
            for (opened_at, scheduled, faults, k_after) in self.open.drain(..) {
                self.closed.push(BurstRecord {
                    time: scheduled,
                    faults,
                    k_after,
                    recovery: Some(self.last - opened_at),
                });
            }
        }
    }
}

impl CountObserver for RecoveryTracker {
    fn on_productive(
        &mut self,
        interactions: u64,
        before: (State, State),
        after: (State, State),
        multiplicity: u64,
        _counts: &[u32],
    ) {
        self.advance(interactions as u128);
        if before == after {
            return;
        }
        let m = multiplicity as i64;
        let mut deltas = [(0usize, 0i64); 4];
        let mut len = 0;
        for (s, d) in [
            (before.0 as usize, -m),
            (before.1 as usize, -m),
            (after.0 as usize, m),
            (after.1 as usize, m),
        ] {
            match deltas[..len].iter_mut().find(|e| e.0 == s) {
                Some(e) => e.1 += d,
                None => {
                    deltas[len] = (s, d);
                    len += 1;
                }
            }
        }
        self.apply_deltas(&deltas[..len]);
    }
}

/// Chains two observers, invoking both.
#[derive(Debug)]
pub struct Pair<A, B>(pub A, pub B);

impl<A: Observer, B: Observer> Observer for Pair<A, B> {
    #[inline]
    fn on_transition(&mut self, step: u64, event: &TransitionEvent, counts: &[u32]) {
        self.0.on_transition(step, event, counts);
        self.1.on_transition(step, event, counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev() -> TransitionEvent {
        TransitionEvent {
            initiator: 0,
            responder: 1,
            before: (0, 0),
            after: (0, 1),
        }
    }

    #[test]
    fn invariant_checker_records_first_violation_only() {
        let mut calls = 0;
        let mut chk = InvariantChecker::new("test", |_c: &[u32]| {
            calls += 1;
            Err("boom".to_string())
        });
        chk.on_transition(5, &ev(), &[1, 1]);
        chk.on_transition(9, &ev(), &[1, 1]);
        let (step, msg) = chk.violation().unwrap();
        assert_eq!(*step, 5);
        assert_eq!(msg, "boom");
    }

    #[test]
    #[should_panic(expected = "invariant 'k'")]
    fn assert_held_panics_on_violation() {
        let mut chk = InvariantChecker::new("k", |_c: &[u32]| Err("x".into()));
        chk.on_transition(1, &ev(), &[]);
        chk.assert_held();
    }

    #[test]
    fn invariant_checker_passes_clean() {
        let mut chk = InvariantChecker::new("ok", |_c: &[u32]| Ok(()));
        chk.on_transition(1, &ev(), &[]);
        chk.assert_held();
        assert!(chk.violation().is_none());
    }

    #[test]
    fn time_series_respects_resolution() {
        let mut ts = TimeSeries::new(10, |c: &[u32]| c.iter().sum::<u32>() as f64);
        for step in [1u64, 2, 3, 11, 12, 30] {
            ts.on_transition(step, &ev(), &[2, 3]);
        }
        let steps: Vec<u64> = ts.samples().iter().map(|&(s, _)| s).collect();
        assert_eq!(steps, vec![1, 11, 30]);
        assert!(ts.samples().iter().all(|&(_, v)| v == 5.0));
    }

    #[test]
    fn event_log_bounds_memory_and_counts_all() {
        let mut log = EventLog::new(3);
        for step in 1..=10u64 {
            log.on_transition(step, &ev(), &[]);
        }
        assert_eq!(log.total_observed(), 10);
        let steps: Vec<u64> = log.events().map(|&(s, _)| s).collect();
        assert_eq!(steps, vec![8, 9, 10]);
        assert_eq!(log.last().unwrap().0, 10);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn event_log_rejects_zero_capacity() {
        EventLog::new(0);
    }

    #[test]
    fn recovery_tracker_integrates_availability_and_recovery() {
        // Perfect 3-rank configuration at t=0.
        let mut tr = RecoveryTracker::new(&[1, 1, 1], 3, 0);
        assert_eq!(tr.k(), 0);
        // Healthy until t=100, then a 1-fault burst empties rank 2.
        tr.advance(100);
        tr.apply_fault(2, 0);
        tr.open_burst(100, 100, 1);
        assert_eq!(tr.k(), 1);
        // A productive rewrite at t=150 repopulates rank 2.
        tr.on_productive(150, (0, 0), (0, 2), 1, &[]);
        assert_eq!(tr.k(), 0);
        tr.finalize(200);
        // Down for [100,150) out of [0,200): availability 0.75.
        assert!((tr.availability() - 0.75).abs() < 1e-12);
        assert!((tr.mean_k() - 0.25).abs() < 1e-12);
        assert_eq!(tr.max_k(), 1);
        let bursts = tr.take_bursts();
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].k_after, 1);
        assert_eq!(bursts[0].recovery, Some(50));
    }

    #[test]
    fn recovery_tracker_closes_unrecovered_bursts_as_none() {
        let mut tr = RecoveryTracker::new(&[2, 1, 0], 3, 0);
        assert_eq!(tr.k(), 1);
        tr.open_burst(0, 0, 3);
        tr.finalize(10);
        let bursts = tr.take_bursts();
        assert_eq!(bursts[0].recovery, None);
        assert!((tr.availability() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_tracker_handles_batched_multiplicity_and_noop_groups() {
        let mut tr = RecoveryTracker::new(&[4, 0, 0], 3, 0);
        assert_eq!(tr.k(), 2);
        // A batch group of 2 identical rewrites (0,0)->(0,1).
        tr.on_productive(80, (0, 0), (0, 1), 2, &[]);
        assert_eq!(tr.k(), 1);
        // No-op group: counts untouched, time still integrates.
        tr.on_productive(90, (1, 1), (1, 1), 5, &[]);
        assert_eq!(tr.k(), 1);
        tr.on_productive(100, (0, 1), (1, 2), 1, &[]);
        assert_eq!(tr.k(), 0);
        tr.finalize(100);
        assert!(tr.availability() < 1e-12);
        assert_eq!(tr.max_k(), 2);
    }

    #[test]
    fn pair_invokes_both() {
        let mut a = 0u64;
        let mut b = 0u64;
        {
            let mut p = Pair(
                FnObserver::new(|_, _: &TransitionEvent, _: &[u32]| a += 1),
                FnObserver::new(|_, _: &TransitionEvent, _: &[u32]| b += 1),
            );
            p.on_transition(1, &ev(), &[]);
            p.on_transition(2, &ev(), &[]);
        }
        assert_eq!((a, b), (2, 2));
    }
}
