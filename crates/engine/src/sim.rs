//! The naive simulator: one uniformly random ordered pair per interaction.
//!
//! This is a literal implementation of the paper's probabilistic model. It
//! tracks per-state occupancy counts incrementally so that silence — by the
//! ranking contract, "all agents in pairwise-distinct rank states" — is an
//! O(1) test, and it exposes [`Observer`] hooks on productive interactions
//! for invariant checking.
//!
//! For long runs dominated by null interactions prefer
//! [`crate::jump::JumpSimulation`], which simulates the identical Markov
//! chain while skipping nulls exactly.
//!
//! # Examples
//!
//! ```
//! use ssr_engine::protocol::{Protocol, State};
//! use ssr_engine::sim::Simulation;
//!
//! struct Ag { n: usize }
//! impl Protocol for Ag {
//!     fn name(&self) -> &str { "A_G" }
//!     fn population_size(&self) -> usize { self.n }
//!     fn num_states(&self) -> usize { self.n }
//!     fn num_rank_states(&self) -> usize { self.n }
//!     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
//!         (i == r).then(|| (i, (r + 1) % self.n as State))
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = Ag { n: 8 };
//! let mut sim = Simulation::new(&p, vec![0; 8], 42)?;
//! let report = sim.run_until_silent(10_000_000)?;
//! assert!(sim.is_silent());
//! assert!(report.interactions > 0);
//! # Ok(())
//! # }
//! ```

use crate::error::{ConfigError, StabilisationTimeout};
use crate::init;
use crate::observer::{NullObserver, Observer, TransitionEvent};
use crate::protocol::{Protocol, State};
use crate::rng::Xoshiro256;

/// Outcome of a run that reached a silent configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilisationReport {
    /// Interactions executed up to (and including) the last productive one,
    /// saturating at `u64::MAX` — the count engine's clock legitimately
    /// passes that at `n ≥ 2³¹`; see
    /// [`interactions_wide`](Self::interactions_wide).
    pub interactions: u64,
    /// Full-width interaction clock, exact past `u64::MAX`. Equals
    /// `interactions` for every engine except count at `n ≥ 2³¹`.
    pub interactions_wide: u128,
    /// Of those, how many actually changed the configuration.
    pub productive_interactions: u64,
    /// Parallel time: `interactions / n`.
    pub parallel_time: f64,
}

/// Naive step-by-step simulation of a protocol on a concrete agent vector.
pub struct Simulation<'a, P: Protocol + ?Sized> {
    protocol: &'a P,
    agents: Vec<State>,
    counts: Vec<u32>,
    /// Cached `protocol.num_rank_states()` — `update_count` sits on the
    /// hot path of every productive interaction and must not go through
    /// the protocol vtable.
    num_ranks: usize,
    /// Σ over rank states of max(c − 1, 0): agents beyond the first in a
    /// rank state.
    duplicate_rank_agents: u64,
    /// Agents currently in extra (non-rank) states.
    extra_agents: u64,
    interactions: u64,
    productive: u64,
    rng: Xoshiro256,
    /// Per-agent Byzantine/stuck-at flags; empty when no overlay is active.
    byz: Vec<bool>,
}

impl<'a, P: Protocol + ?Sized> Simulation<'a, P> {
    /// Start a simulation from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration length differs from the
    /// protocol's population or any state id is out of range.
    pub fn new(protocol: &'a P, config: Vec<State>, seed: u64) -> Result<Self, ConfigError> {
        let n = protocol.population_size();
        if config.len() != n {
            return Err(ConfigError::WrongPopulation {
                expected: n,
                got: config.len(),
            });
        }
        init::validate(&config, protocol.num_states())?;
        let counts = init::counts(&config, protocol.num_states());
        let num_ranks = protocol.num_rank_states();
        let duplicate_rank_agents = counts[..num_ranks]
            .iter()
            .map(|&c| (c as u64).saturating_sub(1))
            .sum();
        let extra_agents = counts[num_ranks..].iter().map(|&c| c as u64).sum();
        Ok(Simulation {
            protocol,
            agents: config,
            counts,
            num_ranks,
            duplicate_rank_agents,
            extra_agents,
            interactions: 0,
            productive: 0,
            rng: Xoshiro256::seed_from_u64(seed),
            byz: Vec::new(),
        })
    }

    /// The protocol being simulated.
    pub fn protocol(&self) -> &P {
        self.protocol
    }

    /// Current per-agent states.
    pub fn agents(&self) -> &[State] {
        &self.agents
    }

    /// Current per-state occupancy counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total interactions so far (including nulls).
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Productive interactions so far.
    pub fn productive_interactions(&self) -> u64 {
        self.productive
    }

    /// Parallel time elapsed: interactions / n.
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.protocol.population_size() as f64
    }

    /// O(1) silence test via the ranking contract: silent iff every agent
    /// occupies its own rank state and no extra state is occupied.
    pub fn is_silent(&self) -> bool {
        self.duplicate_rank_agents == 0 && self.extra_agents == 0
    }

    /// Exhaustive silence verification: checks that **no** ordered pair of
    /// currently occupied states is productive. `O(occupied²)` — intended
    /// for tests; the hot path uses [`is_silent`].
    ///
    /// [`is_silent`]: Simulation::is_silent
    pub fn verify_silent(&self) -> bool {
        let occupied: Vec<State> = (0..self.counts.len())
            .filter(|&s| self.counts[s] > 0)
            .map(|s| s as State)
            .collect();
        for &a in &occupied {
            for &b in &occupied {
                if a == b && self.counts[a as usize] < 2 {
                    continue;
                }
                if self.protocol.transition(a, b).is_some() {
                    return false;
                }
            }
        }
        true
    }

    #[inline]
    fn update_count(&mut self, s: State, delta: i64) {
        let su = s as usize;
        let num_ranks = self.num_ranks;
        let old = self.counts[su] as i64;
        let new = old + delta;
        debug_assert!(new >= 0);
        self.counts[su] = new as u32;
        if su < num_ranks {
            let old_dup = (old - 1).max(0) as u64;
            let new_dup = (new - 1).max(0) as u64;
            self.duplicate_rank_agents = self.duplicate_rank_agents + new_dup - old_dup;
        } else {
            self.extra_agents = (self.extra_agents as i64 + delta) as u64;
        }
    }

    /// Execute one scheduler step. Returns the event if it was productive.
    #[inline]
    pub fn step(&mut self) -> Option<TransitionEvent> {
        let n = self.protocol.population_size();
        debug_assert!(n >= 2, "population protocols need at least two agents");
        let (i, r) = self.rng.ordered_pair(n);
        self.apply_pair(i, r)
    }

    /// Execute one step with the (initiator, responder) pair drawn from an
    /// external [`Scheduler`] instead of the built-in uniform one. The
    /// simulation's own RNG drives the scheduler, so runs remain
    /// deterministic per seed.
    ///
    /// [`Scheduler`]: crate::schedule::Scheduler
    #[inline]
    pub fn step_scheduled<S: crate::schedule::Scheduler>(
        &mut self,
        scheduler: &mut S,
    ) -> Option<TransitionEvent> {
        debug_assert_eq!(
            scheduler.population(),
            self.protocol.population_size(),
            "scheduler population mismatch"
        );
        let (i, r) = scheduler.next_pair(&mut self.rng);
        self.apply_pair(i, r)
    }

    /// Run under an external scheduler until silent or until
    /// `max_interactions` have been executed.
    ///
    /// # Errors
    ///
    /// Returns [`StabilisationTimeout`] when the cap is hit first.
    pub fn run_until_silent_scheduled<S: crate::schedule::Scheduler>(
        &mut self,
        max_interactions: u64,
        scheduler: &mut S,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        loop {
            if self.is_silent() {
                debug_assert!(self.verify_silent());
                return Ok(StabilisationReport {
                    interactions: self.interactions,
                    interactions_wide: self.interactions as u128,
                    productive_interactions: self.productive,
                    parallel_time: self.parallel_time(),
                });
            }
            if self.interactions >= max_interactions {
                return Err(StabilisationTimeout {
                    interactions: self.interactions,
                });
            }
            self.step_scheduled(scheduler);
        }
    }

    /// Apply one interaction to the explicit agent pair, advancing the
    /// interaction clock. Returns the event if it was productive.
    #[inline]
    fn apply_pair(&mut self, i: usize, r: usize) -> Option<TransitionEvent> {
        // Saturate like the jump/count clocks: a bare `+= 1` wraps in
        // release at u64::MAX (reachable near silence at extreme n).
        self.interactions = self.interactions.saturating_add(1);
        let si = self.agents[i];
        let sr = self.agents[r];
        match self.protocol.transition(si, sr) {
            None => None,
            Some((mut si2, mut sr2)) => {
                if self.byz.is_empty() {
                    debug_assert!(
                        si2 != si || sr2 != sr,
                        "protocol returned an identity rewrite for ({si},{sr})"
                    );
                } else {
                    // Byzantine/stuck-at participants veto their own
                    // rewrite; the partner still updates. The scheduler
                    // draw counts as productive either way — it is a
                    // chain event, vetoed or not, which keeps the clock
                    // semantics aligned with the counts-based engines.
                    if self.byz[i] {
                        si2 = si;
                    }
                    if self.byz[r] {
                        sr2 = sr;
                    }
                }
                self.productive += 1;
                self.agents[i] = si2;
                self.agents[r] = sr2;
                if si != si2 {
                    self.update_count(si, -1);
                    self.update_count(si2, 1);
                }
                if sr != sr2 {
                    self.update_count(sr, -1);
                    self.update_count(sr2, 1);
                }
                Some(TransitionEvent {
                    initiator: i,
                    responder: r,
                    before: (si, sr),
                    after: (si2, sr2),
                })
            }
        }
    }

    /// Run until silent or until `max_interactions` have been executed.
    ///
    /// # Errors
    ///
    /// Returns [`StabilisationTimeout`] when the cap is hit first.
    pub fn run_until_silent(
        &mut self,
        max_interactions: u64,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        self.run_until_silent_observed(max_interactions, &mut NullObserver)
    }

    /// Like [`run_until_silent`], invoking `observer` on every productive
    /// interaction.
    ///
    /// # Errors
    ///
    /// Returns [`StabilisationTimeout`] when the cap is hit first.
    ///
    /// [`run_until_silent`]: Simulation::run_until_silent
    pub fn run_until_silent_observed<O: Observer>(
        &mut self,
        max_interactions: u64,
        observer: &mut O,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        loop {
            if self.is_silent() {
                debug_assert!(self.verify_silent());
                return Ok(StabilisationReport {
                    interactions: self.interactions,
                    interactions_wide: self.interactions as u128,
                    productive_interactions: self.productive,
                    parallel_time: self.parallel_time(),
                });
            }
            if self.interactions >= max_interactions {
                return Err(StabilisationTimeout {
                    interactions: self.interactions,
                });
            }
            if let Some(event) = self.step() {
                observer.on_transition(self.interactions, &event, &self.counts);
            }
        }
    }

    /// Execute exactly `budget` further interactions (silent or not),
    /// invoking `observer` on productive ones.
    pub fn run_for<O: Observer>(&mut self, budget: u64, observer: &mut O) {
        for _ in 0..budget {
            if let Some(event) = self.step() {
                observer.on_transition(self.interactions, &event, &self.counts);
            }
        }
    }

    /// Overwrite one agent's state (transient-fault injection). Counters
    /// are kept consistent; the interaction clock is not advanced.
    ///
    /// # Panics
    ///
    /// Panics if `agent` or `state` is out of range.
    pub fn inject_fault(&mut self, agent: usize, state: State) {
        assert!(agent < self.agents.len(), "agent index out of range");
        assert!(
            (state as usize) < self.protocol.num_states(),
            "state out of range"
        );
        let old = self.agents[agent];
        if old == state {
            return;
        }
        self.agents[agent] = state;
        self.update_count(old, -1);
        self.update_count(state, 1);
    }

    /// Consume the simulation and return the final configuration.
    pub fn into_agents(self) -> Vec<State> {
        self.agents
    }

    /// Capture the complete simulation state (configuration, clocks and
    /// RNG) so a trajectory can be branched or replayed later.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            agents: self.agents.clone(),
            counts: self.counts.clone(),
            duplicate_rank_agents: self.duplicate_rank_agents,
            extra_agents: self.extra_agents,
            interactions: self.interactions,
            productive: self.productive,
            rng: self.rng.clone(),
        }
    }

    /// Restore a snapshot previously taken from a simulation of the same
    /// protocol instance. Restoring and re-running reproduces the exact
    /// same trajectory (the RNG state is part of the snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shape does not match this protocol.
    pub fn restore(&mut self, snapshot: &Snapshot) {
        assert_eq!(
            snapshot.agents.len(),
            self.protocol.population_size(),
            "snapshot population mismatch"
        );
        assert_eq!(
            snapshot.counts.len(),
            self.protocol.num_states(),
            "snapshot state-space mismatch"
        );
        self.agents.clone_from(&snapshot.agents);
        self.counts.clone_from(&snapshot.counts);
        self.duplicate_rank_agents = snapshot.duplicate_rank_agents;
        self.extra_agents = snapshot.extra_agents;
        self.interactions = snapshot.interactions;
        self.productive = snapshot.productive;
        self.rng = snapshot.rng.clone();
    }
}

impl<P: Protocol + ?Sized> crate::engine::Engine for Simulation<'_, P> {
    fn engine_name(&self) -> &'static str {
        "naive"
    }

    fn population_size(&self) -> usize {
        self.protocol.population_size()
    }

    fn counts(&self) -> &[u32] {
        &self.counts
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn productive_interactions(&self) -> u64 {
        self.productive
    }

    fn is_silent(&self) -> bool {
        Simulation::is_silent(self)
    }

    /// One scheduler draw: `Some(1)` if it was productive, `Some(0)` for a
    /// null interaction, `None` when already silent.
    fn advance(&mut self) -> Option<u64> {
        if Simulation::is_silent(self) {
            return None;
        }
        Some(u64::from(self.step().is_some()))
    }

    fn run_until_silent(
        &mut self,
        max_interactions: u64,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        Simulation::run_until_silent(self, max_interactions)
    }

    fn run_until_silent_observed(
        &mut self,
        max_interactions: u64,
        observer: &mut dyn crate::engine::CountObserver,
    ) -> Result<StabilisationReport, StabilisationTimeout> {
        /// Bridges agent-level [`Observer`] events to count-level hooks.
        struct Adapter<'o>(&'o mut dyn crate::engine::CountObserver);
        impl Observer for Adapter<'_> {
            fn on_transition(&mut self, step: u64, event: &TransitionEvent, counts: &[u32]) {
                self.0
                    .on_productive(step, event.before, event.after, 1, counts);
            }
        }
        Simulation::run_until_silent_observed(self, max_interactions, &mut Adapter(observer))
    }

    fn advance_to(
        &mut self,
        cap: u128,
        observer: &mut dyn crate::engine::CountObserver,
    ) -> crate::engine::CappedAdvance {
        if Simulation::is_silent(self) {
            return crate::engine::CappedAdvance::Silent;
        }
        if (self.interactions as u128) >= cap {
            return crate::engine::CappedAdvance::CapReached;
        }
        match self.step() {
            Some(event) => {
                observer.on_productive(self.interactions, event.before, event.after, 1, &self.counts);
                crate::engine::CappedAdvance::Applied(1)
            }
            None => crate::engine::CappedAdvance::Applied(0),
        }
    }

    fn set_byzantine(&mut self, byz: &[u32]) {
        assert_eq!(
            byz.len(),
            self.counts.len(),
            "byzantine spec length {} does not match the state space {}",
            byz.len(),
            self.counts.len()
        );
        if byz.iter().all(|&b| b == 0) {
            self.byz.clear();
            return;
        }
        // Mark, for each state s, the first byz[s] agents currently in s
        // (scan order over the agent vector — a deterministic selection;
        // agents are anonymous, so any selection rule yields the same
        // process).
        let mut quota = byz.to_vec();
        let mut flags = vec![false; self.agents.len()];
        for (i, &s) in self.agents.iter().enumerate() {
            if quota[s as usize] > 0 {
                quota[s as usize] -= 1;
                flags[i] = true;
            }
        }
        for (s, &q) in quota.iter().enumerate() {
            assert!(
                q == 0,
                "byzantine spec asks for {} stuck agents in state {s} but \
                 only {} are present",
                byz[s],
                self.counts[s]
            );
        }
        self.byz = flags;
    }

    fn num_rank_states(&self) -> usize {
        self.num_ranks
    }

    fn skip_nulls(&mut self, nulls: u128) {
        self.interactions = self
            .interactions
            // lint:allow(A001): saturating clamp at the u64 clock width.
            .saturating_add(nulls.min(u64::MAX as u128) as u64);
    }

    fn inject_state_fault(&mut self, from: State, to: State) {
        let byz = &self.byz;
        let agent = self
            .agents
            .iter()
            .enumerate()
            .position(|(i, &s)| s == from && !byz.get(i).copied().unwrap_or(false))
            .unwrap_or_else(|| panic!("state {from} has no non-Byzantine occupant"));
        Simulation::inject_fault(self, agent, to);
    }

    fn snapshot(&self) -> crate::engine::EngineSnapshot {
        crate::engine::EngineSnapshot {
            agents: Some(self.agents.clone()),
            counts: self.counts.clone(),
            interactions: self.interactions as u128,
            productive: self.productive,
            rng: self.rng.clone(),
            count_ctl: None,
        }
    }

    fn restore(&mut self, snapshot: &crate::engine::EngineSnapshot) {
        // Count-only snapshots (from the jump/count engines) reconstruct an
        // agent vector from counts; agents are anonymous, so the resulting
        // process is the same.
        let agents = snapshot
            .agents
            .clone()
            .unwrap_or_else(|| init::from_counts(&snapshot.counts));
        assert_eq!(
            agents.len(),
            self.protocol.population_size(),
            "snapshot population mismatch"
        );
        assert_eq!(
            snapshot.counts.len(),
            self.protocol.num_states(),
            "snapshot state-space mismatch"
        );
        let num_ranks = self.num_ranks;
        self.agents = agents;
        self.counts.clone_from(&snapshot.counts);
        self.duplicate_rank_agents = self.counts[..num_ranks]
            .iter()
            .map(|&c| (c as u64).saturating_sub(1))
            .sum();
        self.extra_agents = self.counts[num_ranks..].iter().map(|&c| c as u64).sum();
        // The naive engine's clock is u64; count-engine snapshots past
        // u64::MAX cannot be represented here and saturate.
        // lint:allow(A001): that documented saturation, deliberately.
        self.interactions = snapshot.interactions.min(u64::MAX as u128) as u64;
        self.productive = snapshot.productive;
        self.rng = snapshot.rng.clone();
    }
}

/// A point-in-time capture of a [`Simulation`], including its RNG.
#[derive(Debug, Clone)]
pub struct Snapshot {
    agents: Vec<State>,
    counts: Vec<u32>,
    duplicate_rank_agents: u64,
    extra_agents: u64,
    interactions: u64,
    productive: u64,
    rng: Xoshiro256,
}

impl Snapshot {
    /// The captured per-agent states.
    pub fn agents(&self) -> &[State] {
        &self.agents
    }

    /// The interaction count at capture time.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }
}

impl<P: Protocol + ?Sized> std::fmt::Debug for Simulation<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("protocol", &self.protocol.name())
            .field("n", &self.protocol.population_size())
            .field("interactions", &self.interactions)
            .field("silent", &self.is_silent())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::FnObserver;

    struct Ag {
        n: usize,
    }
    impl Protocol for Ag {
        fn name(&self) -> &str {
            "A_G"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            if i == r {
                Some((i, (r + 1) % self.n as State))
            } else {
                None
            }
        }
    }

    #[test]
    fn rejects_wrong_population() {
        let p = Ag { n: 4 };
        let err = Simulation::new(&p, vec![0; 3], 1).unwrap_err();
        assert!(matches!(err, ConfigError::WrongPopulation { .. }));
    }

    #[test]
    fn rejects_out_of_range_state() {
        let p = Ag { n: 4 };
        let err = Simulation::new(&p, vec![0, 1, 2, 9], 1).unwrap_err();
        assert!(matches!(err, ConfigError::StateOutOfRange { .. }));
    }

    #[test]
    fn perfect_ranking_is_silent_in_zero_interactions() {
        let p = Ag { n: 6 };
        let mut sim = Simulation::new(&p, (0..6).collect(), 3).unwrap();
        let rep = sim.run_until_silent(10).unwrap();
        assert_eq!(rep.interactions, 0);
        assert!(sim.verify_silent());
    }

    #[test]
    fn all_in_zero_stabilises() {
        let p = Ag { n: 8 };
        let mut sim = Simulation::new(&p, vec![0; 8], 7).unwrap();
        let rep = sim.run_until_silent(50_000_000).unwrap();
        assert!(sim.is_silent());
        assert!(sim.verify_silent());
        assert!(init::is_perfect_ranking(sim.agents(), 8));
        assert!(rep.productive_interactions >= 7, "at least n-1 moves");
    }

    #[test]
    fn timeout_is_reported() {
        let p = Ag { n: 8 };
        let mut sim = Simulation::new(&p, vec![0; 8], 7).unwrap();
        let err = sim.run_until_silent(5).unwrap_err();
        assert_eq!(err.interactions, 5);
    }

    #[test]
    fn counters_track_counts() {
        let p = Ag { n: 10 };
        let mut sim = Simulation::new(&p, vec![0; 10], 11).unwrap();
        for _ in 0..10_000 {
            sim.step();
            let dup: u64 = sim.counts()[..10]
                .iter()
                .map(|&c| (c as u64).saturating_sub(1))
                .sum();
            assert_eq!(dup, sim.duplicate_rank_agents);
            let total: u32 = sim.counts().iter().sum();
            assert_eq!(total, 10, "agents conserved");
            if sim.is_silent() {
                break;
            }
        }
    }

    #[test]
    fn observer_sees_every_productive_step() {
        let p = Ag { n: 6 };
        let mut sim = Simulation::new(&p, vec![0; 6], 13).unwrap();
        let mut seen = 0u64;
        let mut obs = FnObserver::new(|_s, _e: &TransitionEvent, _c: &[u32]| seen += 1);
        let rep = sim.run_until_silent_observed(10_000_000, &mut obs).unwrap();
        let _ = obs;
        assert_eq!(seen, rep.productive_interactions);
    }

    #[test]
    fn fault_injection_updates_counters_and_recovers() {
        let p = Ag { n: 6 };
        let mut sim = Simulation::new(&p, (0..6).collect(), 17).unwrap();
        assert!(sim.is_silent());
        sim.inject_fault(0, 3); // duplicate rank 3, rank 0 now empty
        assert!(!sim.is_silent());
        sim.run_until_silent(10_000_000).unwrap();
        assert!(init::is_perfect_ranking(sim.agents(), 6));
    }

    #[test]
    fn run_for_executes_exact_budget() {
        let p = Ag { n: 5 };
        let mut sim = Simulation::new(&p, vec![1; 5], 19).unwrap();
        sim.run_for(123, &mut NullObserver);
        assert_eq!(sim.interactions(), 123);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = Ag { n: 12 };
        let mut a = Simulation::new(&p, vec![0; 12], 23).unwrap();
        let mut b = Simulation::new(&p, vec![0; 12], 23).unwrap();
        let ra = a.run_until_silent(u64::MAX).unwrap();
        let rb = b.run_until_silent(u64::MAX).unwrap();
        assert_eq!(ra.interactions, rb.interactions);
        assert_eq!(a.agents(), b.agents());
    }

    #[test]
    fn snapshot_restore_replays_exactly() {
        let p = Ag { n: 10 };
        let mut sim = Simulation::new(&p, vec![0; 10], 31).unwrap();
        sim.run_for(500, &mut NullObserver);
        let snap = sim.snapshot();
        assert_eq!(snap.interactions(), 500);
        assert_eq!(snap.agents(), sim.agents());

        // Branch A: run to silence.
        let rep_a = sim.run_until_silent(u64::MAX).unwrap();
        let final_a = sim.agents().to_vec();

        // Branch B: restore and rerun — identical trajectory.
        sim.restore(&snap);
        assert_eq!(sim.interactions(), 500);
        let rep_b = sim.run_until_silent(u64::MAX).unwrap();
        assert_eq!(rep_a.interactions, rep_b.interactions);
        assert_eq!(final_a, sim.agents());
    }

    #[test]
    fn scheduled_steps_advance_clock_and_stabilise() {
        use crate::schedule::UniformScheduler;
        let p = Ag { n: 10 };
        let mut sim = Simulation::new(&p, vec![0; 10], 37).unwrap();
        let mut sched = UniformScheduler::new(10);
        sim.step_scheduled(&mut sched);
        assert_eq!(sim.interactions(), 1);
        let rep = sim.run_until_silent_scheduled(u64::MAX, &mut sched).unwrap();
        assert!(sim.verify_silent());
        assert!(rep.interactions >= rep.productive_interactions);
    }

    #[test]
    fn scheduled_run_reports_timeout() {
        use crate::schedule::UniformScheduler;
        let p = Ag { n: 10 };
        let mut sim = Simulation::new(&p, vec![0; 10], 41).unwrap();
        let mut sched = UniformScheduler::new(10);
        let err = sim.run_until_silent_scheduled(3, &mut sched).unwrap_err();
        assert!(err.interactions >= 3);
    }

    #[test]
    fn parallel_time_is_interactions_over_n() {
        let p = Ag { n: 4 };
        let mut sim = Simulation::new(&p, vec![0; 4], 29).unwrap();
        sim.run_for(40, &mut NullObserver);
        assert!((sim.parallel_time() - 10.0).abs() < 1e-12);
    }
}
