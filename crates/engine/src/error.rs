//! Error types for simulator construction and execution.

use std::error::Error;
use std::fmt;

/// An invalid initial configuration was supplied to a simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The configuration length does not match the protocol's population.
    WrongPopulation {
        /// Population size the protocol was built for.
        expected: usize,
        /// Number of agents supplied.
        got: usize,
    },
    /// An agent references a state id outside the protocol's state space.
    StateOutOfRange {
        /// Index of the offending agent.
        agent: usize,
        /// The out-of-range state id.
        state: u32,
        /// Size of the state space.
        num_states: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::WrongPopulation { expected, got } => write!(
                f,
                "configuration has {got} agents but the protocol expects {expected}"
            ),
            ConfigError::StateOutOfRange {
                agent,
                state,
                num_states,
            } => write!(
                f,
                "agent {agent} is in state {state}, outside the state space 0..{num_states}"
            ),
        }
    }
}

impl Error for ConfigError {}

/// The simulation hit its interaction cap before reaching a silent
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilisationTimeout {
    /// Interactions executed before giving up.
    pub interactions: u64,
}

impl fmt::Display for StabilisationTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no silent configuration reached within {} interactions",
            self.interactions
        )
    }
}

impl Error for StabilisationTimeout {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ConfigError::WrongPopulation {
            expected: 10,
            got: 9,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('9'));

        let e = ConfigError::StateOutOfRange {
            agent: 3,
            state: 42,
            num_states: 40,
        };
        assert!(e.to_string().contains("42"));

        let t = StabilisationTimeout { interactions: 100 };
        assert!(t.to_string().contains("100"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err<E: Error>(_e: E) {}
        takes_err(ConfigError::WrongPopulation {
            expected: 1,
            got: 2,
        });
        takes_err(StabilisationTimeout { interactions: 5 });
    }
}
