//! Versioned wire serialisation for [`EngineSnapshot`]s.
//!
//! A snapshot on the wire is a self-describing little-endian byte string:
//!
//! ```text
//! magic   b"SSRSNP"                    6 bytes
//! version u16                          format version (currently 1)
//! schema  u64                          InteractionSchema::schema_hash()
//! popul.  u64                          population size n
//! states  u32                          number of states
//! flags   u8                           bit0: agent vector present
//!                                      bit1: count-control present
//! counts  states × u32                 occupancy counts
//! agents  popul. × u32                 only when flags bit0
//! clock   u128                         interaction clock (full width)
//! prod.   u64                          productive-interaction clock
//! rng     4 × u64                      xoshiro256++ state words
//! ctl     u64 u64 u64 u32 u32          only when flags bit1
//! check   u64                          FNV-1a over all preceding bytes
//! ```
//!
//! Decoding validates, in order: length, magic, version, checksum, schema
//! hash against the expected [`SnapshotShape`], then shape fields — every
//! failure is a typed [`SnapshotDecodeError`], never a panic. The schema
//! hash makes a checkpoint refuse to restore into a *different* protocol
//! (or a recompiled one whose declared classes changed), which is the
//! safety property the service checkpoint store relies on.

use crate::engine::{CountControl, EngineSnapshot};
use crate::protocol::InteractionSchema;
use crate::rng::Xoshiro256;
use std::fmt;

/// Current snapshot wire-format version. Bump on any layout change.
pub const SNAPSHOT_WIRE_VERSION: u16 = 1;

const MAGIC: &[u8; 6] = b"SSRSNP";

/// The protocol identity a wire snapshot is validated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotShape {
    /// Stable hash of the protocol's declared interaction schema.
    pub schema_hash: u64,
    /// Number of states (length of the counts vector).
    pub num_states: u32,
    /// Population size.
    pub population: u64,
}

impl SnapshotShape {
    /// Capture the shape of a protocol for encode/decode validation.
    pub fn of<P: InteractionSchema + ?Sized>(protocol: &P) -> Self {
        SnapshotShape {
            schema_hash: protocol.schema_hash(),
            num_states: protocol.num_states() as u32,
            population: protocol.population_size() as u64,
        }
    }
}

/// Typed failure modes of [`EngineSnapshot::from_wire`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotDecodeError {
    /// The byte string ends before the structure it declares.
    Truncated {
        /// Bytes required by the declared structure.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The leading magic bytes are not `b"SSRSNP"`.
    BadMagic,
    /// The format version is not one this build can decode.
    UnsupportedVersion {
        /// Version found on the wire.
        got: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The snapshot was taken under a different interaction schema.
    SchemaHashMismatch {
        /// Expected hash (the restoring protocol's).
        expected: u64,
        /// Hash recorded in the snapshot.
        got: u64,
    },
    /// A shape field disagrees with the restoring protocol.
    ShapeMismatch {
        /// Which field disagrees (`"num_states"`, `"population"`, or
        /// `"counts_sum"`).
        field: &'static str,
        /// Value the restoring protocol requires.
        expected: u64,
        /// Value recorded in the snapshot.
        got: u64,
    },
    /// The trailing checksum does not match the body.
    ChecksumMismatch,
}

impl fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotDecodeError::Truncated { needed, got } => {
                write!(f, "snapshot truncated: needed {needed} bytes, got {got}")
            }
            SnapshotDecodeError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapshotDecodeError::UnsupportedVersion { got, supported } => write!(
                f,
                "unsupported snapshot version {got} (this build reads version {supported})"
            ),
            SnapshotDecodeError::SchemaHashMismatch { expected, got } => write!(
                f,
                "snapshot schema hash {got:#018x} does not match protocol {expected:#018x}"
            ),
            SnapshotDecodeError::ShapeMismatch {
                field,
                expected,
                got,
            } => write!(
                f,
                "snapshot {field} is {got}, protocol requires {expected}"
            ),
            SnapshotDecodeError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch (corrupt or tampered)")
            }
        }
    }
}

impl std::error::Error for SnapshotDecodeError {}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Little-endian byte reader with typed truncation errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotDecodeError> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or(SnapshotDecodeError::Truncated {
                needed: usize::MAX,
                got: self.bytes.len(),
            })?;
        if end > self.bytes.len() {
            return Err(SnapshotDecodeError::Truncated {
                needed: end,
                got: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotDecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, SnapshotDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128, SnapshotDecodeError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
}

impl EngineSnapshot {
    /// Serialise for durable storage. `shape` stamps the snapshot with the
    /// protocol identity so a later [`from_wire`](Self::to_wire) can refuse
    /// cross-protocol restores.
    pub fn to_wire(&self, shape: SnapshotShape) -> Vec<u8> {
        let mut flags = 0u8;
        if self.agents.is_some() {
            flags |= 1;
        }
        if self.count_ctl.is_some() {
            flags |= 2;
        }
        let mut out = Vec::with_capacity(
            MAGIC.len()
                + 2
                + 8
                + 8
                + 4
                + 1
                + 4 * self.counts.len()
                + self.agents.as_ref().map_or(0, |a| 4 * a.len())
                + 16
                + 8
                + 32
                + if self.count_ctl.is_some() { 32 } else { 0 }
                + 8,
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&SNAPSHOT_WIRE_VERSION.to_le_bytes());
        out.extend_from_slice(&shape.schema_hash.to_le_bytes());
        out.extend_from_slice(&shape.population.to_le_bytes());
        out.extend_from_slice(&shape.num_states.to_le_bytes());
        out.push(flags);
        for &c in &self.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        if let Some(agents) = &self.agents {
            for &a in agents {
                out.extend_from_slice(&a.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.interactions.to_le_bytes());
        out.extend_from_slice(&self.productive.to_le_bytes());
        for word in self.rng.state() {
            out.extend_from_slice(&word.to_le_bytes());
        }
        if let Some(ctl) = self.count_ctl {
            out.extend_from_slice(&ctl.max_eq_count.to_le_bytes());
            out.extend_from_slice(&ctl.max_sparse_partner.to_le_bytes());
            out.extend_from_slice(&ctl.max_sparse_pair_scale.to_le_bytes());
            out.extend_from_slice(&ctl.batches_since_refresh.to_le_bytes());
            out.extend_from_slice(&ctl.exact_steps_until_recheck.to_le_bytes());
        }
        let check = fnv1a(&out);
        out.extend_from_slice(&check.to_le_bytes());
        out
    }

    /// Decode a wire snapshot, validating it against the restoring
    /// protocol's [`SnapshotShape`]. Every failure is a typed
    /// [`SnapshotDecodeError`] — this function never panics on bad input.
    pub fn from_wire(
        bytes: &[u8],
        expected: SnapshotShape,
    ) -> Result<EngineSnapshot, SnapshotDecodeError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(SnapshotDecodeError::BadMagic);
        }
        let version = r.u16()?;
        if version != SNAPSHOT_WIRE_VERSION {
            return Err(SnapshotDecodeError::UnsupportedVersion {
                got: version,
                supported: SNAPSHOT_WIRE_VERSION,
            });
        }
        // Verify the checksum before trusting any length-bearing field:
        // the trailing 8 bytes cover everything that precedes them.
        if bytes.len() < 8 {
            return Err(SnapshotDecodeError::Truncated {
                needed: 8,
                got: bytes.len(),
            });
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(SnapshotDecodeError::ChecksumMismatch);
        }
        let schema_hash = r.u64()?;
        if schema_hash != expected.schema_hash {
            return Err(SnapshotDecodeError::SchemaHashMismatch {
                expected: expected.schema_hash,
                got: schema_hash,
            });
        }
        let population = r.u64()?;
        if population != expected.population {
            return Err(SnapshotDecodeError::ShapeMismatch {
                field: "population",
                expected: expected.population,
                got: population,
            });
        }
        let num_states = r.u32()?;
        if num_states != expected.num_states {
            return Err(SnapshotDecodeError::ShapeMismatch {
                field: "num_states",
                expected: expected.num_states as u64,
                got: num_states as u64,
            });
        }
        let flags = r.u8()?;
        let mut counts = Vec::with_capacity(num_states as usize);
        let mut counts_sum = 0u64;
        for _ in 0..num_states {
            let c = r.u32()?;
            counts_sum += c as u64;
            counts.push(c);
        }
        if counts_sum != population {
            return Err(SnapshotDecodeError::ShapeMismatch {
                field: "counts_sum",
                expected: population,
                got: counts_sum,
            });
        }
        let agents = if flags & 1 != 0 {
            let mut agents = Vec::with_capacity(population as usize);
            for _ in 0..population {
                agents.push(r.u32()?);
            }
            Some(agents)
        } else {
            None
        };
        let interactions = r.u128()?;
        let productive = r.u64()?;
        let rng = Xoshiro256::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
        let count_ctl = if flags & 2 != 0 {
            Some(CountControl {
                max_eq_count: r.u64()?,
                max_sparse_partner: r.u64()?,
                max_sparse_pair_scale: r.u64()?,
                batches_since_refresh: r.u32()?,
                exact_steps_until_recheck: r.u32()?,
            })
        } else {
            None
        };
        // The remaining 8 bytes are the (already verified) checksum.
        let trailing = bytes.len() - r.pos;
        if trailing != 8 {
            return Err(SnapshotDecodeError::Truncated {
                needed: r.pos + 8,
                got: bytes.len(),
            });
        }
        Ok(EngineSnapshot {
            agents,
            counts,
            interactions,
            productive,
            rng,
            count_ctl,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{make_engine, EngineKind};
    use crate::protocol::{ClassSpec, Protocol, State};

    struct Ag {
        n: usize,
    }
    impl Protocol for Ag {
        fn name(&self) -> &str {
            "A_G"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            (i == r).then(|| (i, (r + 1) % self.n as State))
        }
    }
    impl InteractionSchema for Ag {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::equal_rank()]
        }
    }

    fn mid_run_snapshot(kind: EngineKind, n: usize, steps: usize) -> (EngineSnapshot, Ag) {
        let p = Ag { n };
        let snap = {
            let mut eng = make_engine(kind, &p, vec![0; n], 42).unwrap();
            for _ in 0..steps {
                eng.advance();
            }
            eng.snapshot()
        };
        (snap, p)
    }

    fn finish(kind: EngineKind, p: &Ag, snap: EngineSnapshot) -> (u128, u64) {
        let mut eng = make_engine(kind, p, vec![0; p.n], 42).unwrap();
        eng.restore(&snap);
        eng.run_until_silent(u64::MAX).unwrap();
        (eng.interactions_wide(), eng.productive_interactions())
    }

    #[test]
    fn roundtrip_jump_snapshot_continues_identically() {
        let (snap, p) = mid_run_snapshot(EngineKind::Jump, 64, 10);
        let shape = SnapshotShape::of(&p);
        let wire = snap.clone().to_wire(shape);
        let decoded = EngineSnapshot::from_wire(&wire, shape).unwrap();
        assert_eq!(finish(EngineKind::Jump, &p, snap), finish(EngineKind::Jump, &p, decoded));
    }

    #[test]
    fn roundtrip_count_snapshot_preserves_control_state() {
        let (snap, p) = mid_run_snapshot(EngineKind::Count, 8192, 5);
        assert!(snap.count_ctl.is_some(), "count snapshot should carry ctl");
        let shape = SnapshotShape::of(&p);
        let wire = snap.clone().to_wire(shape);
        let decoded = EngineSnapshot::from_wire(&wire, shape).unwrap();
        assert!(decoded.count_ctl.is_some());
        assert_eq!(
            finish(EngineKind::Count, &p, snap),
            finish(EngineKind::Count, &p, decoded)
        );
    }

    #[test]
    fn roundtrip_naive_snapshot_carries_agents() {
        let (snap, p) = mid_run_snapshot(EngineKind::Naive, 64, 10);
        assert!(snap.agents.is_some());
        let shape = SnapshotShape::of(&p);
        let wire = snap.clone().to_wire(shape);
        let decoded = EngineSnapshot::from_wire(&wire, shape).unwrap();
        assert_eq!(snap.agents, decoded.agents);
        assert_eq!(
            finish(EngineKind::Naive, &p, snap),
            finish(EngineKind::Naive, &p, decoded)
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let (snap, p) = mid_run_snapshot(EngineKind::Jump, 64, 3);
        let shape = SnapshotShape::of(&p);
        let mut wire = snap.to_wire(shape);
        wire[0] ^= 0xFF;
        assert_eq!(
            EngineSnapshot::from_wire(&wire, shape).unwrap_err(),
            SnapshotDecodeError::BadMagic
        );
    }

    #[test]
    fn rejects_unsupported_version() {
        let (snap, p) = mid_run_snapshot(EngineKind::Jump, 64, 3);
        let shape = SnapshotShape::of(&p);
        let mut wire = snap.to_wire(shape);
        wire[6..8].copy_from_slice(&99u16.to_le_bytes());
        assert_eq!(
            EngineSnapshot::from_wire(&wire, shape).unwrap_err(),
            SnapshotDecodeError::UnsupportedVersion {
                got: 99,
                supported: SNAPSHOT_WIRE_VERSION
            }
        );
    }

    #[test]
    fn rejects_schema_hash_mismatch() {
        let (snap, p) = mid_run_snapshot(EngineKind::Jump, 64, 3);
        let wire = snap.to_wire(SnapshotShape::of(&p));
        let other = Ag { n: 65 };
        let err = EngineSnapshot::from_wire(&wire, SnapshotShape::of(&other)).unwrap_err();
        assert!(matches!(err, SnapshotDecodeError::SchemaHashMismatch { .. }));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let (snap, p) = mid_run_snapshot(EngineKind::Jump, 64, 3);
        let mut wrong = SnapshotShape::of(&p);
        wrong.population += 1;
        let wire = snap.to_wire(SnapshotShape::of(&p));
        let err = EngineSnapshot::from_wire(&wire, wrong).unwrap_err();
        // Schema hash catches it first (same protocol type, different n ⇒
        // different hash is possible but not guaranteed) — accept either
        // typed mismatch, never a panic.
        assert!(matches!(
            err,
            SnapshotDecodeError::SchemaHashMismatch { .. }
                | SnapshotDecodeError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn rejects_corrupted_body() {
        let (snap, p) = mid_run_snapshot(EngineKind::Jump, 64, 3);
        let shape = SnapshotShape::of(&p);
        let mut wire = snap.to_wire(shape);
        let mid = wire.len() / 2;
        wire[mid] ^= 0x01;
        assert_eq!(
            EngineSnapshot::from_wire(&wire, shape).unwrap_err(),
            SnapshotDecodeError::ChecksumMismatch
        );
    }

    #[test]
    fn rejects_truncation() {
        let (snap, p) = mid_run_snapshot(EngineKind::Jump, 64, 3);
        let shape = SnapshotShape::of(&p);
        let wire = snap.to_wire(shape);
        for cut in [0, 4, 7, wire.len() - 9] {
            let err = EngineSnapshot::from_wire(&wire[..cut], shape).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotDecodeError::Truncated { .. } | SnapshotDecodeError::ChecksumMismatch
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_counts_not_summing_to_population() {
        let (mut snap, p) = mid_run_snapshot(EngineKind::Jump, 64, 3);
        snap.counts[0] += 1;
        let shape = SnapshotShape::of(&p);
        let wire = snap.to_wire(shape);
        let err = EngineSnapshot::from_wire(&wire, shape).unwrap_err();
        assert!(matches!(
            err,
            SnapshotDecodeError::ShapeMismatch {
                field: "counts_sum",
                ..
            }
        ));
    }
}
