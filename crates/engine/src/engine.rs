//! The unified [`Engine`] abstraction over all simulators.
//!
//! Three engines simulate the *same* stochastic process — the paper's
//! uniform random scheduler driving a population protocol — at three
//! different cost models:
//!
//! | Engine | Memory | Cost per unit | Best regime |
//! |--------|--------|---------------|-------------|
//! | [`Simulation`](crate::sim::Simulation) (`naive`) | `O(n)` | one ordered-pair draw per *interaction*, nulls included | small `n`, per-agent observers, external schedulers |
//! | [`JumpSimulation`](crate::jump::JumpSimulation) (`jump`) | `O(#states)` | `O(log #states)` per *productive* interaction | long runs near silence, `n` up to ~10⁵–10⁶ |
//! | [`CountSimulation`](crate::count::CountSimulation) (`count`) | `O(#states)` | amortised sub-productive-interaction stepping via batching | `n = 10⁶…10⁹`, far-from-silent regimes |
//!
//! The trait is object-safe, so experiment drivers can select an engine at
//! runtime (`--engine auto|naive|jump|count` in the CLI) and treat all
//! three uniformly: stepping, running to silence with a cap, count-level
//! observer hooks, transient-fault injection, and snapshot/restore.
//! [`EngineKind::Auto`] picks the count engine at large `n` and the jump
//! engine below, per protocol instance — heterogeneous sweeps get the
//! right engine at every grid point.
//!
//! # Examples
//!
//! ```
//! use ssr_engine::engine::Engine;
//! use ssr_engine::count::CountSimulation;
//! use ssr_engine::jump::JumpSimulation;
//! use ssr_engine::protocol::{ClassSpec, InteractionSchema, Protocol, State};
//!
//! struct Ag { n: usize }
//! impl Protocol for Ag {
//!     fn name(&self) -> &str { "A_G" }
//!     fn population_size(&self) -> usize { self.n }
//!     fn num_states(&self) -> usize { self.n }
//!     fn num_rank_states(&self) -> usize { self.n }
//!     fn transition(&self, i: State, r: State) -> Option<(State, State)> {
//!         (i == r).then(|| (i, (r + 1) % self.n as State))
//!     }
//! }
//! impl InteractionSchema for Ag {
//!     fn interaction_classes(&self) -> Vec<ClassSpec> {
//!         vec![ClassSpec::equal_rank()]
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = Ag { n: 64 };
//! let mut engines: Vec<Box<dyn Engine>> = vec![
//!     Box::new(JumpSimulation::new(&p, vec![0; 64], 7)?),
//!     Box::new(CountSimulation::new(&p, vec![0; 64], 7)?),
//! ];
//! for e in &mut engines {
//!     let report = Engine::run_until_silent(e.as_mut(), u64::MAX)?;
//!     assert!(e.is_silent());
//!     assert!(report.interactions >= report.productive_interactions);
//! }
//! // Same seed ⇒ the jump and count engines walk the identical chain.
//! assert_eq!(engines[0].interactions(), engines[1].interactions());
//! # Ok(())
//! # }
//! ```

use crate::error::StabilisationTimeout;
use crate::protocol::State;
use crate::rng::Xoshiro256;
use crate::sim::StabilisationReport;

/// Observer hook at the granularity every engine can afford: occupancy
/// *counts*, not agent identities.
///
/// The naive and jump engines invoke it once per productive interaction
/// with `multiplicity == 1`, passing the post-transition counts. The
/// count engine's batch mode coalesces a group of identical rewrites into
/// a single call with the group size as `multiplicity`; all groups of one
/// batch share the same post-**batch** counts and interaction clock
/// (intermediate configurations inside a batch are not materialised).
pub trait CountObserver {
    /// Called after productive interaction(s) have been applied.
    ///
    /// `interactions` is the engine's total interaction clock (nulls
    /// included) after the call's rewrites; `before`/`after` are the
    /// rewritten ordered state pairs; `counts` the post-transition
    /// occupancy.
    fn on_productive(
        &mut self,
        interactions: u64,
        before: (State, State),
        after: (State, State),
        multiplicity: u64,
        counts: &[u32],
    );
}

/// A [`CountObserver`] that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCountObserver;

impl CountObserver for NullCountObserver {
    #[inline]
    fn on_productive(
        &mut self,
        _interactions: u64,
        _before: (State, State),
        _after: (State, State),
        _multiplicity: u64,
        _counts: &[u32],
    ) {
    }
}

/// Adapts a closure into a [`CountObserver`].
#[derive(Debug)]
pub struct FnCountObserver<F>(pub F);

impl<F: FnMut(u64, (State, State), (State, State), u64, &[u32])> CountObserver
    for FnCountObserver<F>
{
    #[inline]
    fn on_productive(
        &mut self,
        interactions: u64,
        before: (State, State),
        after: (State, State),
        multiplicity: u64,
        counts: &[u32],
    ) {
        (self.0)(interactions, before, after, multiplicity, counts)
    }
}

/// Engine-agnostic point-in-time capture: configuration (as counts, plus
/// the agent vector when the engine has one), clocks, and the RNG.
///
/// A snapshot taken from one engine can be restored into another of the
/// same protocol: agents are anonymous, so the counts determine the
/// configuration. Restoring into the *same* engine kind reproduces the
/// exact trajectory (the RNG state travels with the snapshot); restoring
/// across kinds continues the same configuration with that engine's
/// stepping discipline.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    pub(crate) agents: Option<Vec<State>>,
    pub(crate) counts: Vec<u32>,
    /// Full-width clock: the count engine's clock legitimately passes
    /// `u64::MAX` at `n ≥ 2³¹`, and restoring must not narrow it.
    pub(crate) interactions: u128,
    pub(crate) productive: u64,
    pub(crate) rng: Xoshiro256,
    /// Count-engine batching control state; `None` for snapshots taken
    /// from other engines (the count engine then restores canonical
    /// control state derived from the counts).
    pub(crate) count_ctl: Option<CountControl>,
}

/// The count engine's batch-scheduling state. Captured in snapshots so
/// restoring into a count engine replays the exact trajectory even when
/// batch mode is active (the batch-size decision depends on this state).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CountControl {
    pub(crate) max_eq_count: u64,
    pub(crate) max_sparse_partner: u64,
    pub(crate) max_sparse_pair_scale: u64,
    pub(crate) batches_since_refresh: u32,
    pub(crate) exact_steps_until_recheck: u32,
}

/// Outcome of a single [`Engine::advance_to`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CappedAdvance {
    /// The configuration is silent; nothing was executed and the clock did
    /// not move.
    Silent,
    /// Productive interaction(s) were applied; the clock advanced past
    /// them (it may exceed the cap only in the count engine's batch mode,
    /// whose null tail is drawn after the batch is committed).
    Applied(u64),
    /// The next productive interaction falls past the cap: the clock was
    /// advanced *to* the cap without executing it. By memorylessness of
    /// the geometric null-gap distribution this truncation is exact — the
    /// time to the next productive interaction measured from the cap is
    /// again geometric under the (possibly updated) weights.
    CapReached,
}

/// Byzantine occupancy overlay shared by the counts-based engines.
///
/// `counts[s]` is the number of *stuck-at* agents currently in state `s`.
/// Agents are anonymous in the counts representation, so whether a sampled
/// participant is Byzantine is itself a random event: given the pair of
/// states `(si, sr)` the initiator is Byzantine with probability
/// `byz[si] / occ[si]`, and the responder analogously (hypergeometric
/// correction when `si == sr`). Byzantine membership is persistent —
/// stuck-at agents never change state, so `byz` is constant over a run and
/// the invariant `counts[s] ≥ byz[s]` is maintained by vetoing their
/// rewrites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ByzOverlay {
    pub(crate) counts: Vec<u32>,
}

impl ByzOverlay {
    /// Validate a per-state Byzantine specification against the current
    /// occupancy and build the overlay. All-zero specs return `None`.
    pub(crate) fn build(byz: &[u32], counts: &[u32]) -> Option<Self> {
        assert_eq!(
            byz.len(),
            counts.len(),
            "byzantine spec length {} does not match the state space {}",
            byz.len(),
            counts.len()
        );
        for (s, (&b, &c)) in byz.iter().zip(counts).enumerate() {
            assert!(
                b <= c,
                "byzantine spec asks for {b} stuck agents in state {s} but \
                 only {c} are present"
            );
        }
        byz.iter().any(|&b| b > 0).then(|| ByzOverlay {
            counts: byz.to_vec(),
        })
    }

    /// Decide whether the initiator / responder of a sampled productive
    /// pair `(si, sr)` are Byzantine. Consumes exactly two RNG draws when
    /// either state holds Byzantine mass and none otherwise, so the veto
    /// is a deterministic function of (rng, counts) — identical across the
    /// jump and count engines.
    pub(crate) fn veto(
        &self,
        rng: &mut Xoshiro256,
        occ: &[u32],
        si: State,
        sr: State,
    ) -> (bool, bool) {
        let bi = self.counts[si as usize] as u64;
        let br = self.counts[sr as usize] as u64;
        if bi == 0 && br == 0 {
            return (false, false);
        }
        let init_byz = rng.below(occ[si as usize] as u64) < bi;
        let mut pool = occ[sr as usize] as u64;
        let mut byz_pool = br;
        if si == sr {
            // Responder is drawn from the same state without replacement.
            pool -= 1;
            if init_byz {
                byz_pool -= 1;
            }
        }
        let resp_byz = rng.below(pool) < byz_pool;
        (init_byz, resp_byz)
    }
}

impl EngineSnapshot {
    /// The captured per-state occupancy counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The captured agent vector, if the engine tracked one.
    pub fn agents(&self) -> Option<&[State]> {
        self.agents.as_deref()
    }

    /// The interaction clock at capture time, saturating at `u64::MAX`
    /// (see [`interactions_wide`](Self::interactions_wide)).
    pub fn interactions(&self) -> u64 {
        // lint:allow(A001): documented saturating u64 API boundary —
        // the exact clock is `interactions_wide()`.
        self.interactions.min(u64::MAX as u128) as u64
    }

    /// The interaction clock at capture time, full-width: exact past
    /// `u64::MAX` for count-engine snapshots at `n ≥ 2³¹`.
    pub fn interactions_wide(&self) -> u128 {
        self.interactions
    }

    /// The productive-interaction clock at capture time.
    pub fn productive_interactions(&self) -> u64 {
        self.productive
    }
}

/// A population-protocol simulator behind a uniform, object-safe handle.
///
/// All engines share silence semantics (silent ⇔ no ordered pair of agents
/// is productive) and clock semantics (`interactions` counts *every*
/// scheduler draw, nulls included, exactly — engines that skip nulls
/// account for them stochastically but exactly in distribution).
pub trait Engine {
    /// Short engine identifier: `"naive"`, `"jump"` or `"count"`.
    fn engine_name(&self) -> &'static str;

    /// Population size `n`.
    fn population_size(&self) -> usize;

    /// Current per-state occupancy counts.
    fn counts(&self) -> &[u32];

    /// Total interactions simulated so far (nulls included), saturating
    /// at `u64::MAX` (see [`interactions_wide`](Engine::interactions_wide)).
    fn interactions(&self) -> u64;

    /// Total interactions simulated so far, full-width. Only the count
    /// engine's clock can exceed `u64::MAX` (at `n ≥ 2³¹`); for the other
    /// engines this equals [`interactions`](Engine::interactions).
    fn interactions_wide(&self) -> u128 {
        self.interactions() as u128
    }

    /// Productive interactions executed so far.
    fn productive_interactions(&self) -> u64;

    /// Whether the configuration is silent.
    fn is_silent(&self) -> bool;

    /// Advance the engine by its natural quantum and return the number of
    /// productive interactions applied, or `None` if the configuration is
    /// silent (nothing was executed).
    ///
    /// The quantum differs per engine: the naive engine executes one
    /// scheduler draw (`Some(0)` for a null), the jump engine one
    /// productive interaction plus its preceding nulls (`Some(1)`), and
    /// the count engine either one productive interaction or — far from
    /// silence — a whole batch (`Some(k)`).
    fn advance(&mut self) -> Option<u64>;

    /// Run until silent or until at least `max_interactions` have elapsed.
    ///
    /// # Errors
    ///
    /// Returns [`StabilisationTimeout`] when the cap is exceeded before a
    /// silent configuration is reached.
    fn run_until_silent(
        &mut self,
        max_interactions: u64,
    ) -> Result<StabilisationReport, StabilisationTimeout>;

    /// Like [`run_until_silent`](Engine::run_until_silent), invoking
    /// `observer` on productive interactions (batched engines may coalesce
    /// identical rewrites into one call with multiplicity > 1).
    ///
    /// # Errors
    ///
    /// Returns [`StabilisationTimeout`] when the cap is exceeded first.
    fn run_until_silent_observed(
        &mut self,
        max_interactions: u64,
        observer: &mut dyn CountObserver,
    ) -> Result<StabilisationReport, StabilisationTimeout>;

    /// Advance by one natural quantum, but never *start* work at or past
    /// `cap` (an absolute interaction-clock value).
    ///
    /// This is the primitive behind timed fault execution
    /// ([`run_with_plan`](crate::faults::run_with_plan)): a caller that
    /// must apply a fault at clock time `t` calls `advance_to(t, ..)` in a
    /// loop; the engine executes productive interactions falling before
    /// `t` and, when the next one would land past `t`, truncates the clock
    /// to `t` and returns [`CappedAdvance::CapReached`] — an *exact*
    /// operation for the exact-stepping engines by memorylessness of the
    /// geometric gap. The count engine clips its batch size so a batch's
    /// expected drift stays well inside the cap and falls back to exact
    /// stepping for the final approach; only the stochastic null tail of a
    /// committed batch may overshoot the cap (vanishingly rarely), in
    /// which case the caller observes a clock slightly past `cap`.
    ///
    /// `observer` sees every productive rewrite, exactly as in
    /// [`run_until_silent_observed`](Engine::run_until_silent_observed).
    fn advance_to(&mut self, cap: u128, observer: &mut dyn CountObserver) -> CappedAdvance;

    /// Mark `byz[s]` agents currently in state `s` as Byzantine/stuck-at:
    /// they keep interacting (null gaps and pair sampling are unchanged)
    /// but their own state never updates; their interaction partners still
    /// update normally. The marking is persistent for the rest of the run
    /// — `counts()[s] ≥ byz[s]` becomes an invariant. An all-zero spec
    /// clears the overlay.
    ///
    /// # Panics
    ///
    /// Panics if `byz.len()` differs from the state-space size or
    /// `byz[s] > counts()[s]` for any `s`.
    fn set_byzantine(&mut self, byz: &[u32]);

    /// Number of rank states of the underlying protocol (the observable
    /// prefix whose full occupancy defines a correct ranking).
    fn num_rank_states(&self) -> usize;

    /// Advance the interaction clock by `nulls` scheduler draws without
    /// executing anything. Only meaningful while the configuration is
    /// silent (every draw is then a null with probability 1); used to
    /// fast-forward a silent run to its next scheduled fault. Saturates at
    /// the engine's clock width.
    fn skip_nulls(&mut self, nulls: u128);

    /// Move one agent from state `from` to state `to` (transient-fault
    /// injection). The interaction clock is not advanced. When a Byzantine
    /// overlay is active the moved agent is drawn from the non-Byzantine
    /// occupants of `from` (stuck-at agents never move).
    ///
    /// # Panics
    ///
    /// Panics if `from` has no (non-Byzantine) occupant or either state id
    /// is out of range.
    fn inject_state_fault(&mut self, from: State, to: State);

    /// Capture configuration, clocks and RNG.
    fn snapshot(&self) -> EngineSnapshot;

    /// Restore a snapshot previously taken from an engine of the same
    /// protocol instance.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shape does not match this protocol.
    fn restore(&mut self, snapshot: &EngineSnapshot);

    /// Parallel time elapsed: interactions / n.
    fn parallel_time(&self) -> f64 {
        self.interactions() as f64 / self.population_size() as f64
    }

    /// Build the report for the current (silent) configuration.
    fn report(&self) -> StabilisationReport {
        StabilisationReport {
            interactions: self.interactions(),
            interactions_wide: self.interactions_wide(),
            productive_interactions: self.productive_interactions(),
            parallel_time: self.parallel_time(),
        }
    }
}

/// Which engine backs a run — the string form is accepted by the CLI and
/// the [`Scenario`](crate::runner::Scenario) runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Pick per protocol instance: [`Count`](EngineKind::Count) for
    /// populations of at least [`EngineKind::AUTO_COUNT_THRESHOLD`],
    /// [`Jump`](EngineKind::Jump) below. The runner's default.
    Auto,
    /// Step-by-step simulation over an agent vector.
    Naive,
    /// Exact null-skipping jump chain over counts.
    Jump,
    /// Jump chain plus far-from-silence batching over counts.
    Count,
}

impl EngineKind {
    /// All concrete kinds, in documentation order ([`Auto`] resolves to
    /// one of these and is deliberately excluded).
    ///
    /// [`Auto`]: EngineKind::Auto
    pub const ALL: [EngineKind; 3] = [EngineKind::Naive, EngineKind::Jump, EngineKind::Count];

    /// Population size from which [`Auto`](EngineKind::Auto) prefers the
    /// count engine: below it the jump engine's lower per-step constant
    /// wins, above it batching dominates.
    pub const AUTO_COUNT_THRESHOLD: usize = 4096;

    /// Parse `"auto"`, `"naive"`, `"jump"` or `"count"`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(EngineKind::Auto),
            "naive" => Ok(EngineKind::Naive),
            "jump" => Ok(EngineKind::Jump),
            "count" => Ok(EngineKind::Count),
            other => Err(format!(
                "unknown engine '{other}' (expected auto|naive|jump|count)"
            )),
        }
    }

    /// The canonical name (`parse` round-trips it).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Auto => "auto",
            EngineKind::Naive => "naive",
            EngineKind::Jump => "jump",
            EngineKind::Count => "count",
        }
    }

    /// Resolve [`Auto`](EngineKind::Auto) for a population of size `n`;
    /// concrete kinds resolve to themselves.
    pub fn resolve(self, n: usize) -> EngineKind {
        match self {
            EngineKind::Auto => {
                if n >= Self::AUTO_COUNT_THRESHOLD {
                    EngineKind::Count
                } else {
                    EngineKind::Jump
                }
            }
            concrete => concrete,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Build a boxed engine of the requested kind over a shared protocol
/// ([`EngineKind::Auto`] resolves against the protocol's population size).
///
/// # Errors
///
/// Propagates configuration validation errors from the engine constructor.
pub fn make_engine<'a, P>(
    kind: EngineKind,
    protocol: &'a P,
    config: Vec<State>,
    seed: u64,
) -> Result<Box<dyn Engine + 'a>, crate::error::ConfigError>
where
    P: crate::protocol::InteractionSchema + ?Sized + 'a,
{
    make_engine_threaded(kind, protocol, config, seed, 1)
}

/// [`make_engine`] with a worker-thread budget for the count engine's
/// parallel batch splits (0 = one per available core; other kinds ignore
/// it). Count-engine trajectories are bit-identical for a fixed seed
/// regardless of `threads` — see
/// [`CountSimulation::with_threads`](crate::count::CountSimulation::with_threads).
///
/// # Errors
///
/// Propagates configuration validation errors from the engine constructor.
pub fn make_engine_threaded<'a, P>(
    kind: EngineKind,
    protocol: &'a P,
    config: Vec<State>,
    seed: u64,
    threads: usize,
) -> Result<Box<dyn Engine + 'a>, crate::error::ConfigError>
where
    P: crate::protocol::InteractionSchema + ?Sized + 'a,
{
    Ok(match kind.resolve(protocol.population_size()) {
        EngineKind::Auto => unreachable!("resolve returns a concrete kind"),
        EngineKind::Naive => Box::new(crate::sim::Simulation::new(protocol, config, seed)?),
        EngineKind::Jump => Box::new(crate::jump::JumpSimulation::new(protocol, config, seed)?),
        EngineKind::Count => Box::new(
            crate::count::CountSimulation::new(protocol, config, seed)?.with_threads(threads),
        ),
    })
}

/// Build a boxed engine directly from per-state occupancy counts, skipping
/// the agent vector entirely. The count and jump engines consume the
/// counts as-is (`O(#states)` construction); the naive engine expands them
/// into a state-sorted agent vector. At `n = 10⁹` this is what keeps a
/// scenario's peak memory at the counts footprint instead of an extra
/// `4n`-byte agent array.
///
/// # Errors
///
/// Propagates configuration validation errors from the engine constructor.
pub fn make_engine_from_counts<'a, P>(
    kind: EngineKind,
    protocol: &'a P,
    counts: Vec<u32>,
    seed: u64,
    threads: usize,
) -> Result<Box<dyn Engine + 'a>, crate::error::ConfigError>
where
    P: crate::protocol::InteractionSchema + ?Sized + 'a,
{
    Ok(match kind.resolve(protocol.population_size()) {
        EngineKind::Auto => unreachable!("resolve returns a concrete kind"),
        EngineKind::Naive => Box::new(crate::sim::Simulation::new(
            protocol,
            crate::init::from_counts(&counts),
            seed,
        )?),
        EngineKind::Jump => {
            Box::new(crate::jump::JumpSimulation::from_counts(protocol, counts, seed)?)
        }
        EngineKind::Count => Box::new(
            crate::count::CountSimulation::from_counts(protocol, counts, seed)?
                .with_threads(threads),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ClassSpec, InteractionSchema, Protocol};

    struct Ag {
        n: usize,
    }
    impl Protocol for Ag {
        fn name(&self) -> &str {
            "A_G"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_rank_states(&self) -> usize {
            self.n
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            if i == r {
                Some((i, (r + 1) % self.n as State))
            } else {
                None
            }
        }
    }
    impl InteractionSchema for Ag {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::equal_rank()]
        }
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in EngineKind::ALL.into_iter().chain([EngineKind::Auto]) {
            assert_eq!(EngineKind::parse(kind.name()).unwrap(), kind);
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert!(EngineKind::parse("warp").is_err());
    }

    #[test]
    fn auto_resolves_by_population_size() {
        let t = EngineKind::AUTO_COUNT_THRESHOLD;
        assert_eq!(EngineKind::Auto.resolve(t - 1), EngineKind::Jump);
        assert_eq!(EngineKind::Auto.resolve(t), EngineKind::Count);
        for kind in EngineKind::ALL {
            assert_eq!(kind.resolve(1), kind);
            assert_eq!(kind.resolve(1 << 30), kind);
        }
    }

    #[test]
    fn factory_resolves_auto() {
        let small = Ag { n: 24 };
        let e = make_engine(EngineKind::Auto, &small, vec![0; 24], 3).unwrap();
        assert_eq!(e.engine_name(), "jump");
        let big = Ag {
            n: EngineKind::AUTO_COUNT_THRESHOLD,
        };
        let cfg = vec![0; big.n];
        let e = make_engine(EngineKind::Auto, &big, cfg, 3).unwrap();
        assert_eq!(e.engine_name(), "count");
    }

    #[test]
    fn factory_builds_all_kinds_and_they_stabilise() {
        let p = Ag { n: 24 };
        for kind in EngineKind::ALL {
            let mut e = make_engine(kind, &p, vec![0; 24], 9).unwrap();
            assert_eq!(e.engine_name(), kind.name());
            assert_eq!(e.population_size(), 24);
            let rep = e.run_until_silent(u64::MAX).unwrap();
            assert!(e.is_silent(), "{kind}");
            assert!(e.counts().iter().all(|&c| c == 1), "{kind}");
            assert!(rep.interactions >= rep.productive_interactions);
            assert!(Engine::parallel_time(e.as_ref()) > 0.0);
        }
    }

    #[test]
    fn advance_semantics_per_engine() {
        let p = Ag { n: 16 };
        // Naive: every call executes exactly one interaction.
        let mut naive = make_engine(EngineKind::Naive, &p, vec![0; 16], 3).unwrap();
        let before = naive.interactions();
        let quantum = naive.advance().unwrap();
        assert!(quantum <= 1);
        assert_eq!(naive.interactions(), before + 1);
        // Jump: every call executes exactly one productive interaction.
        let mut jump = make_engine(EngineKind::Jump, &p, vec![0; 16], 3).unwrap();
        assert_eq!(jump.advance(), Some(1));
        assert_eq!(jump.productive_interactions(), 1);
        // Silent engines return None and never advance.
        let mut silent = make_engine(EngineKind::Count, &p, (0..16).collect(), 3).unwrap();
        assert_eq!(silent.advance(), None);
        assert_eq!(silent.interactions(), 0);
    }

    #[test]
    fn observers_see_all_productive_mass() {
        let p = Ag { n: 12 };
        for kind in EngineKind::ALL {
            let mut e = make_engine(kind, &p, vec![0; 12], 5).unwrap();
            let mut seen = 0u64;
            let mut obs = FnCountObserver(|_i, _b, _a, mult, _c: &[u32]| seen += mult);
            let rep = e.run_until_silent_observed(u64::MAX, &mut obs).unwrap();
            let _ = obs;
            assert_eq!(seen, rep.productive_interactions, "{kind}");
        }
    }

    #[test]
    fn fault_injection_and_recovery_through_the_trait() {
        let p = Ag { n: 10 };
        for kind in EngineKind::ALL {
            let mut e = make_engine(kind, &p, (0..10).collect(), 7).unwrap();
            assert!(e.is_silent());
            e.inject_state_fault(0, 4);
            assert!(!e.is_silent(), "{kind}");
            e.run_until_silent(u64::MAX).unwrap();
            assert!(e.counts().iter().all(|&c| c == 1), "{kind}");
        }
    }

    #[test]
    fn snapshot_restore_replays_exactly_per_engine() {
        let p = Ag { n: 12 };
        for kind in EngineKind::ALL {
            let mut e = make_engine(kind, &p, vec![0; 12], 11).unwrap();
            for _ in 0..5 {
                e.advance();
            }
            let snap = e.snapshot();
            assert_eq!(snap.counts().iter().sum::<u32>(), 12);
            let rep_a = e.run_until_silent(u64::MAX).unwrap();
            let counts_a = e.counts().to_vec();
            e.restore(&snap);
            assert_eq!(e.interactions(), snap.interactions());
            let rep_b = e.run_until_silent(u64::MAX).unwrap();
            assert_eq!(rep_a.interactions, rep_b.interactions, "{kind}");
            assert_eq!(counts_a, e.counts(), "{kind}");
        }
    }

    #[test]
    fn cross_engine_snapshot_restore_continues_the_configuration() {
        let p = Ag { n: 10 };
        let mut jump = make_engine(EngineKind::Jump, &p, vec![0; 10], 13).unwrap();
        jump.advance();
        let snap = jump.snapshot();
        // A count-only snapshot restores into the naive engine too (agents
        // are reconstructed from counts; anonymity makes that equivalent).
        let mut naive = make_engine(EngineKind::Naive, &p, vec![0; 10], 13).unwrap();
        naive.restore(&snap);
        assert_eq!(naive.counts(), snap.counts());
        assert_eq!(naive.interactions(), snap.interactions());
        naive.run_until_silent(u64::MAX).unwrap();
        assert!(naive.is_silent());
    }
}
