//! Compiled interaction schema and live weight state, shared by the jump
//! and count engines.
//!
//! A protocol's declarative [`InteractionSchema`] is compiled once per
//! engine construction into a [`CompiledSchema`] (flags, the equal-rank
//! membership bitset, the sparse-pair index), and the engine keeps one
//! [`ClassState`]: the occupancy counts plus every per-class weight
//! structure, updated incrementally on each count change. Both engines
//! sample the next productive ordered state pair through
//! [`ClassState::sample_pair`] with the same single-RNG-draw discipline, so
//! "jump and count are trace-identical per seed" is structural rather than
//! a convention two copies must uphold by hand.
//!
//! The class weight decomposition over occupancy counts `c_s` (with `R`/`E`
//! the number of agents in rank/extra states):
//!
//! ```text
//! W = Σ_s c_s(c_s − 1)·[equal-rank rule at s]      (equal-rank tree)
//!   + E(E − 1)·[extra–extra declared]
//!   + R·E·dirs                                     (rank–extra cross)
//!   + Σ_(a,b) c_a·(c_b − [a = b])                  (enumerated sparse pairs)
//! ```
//!
//! # Sparse pairs: a two-level hierarchy
//!
//! The enumerated sparse pairs are stored **grouped by initiator state**:
//! [`CompiledSchema::compile`] reorders `pairs` so each initiator's pairs
//! are contiguous (`group_off` delimits the groups, CSR-style), and
//! [`SparseState`] keeps one small [`WeightTree`] per group plus a
//! top-level tree over group totals. Because the groups tile the pair
//! index space contiguously in ascending order, descending the top tree
//! and then a group tree visits the identical prefix-sum order as one
//! flat tree over all pairs — sampling stays a single RNG draw and the
//! batch splitter can carve the sparse class into **per-group split
//! tasks** that run in parallel yet merge deterministically.
//!
//! Alongside the trees, `SparseState` maintains the per-pair drift
//! statistics the count engine's batch sizing needs, *incrementally* under
//! [`ClassState::update_count`]: exact per-state partner sums
//! (`Σ_(pairs touching s) c_partner`, via the `pair_touch` CSR) and two
//! lazily-refreshed maxima — the largest per-pair scale
//! `max(c_a, c_b)` and the largest partner sum — kept as *stale-high*
//! bounds with the same eager-grow/lazy-shrink discipline as
//! `max_eq_bound`/`refresh_max_eq`. That replaces the old per-batch
//! `O(Σ deg)` full rescan (`sparse_partner_scale`) with `O(deg(s))` work
//! per count change and an occasional exact refresh.
//!
//! # Memory
//!
//! The per-rank-state weight structures (`eq`, `rank_occ`) do **not** store
//! leaf weights: both are pure functions of the occupancy counts
//! (`c(c−1)` and `c`), so [`BlockTree`] keeps only one `u64` sum per block
//! of [`BLOCK`] leaves and recomputes leaves on demand. For a protocol with
//! `≈ n` rank states this is ~`n/4` bytes per tree plus the `4n`-byte
//! counts vector — down from `2·8·2n = 32n` bytes for two materialised
//! `u64` weight trees — which is what lets a single tree-protocol run reach
//! `n = 2³⁰` within a few GB.

use crate::error::ConfigError;
use crate::protocol::{ClassSpec, CrossDirection, InteractionClass, InteractionSchema, State};
use crate::rng::Xoshiro256;

/// At or below this many remaining draws, [`WeightTree::split`] switches
/// from binomial splitting to direct weighted descends (cheaper in RNG
/// draws, identical in distribution).
const SPLIT_DIRECT_THRESHOLD: u64 = 8;

/// Leaves per [`BlockTree`] block: the tree keeps one `u64` sum per block
/// and scans at most this many derived leaf weights at the bottom of a
/// descent.
const BLOCK: usize = 64;

/// Complete binary weight tree over `u64` weights: `O(log n)` point
/// updates, `O(1)` totals, `O(log n)` weighted sampling, and — the reason
/// it exists next to [`Fenwick`](crate::fenwick::Fenwick) — recursive
/// multinomial **splitting** of a batch over all weighted slots in
/// `O(occupied)` binomial draws.
///
/// `sample` maps a target offset to the slot containing it in prefix-sum
/// order, exactly like [`Fenwick::sample`](crate::fenwick::Fenwick::sample),
/// so the two structures are interchangeable draw-for-draw.
#[derive(Debug, Clone)]
pub struct WeightTree {
    /// Number of leaves (padded to a power of two).
    size: usize,
    /// Logical slot count.
    len: usize,
    /// 1-based heap layout; `tree[1]` is the root, leaves start at `size`.
    tree: Vec<u64>,
}

impl WeightTree {
    /// Tree of `len` zero weights.
    pub fn new(len: usize) -> Self {
        let size = len.next_power_of_two().max(1);
        WeightTree {
            size,
            len,
            tree: vec![0; 2 * size],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current weight at `index`.
    #[inline]
    pub fn weight(&self, index: usize) -> u64 {
        self.tree[self.size + index]
    }

    /// Sum of all weights.
    #[inline]
    pub fn total(&self) -> u64 {
        self.tree[1]
    }

    /// Set the weight at `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: u64) {
        assert!(index < self.len, "weight index out of range");
        let mut node = self.size + index;
        let old = self.tree[node];
        if old == value {
            return;
        }
        // Delta propagation: one read-modify-write per ancestor.
        if value >= old {
            let delta = value - old;
            while node >= 1 {
                self.tree[node] += delta;
                node >>= 1;
            }
        } else {
            let delta = old - value;
            while node >= 1 {
                self.tree[node] -= delta;
                node >>= 1;
            }
        }
    }

    /// Replace every weight at once and rebuild the internal sums in
    /// `O(len)` (vs `O(len log len)` for repeated [`set`](Self::set)) —
    /// the bulk constructor for population-sized trees.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != len()`.
    pub fn assign(&mut self, values: &[u64]) {
        assert_eq!(values.len(), self.len, "assign length mismatch");
        self.tree[self.size..self.size + self.len].copy_from_slice(values);
        for slot in &mut self.tree[self.size + self.len..] {
            *slot = 0;
        }
        for node in (1..self.size).rev() {
            self.tree[node] = self.tree[2 * node] + self.tree[2 * node + 1];
        }
    }

    /// Slot containing offset `target` when weights are laid end to end,
    /// together with the residual offset *within* that slot, or `None`
    /// when `target >= total()`.
    ///
    /// An in-range target can never land on a zero-weight slot (prefix
    /// sums are strict), so the descent needs no zero-leaf special case —
    /// the out-of-range guard is what makes it safe in release builds.
    #[inline]
    pub fn try_sample_with_offset(&self, mut target: u64) -> Option<(usize, u64)> {
        if target >= self.total() {
            return None;
        }
        let mut node = 1usize;
        while node < self.size {
            let left = 2 * node;
            if self.tree[left] > target {
                node = left;
            } else {
                target -= self.tree[left];
                node = left + 1;
            }
        }
        Some((node - self.size, target))
    }

    /// Slot containing offset `target`, or `None` when
    /// `target >= total()` (the checked form of [`sample`](Self::sample)).
    #[inline]
    pub fn try_sample(&self, target: u64) -> Option<usize> {
        self.try_sample_with_offset(target).map(|(slot, _)| slot)
    }

    /// Slot containing offset `target` when weights are laid end to end
    /// (identical mapping to
    /// [`Fenwick::sample`](crate::fenwick::Fenwick::sample)).
    ///
    /// # Panics
    ///
    /// Panics if `target >= total()` — in release builds too. An unchecked
    /// descent would silently walk to the last leaf (even a zero-weight
    /// one) and corrupt the caller's weighted choice; a hard error is the
    /// only safe answer. Use [`try_sample`](Self::try_sample) to handle
    /// the out-of-range case gracefully.
    #[inline]
    pub fn sample(&self, target: u64) -> usize {
        match self.try_sample(target) {
            Some(slot) => slot,
            None => panic!(
                "sample target {target} out of range (total weight {})",
                self.total()
            ),
        }
    }

    /// Split a batch of `b` weighted draws across all slots: appends
    /// `(slot, k_slot)` pairs with `Σ k_slot == b`, distributed
    /// multinomially with probabilities proportional to slot weights.
    ///
    /// Implemented by recursive binomial splitting at each tree node, so
    /// the cost is `O(occupied)` binomial draws rather than `O(b)` samples.
    ///
    /// # Panics
    ///
    /// Debug-panics if `b > 0` with zero total weight.
    pub fn split(&self, b: u64, rng: &mut Xoshiro256, out: &mut Vec<(usize, u64)>) {
        if b == 0 {
            return;
        }
        debug_assert!(self.total() > 0, "cannot split over zero weight");
        self.split_rec(1, b, rng, out);
    }

    fn split_rec(&self, node: usize, b: u64, rng: &mut Xoshiro256, out: &mut Vec<(usize, u64)>) {
        if b == 0 {
            return;
        }
        if node >= self.size {
            out.push((node - self.size, b));
            return;
        }
        if b <= SPLIT_DIRECT_THRESHOLD {
            // Few draws left in this subtree: b direct weighted descends
            // (one RNG draw each) beat a binomial per level. Identical in
            // distribution — both are the multinomial over leaf weights.
            let total = self.tree[node];
            for _ in 0..b {
                let mut target = rng.below(total);
                let mut pos = node;
                while pos < self.size {
                    let left = 2 * pos;
                    if self.tree[left] > target {
                        pos = left;
                    } else {
                        target -= self.tree[left];
                        pos = left + 1;
                    }
                }
                let leaf = pos - self.size;
                // Runs of the same leaf are coalesced opportunistically;
                // duplicates across runs are harmless to the caller.
                match out.last_mut() {
                    Some((last, k)) if *last == leaf => *k += 1,
                    _ => out.push((leaf, 1)),
                }
            }
            return;
        }
        let left = 2 * node;
        let wl = self.tree[left];
        let wr = self.tree[left + 1];
        let kl = if wr == 0 {
            b
        } else if wl == 0 {
            0
        } else {
            rng.binomial(b, wl as f64 / (wl + wr) as f64)
        };
        self.split_rec(left, kl, rng, out);
        self.split_rec(left + 1, b - kl, rng, out);
    }
}

/// Weight tree over *derived* leaves: the structure stores one `u64` sum
/// per block of [`BLOCK`] leaves (in an internal [`WeightTree`]) and the
/// caller supplies the leaf weight function — for the engines a pure
/// function of the occupancy counts, so no per-leaf array is ever
/// materialised.
///
/// Sampling descends the block tree and then scans at most [`BLOCK`]
/// derived leaves; point updates touch one block sum; multinomial
/// splitting mirrors [`WeightTree::split`], finishing each block with
/// chained conditional binomials over the derived leaves.
///
/// [`partition`](Self::partition) additionally pre-splits a batch into
/// independent subtree tasks — the unit of work the count engine hands to
/// its thread pool. Each task carries the exact conditional binomial the
/// sequential split would have drawn at that node, so executing the tasks
/// with independent RNG streams reproduces the same multinomial law.
#[derive(Debug, Clone)]
pub(crate) struct BlockTree {
    /// Number of leaves.
    len: usize,
    /// One `u64` sum per block of `BLOCK` leaves.
    blocks: WeightTree,
}

impl BlockTree {
    /// Tree over `len` derived leaves, all sums zero.
    pub fn new(len: usize) -> Self {
        BlockTree {
            len,
            blocks: WeightTree::new(len.div_ceil(BLOCK)),
        }
    }

    /// True if the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all leaf weights.
    #[inline]
    pub fn total(&self) -> u64 {
        self.blocks.total()
    }

    /// Account for the leaf at `i` changing from weight `old` to `new`
    /// (leaves are derived, so the caller supplies both values).
    #[inline]
    pub fn update(&mut self, i: usize, old: u64, new: u64) {
        if old == new {
            return;
        }
        let b = i / BLOCK;
        let sum = self.blocks.weight(b);
        debug_assert!(sum >= old, "block sum below departing leaf weight");
        self.blocks.set(b, sum - old + new);
    }

    /// Recompute every block sum from the leaf function in `O(len)`.
    pub fn rebuild<F: Fn(usize) -> u64>(&mut self, leaf: F) {
        let mut sums = vec![0u64; self.blocks.len()];
        for i in 0..self.len {
            sums[i / BLOCK] += leaf(i);
        }
        self.blocks.assign(&sums);
    }

    /// Leaf containing offset `target` in prefix-sum order — the same
    /// mapping a materialised [`WeightTree::sample`] over the leaf weights
    /// would produce.
    ///
    /// # Panics
    ///
    /// Panics if `target >= total()`.
    #[inline]
    pub fn sample<F: Fn(usize) -> u64>(&self, target: u64, leaf: &F) -> usize {
        let (b, rem) = match self.blocks.try_sample_with_offset(target) {
            Some(hit) => hit,
            None => panic!(
                "sample target {target} out of range (total weight {})",
                self.total()
            ),
        };
        self.scan_block(b, rem, leaf)
    }

    /// Leaf of block `b` containing the residual offset `rem`.
    fn scan_block<F: Fn(usize) -> u64>(&self, b: usize, mut rem: u64, leaf: &F) -> usize {
        let start = b * BLOCK;
        let end = (start + BLOCK).min(self.len);
        for i in start..end {
            let w = leaf(i);
            if rem < w {
                return i;
            }
            rem -= w;
        }
        panic!("block {b} sum inconsistent with derived leaf weights");
    }

    /// Multinomial split of `b` draws over all leaves, appending
    /// `(leaf, k)` pairs in ascending leaf order with `Σ k == b`.
    /// Equivalent in distribution to [`WeightTree::split`] over the
    /// materialised leaf weights. (The count engine enters through
    /// [`partition`](Self::partition)/[`split_node`](Self::split_node)
    /// instead so the work can fan out over threads.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn split<F: Fn(usize) -> u64>(
        &self,
        b: u64,
        rng: &mut Xoshiro256,
        leaf: &F,
        out: &mut Vec<(usize, u64)>,
    ) {
        if b == 0 {
            return;
        }
        debug_assert!(self.total() > 0, "cannot split over zero weight");
        self.split_node(1, b, rng, leaf, out);
    }

    /// Continue a split from `node` in the block-tree node space (`1` is
    /// the root) — the execution half of [`partition`](Self::partition).
    pub fn split_node<F: Fn(usize) -> u64>(
        &self,
        node: usize,
        k: u64,
        rng: &mut Xoshiro256,
        leaf: &F,
        out: &mut Vec<(usize, u64)>,
    ) {
        if k == 0 {
            return;
        }
        let t = &self.blocks;
        if node >= t.size {
            self.split_block(node - t.size, k, rng, leaf, out);
            return;
        }
        if k <= SPLIT_DIRECT_THRESHOLD {
            // Same direct-descent shortcut as WeightTree::split_rec.
            let total = t.tree[node];
            for _ in 0..k {
                let mut target = rng.below(total);
                let mut pos = node;
                while pos < t.size {
                    let left = 2 * pos;
                    if t.tree[left] > target {
                        pos = left;
                    } else {
                        target -= t.tree[left];
                        pos = left + 1;
                    }
                }
                let i = self.scan_block(pos - t.size, target, leaf);
                match out.last_mut() {
                    Some((last, c)) if *last == i => *c += 1,
                    _ => out.push((i, 1)),
                }
            }
            return;
        }
        let left = 2 * node;
        let wl = t.tree[left];
        let wr = t.tree[left + 1];
        let kl = if wr == 0 {
            k
        } else if wl == 0 {
            0
        } else {
            rng.binomial(k, wl as f64 / (wl + wr) as f64)
        };
        self.split_node(left, kl, rng, leaf, out);
        self.split_node(left + 1, k - kl, rng, leaf, out);
    }

    /// Chained conditional binomials over one block's derived leaves —
    /// together a multinomial over the block.
    fn split_block<F: Fn(usize) -> u64>(
        &self,
        b: usize,
        k: u64,
        rng: &mut Xoshiro256,
        leaf: &F,
        out: &mut Vec<(usize, u64)>,
    ) {
        let start = b * BLOCK;
        let end = (start + BLOCK).min(self.len);
        chain_split(
            rng,
            k,
            self.blocks.weight(b),
            (start..end).map(|i| (i, leaf(i))),
            out,
        );
    }

    /// Deterministically pre-split `k` draws into independent subtree
    /// tasks: descends while a side holds more than `task_draws` draws,
    /// drawing exactly the conditional binomials a full
    /// [`split`](Self::split) would draw at those nodes, and appends
    /// `(node, k)` pairs in left-to-right order. Completing each task with
    /// [`split_node`](Self::split_node) under an *independent* RNG stream
    /// yields the same multinomial law as one sequential split — and a
    /// result that does not depend on how tasks are scheduled over
    /// threads.
    pub fn partition(
        &self,
        k: u64,
        task_draws: u64,
        rng: &mut Xoshiro256,
        out: &mut Vec<(usize, u64)>,
    ) {
        if k == 0 {
            return;
        }
        self.partition_rec(1, k, task_draws, rng, out);
    }

    fn partition_rec(
        &self,
        node: usize,
        k: u64,
        task_draws: u64,
        rng: &mut Xoshiro256,
        out: &mut Vec<(usize, u64)>,
    ) {
        if k == 0 {
            return;
        }
        if k <= task_draws || node >= self.blocks.size {
            out.push((node, k));
            return;
        }
        let left = 2 * node;
        let wl = self.blocks.tree[left];
        let wr = self.blocks.tree[left + 1];
        let kl = if wr == 0 {
            k
        } else if wl == 0 {
            0
        } else {
            rng.binomial(k, wl as f64 / (wl + wr) as f64)
        };
        self.partition_rec(left, kl, task_draws, rng, out);
        self.partition_rec(left + 1, k - kl, task_draws, rng, out);
    }
}

/// Split `k` draws across weighted `items` by chained conditional
/// binomials — together a multinomial over the weights. Appends
/// `(slot, draws)` for every slot that received draws.
///
/// This is the single implementation of the chained-split law: the count
/// engine's extra-state splits and [`BlockTree`]'s in-block splits both
/// delegate here, so a change to the law cannot leave the two diverged.
pub(crate) fn chain_split<S: Copy>(
    rng: &mut Xoshiro256,
    mut k: u64,
    total: u64,
    items: impl Iterator<Item = (S, u64)>,
    out: &mut Vec<(S, u64)>,
) {
    let mut w_rem = total;
    for (slot, w) in items {
        if k == 0 {
            break;
        }
        if w == 0 {
            continue;
        }
        let draws = if w >= w_rem {
            k
        } else {
            rng.binomial(k, w as f64 / w_rem as f64)
        };
        if draws > 0 {
            out.push((slot, draws));
        }
        k -= draws;
        w_rem -= w;
    }
    debug_assert_eq!(k, 0, "chain split left draws unassigned");
}

/// A protocol's [`InteractionSchema`] flattened into the form the engines
/// consume: flags per structured class, the equal-rank membership bitset,
/// and an index over the enumerated sparse pairs.
#[derive(Debug, Clone)]
pub(crate) struct CompiledSchema {
    /// Whether the `EqualRank` class is declared.
    pub eq: bool,
    pub eq_exchangeable: bool,
    /// Bitset over rank states: bit `s` set iff an equal-rank rule exists
    /// at `s` (empty when `eq` is false). A bitset rather than
    /// `Vec<bool>` — at `n = 2³⁰` rank states that is 128 MB vs 1 GB.
    pub has_eq: Vec<u64>,
    /// Whether the `ExtraExtra` class is declared.
    pub xx: bool,
    pub xx_exchangeable: bool,
    /// Declared cross direction(s), if any (two single-direction
    /// declarations merge into `Both`).
    pub cross: Option<CrossDirection>,
    pub cross_exchangeable: bool,
    /// Enumerated sparse pairs, reordered group-contiguously: stably
    /// sorted by initiator state, so each initiator's pairs form one
    /// contiguous index range (a *group* — the unit of the two-level
    /// sparse weight hierarchy and of parallel sparse split tasks).
    pub pairs: Vec<(State, State)>,
    /// All sparse pairs exchangeable (the batch granularity is the class).
    pub pairs_exchangeable: bool,
    /// CSR offsets into [`pair_touch`](Self::pair_touch): the pair indices
    /// whose weight depends on state `s`'s occupancy are
    /// `pair_touch[pair_touch_off[s]..pair_touch_off[s + 1]]`, ascending.
    /// (Length `num_states + 1`, empty when there are no pairs.)
    pub pair_touch_off: Vec<u32>,
    /// CSR indices for [`pair_touch_off`](Self::pair_touch_off).
    pub pair_touch: Vec<u32>,
    /// Group boundaries: group `g` owns pairs
    /// `group_off[g]..group_off[g + 1]` (length `num_groups + 1`; one
    /// group per distinct initiator state, in ascending state order).
    pub group_off: Vec<u32>,
    /// Group of each pair (inverse of [`group_off`](Self::group_off)).
    pub pair_group: Vec<u32>,
}

impl CompiledSchema {
    /// Whether rank state `s` has an equal-rank rule.
    #[inline]
    pub fn eq_rule(&self, s: usize) -> bool {
        self.eq && (self.has_eq[s >> 6] >> (s & 63)) & 1 != 0
    }

    /// Indices of the pairs whose weight depends on state `s`'s occupancy
    /// (ascending; empty when there are no pairs).
    #[inline]
    pub fn pair_touch(&self, s: usize) -> &[u32] {
        if self.pair_touch_off.is_empty() {
            return &[];
        }
        let lo = self.pair_touch_off[s] as usize;
        let hi = self.pair_touch_off[s + 1] as usize;
        &self.pair_touch[lo..hi]
    }

    /// Number of sparse groups (distinct initiator states).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.group_off.len().saturating_sub(1)
    }

    /// Pair-index range owned by group `g`.
    #[inline]
    pub fn group_range(&self, g: usize) -> (usize, usize) {
        (self.group_off[g] as usize, self.group_off[g + 1] as usize)
    }

    /// Flatten `p`'s declared classes.
    ///
    /// # Panics
    ///
    /// Panics on declarations no engine can execute: duplicate structured
    /// classes, duplicate enumerated pairs, or pair states out of range.
    /// (Semantic agreement with the transition function is checked by
    /// [`crate::protocol::validate_interaction_schema`], not here.)
    pub fn compile<P: InteractionSchema + ?Sized>(p: &P) -> Self {
        let num_ranks = p.num_rank_states();
        let num_states = p.num_states();
        let mut schema = CompiledSchema {
            eq: false,
            eq_exchangeable: true,
            has_eq: Vec::new(),
            xx: false,
            xx_exchangeable: true,
            cross: None,
            cross_exchangeable: true,
            pairs: Vec::new(),
            pairs_exchangeable: true,
            pair_touch_off: Vec::new(),
            pair_touch: Vec::new(),
            group_off: Vec::new(),
            pair_group: Vec::new(),
        };
        for ClassSpec {
            class,
            exchangeable,
        } in p.interaction_classes()
        {
            match class {
                InteractionClass::EqualRank => {
                    assert!(!schema.eq, "EqualRank class declared twice");
                    schema.eq = true;
                    schema.eq_exchangeable = exchangeable;
                }
                InteractionClass::ExtraExtra => {
                    assert!(!schema.xx, "ExtraExtra class declared twice");
                    schema.xx = true;
                    schema.xx_exchangeable = exchangeable;
                }
                InteractionClass::RankExtra(d) => {
                    schema.cross = Some(match (schema.cross, d) {
                        (None, d) => d,
                        (Some(CrossDirection::RankInitiator), CrossDirection::ExtraInitiator)
                        | (Some(CrossDirection::ExtraInitiator), CrossDirection::RankInitiator) => {
                            CrossDirection::Both
                        }
                        (Some(prev), d) => {
                            panic!("RankExtra directions {prev:?} and {d:?} overlap")
                        }
                    });
                    schema.cross_exchangeable &= exchangeable;
                }
                InteractionClass::Pair {
                    initiator,
                    responder,
                } => {
                    assert!(
                        (initiator as usize) < num_states && (responder as usize) < num_states,
                        "sparse pair ({initiator},{responder}) out of state range"
                    );
                    assert!(
                        !schema.pairs.contains(&(initiator, responder)),
                        "sparse pair ({initiator},{responder}) declared twice"
                    );
                    schema.pairs.push((initiator, responder));
                    schema.pairs_exchangeable &= exchangeable;
                }
            }
        }
        if schema.eq {
            schema.has_eq = vec![0u64; num_ranks.div_ceil(64)];
            for s in 0..num_ranks {
                if p.equal_rank_rule(s as State) {
                    schema.has_eq[s >> 6] |= 1 << (s & 63);
                }
            }
        }
        if !schema.pairs.is_empty() {
            // Group-contiguous reorder: one group per distinct initiator
            // state. Pair order is not semantically observable — schema
            // validation is set-based, and both engines sample pairs
            // weight-proportionally through the same structure — so the
            // stable sort is free to pick the layout the two-level
            // hierarchy wants: each group a contiguous pair-index range.
            schema.pairs.sort_by_key(|&(a, _)| a);
            let np = schema.pairs.len();
            let mut pair_group = vec![0u32; np];
            let mut group_off: Vec<u32> = Vec::new();
            let mut prev: Option<State> = None;
            for (i, &(a, _)) in schema.pairs.iter().enumerate() {
                if prev != Some(a) {
                    group_off.push(i as u32);
                    prev = Some(a);
                }
                pair_group[i] = group_off.len() as u32 - 1;
            }
            group_off.push(np as u32);
            schema.group_off = group_off;
            schema.pair_group = pair_group;
            // Touch CSR (counting pass, then fill): which pairs re-weight
            // when a state's occupancy changes. Filling in ascending pair
            // order keeps every per-state list sorted — and therefore
            // group-clustered, which lets `SparseState::on_count_change`
            // coalesce its top-level tree updates per group.
            let mut off = vec![0u32; num_states + 1];
            for &(a, b) in &schema.pairs {
                off[a as usize + 1] += 1;
                if b != a {
                    off[b as usize + 1] += 1;
                }
            }
            for s in 0..num_states {
                off[s + 1] += off[s];
            }
            let mut touch = vec![0u32; off[num_states] as usize];
            let mut cursor: Vec<u32> = off.clone();
            for (i, &(a, b)) in schema.pairs.iter().enumerate() {
                touch[cursor[a as usize] as usize] = i as u32;
                cursor[a as usize] += 1;
                if b != a {
                    touch[cursor[b as usize] as usize] = i as u32;
                    cursor[b as usize] += 1;
                }
            }
            schema.pair_touch_off = off;
            schema.pair_touch = touch;
        }
        schema
    }
}

/// Weight of one enumerated ordered state pair under `counts`.
#[inline]
fn pair_weight(counts: &[u32], a: State, b: State) -> u64 {
    let ca = counts[a as usize] as u64;
    if a == b {
        ca * ca.saturating_sub(1)
    } else {
        ca * counts[b as usize] as u64
    }
}

/// Equal-rank leaf weight for occupancy `c`.
#[inline]
fn eq_weight_of(c: u64) -> u64 {
    c * c.saturating_sub(1)
}

/// Relative drift scale of one enumerated pair: `w_p / min(c_a, c_b)`,
/// i.e. `max(c_a, c_b)` off the diagonal and `c − 1` on it. Capping the
/// expected batch draws of every pair at `min(c_a, c_b)/8` is exactly
/// `b ≤ W / (8·max_p pair_scale)`.
#[inline]
fn pair_scale(counts: &[u32], a: State, b: State) -> u64 {
    if a == b {
        (counts[a as usize] as u64).saturating_sub(1)
    } else {
        counts[a as usize].max(counts[b as usize]) as u64
    }
}

/// Two-level weight hierarchy over the enumerated sparse pairs, plus the
/// incrementally-maintained drift statistics that price a batch.
///
/// Pairs are laid out group-contiguously by [`CompiledSchema::compile`]
/// (one group per initiator state); `trees[g]` holds group `g`'s pair
/// weights under local indices and `groups` mirrors each `trees[g].total()`
/// as leaf `g`. Because groups tile the pair index space in order, the
/// concatenated prefix-sum order of the hierarchy equals that of one flat
/// [`WeightTree`] over all pairs — sampling is draw-for-draw identical to
/// the flat layout it replaces, and a batch can be split *per group* as
/// independent tasks.
///
/// The drift side replaces the count engine's former per-batch `O(Σ deg)`
/// rescan: `partner_sum` and `occupied` are exact under
/// [`on_count_change`](Self::on_count_change), while the two `max_*`
/// bounds grow eagerly and shrink only on
/// [`refresh_bounds`](Self::refresh_bounds) — the same stale-high
/// discipline as [`ClassState::max_eq_bound`].
#[derive(Debug, Clone)]
pub(crate) struct SparseState {
    /// Per-group pair-weight trees (local pair indices).
    trees: Vec<WeightTree>,
    /// Top-level tree over groups; leaf `g` is `trees[g].total()`.
    groups: WeightTree,
    /// `partner_sum[s]` = Σ over pairs touching `s` of the partner's
    /// occupancy (a diagonal pair at `s` contributes `2(c_s − 1)`): the
    /// per-interaction rate at which sparse draws consume agents of `s`,
    /// relative to `c_s/W`. Exact at all times.
    partner_sum: Vec<u64>,
    /// Upper bound on `max_s partner_sum[s]`; eager-grow, lazy-shrink.
    pub max_partner_bound: u64,
    /// Upper bound on `max_p pair_scale(p)` over positive-weight pairs;
    /// eager-grow, lazy-shrink.
    pub max_pair_scale_bound: u64,
    /// Number of positive-weight pairs. Exact at all times.
    occupied: u64,
}

impl SparseState {
    /// Zero-pair placeholder.
    pub fn empty() -> Self {
        SparseState {
            trees: Vec::new(),
            groups: WeightTree::new(0),
            partner_sum: Vec::new(),
            max_partner_bound: 1,
            max_pair_scale_bound: 1,
            occupied: 0,
        }
    }

    /// Build the hierarchy and drift statistics for `schema` under
    /// `counts`.
    pub fn new(schema: &CompiledSchema, counts: &[u32]) -> Self {
        if schema.pairs.is_empty() {
            return SparseState::empty();
        }
        let ng = schema.num_groups();
        let mut trees = Vec::with_capacity(ng);
        let mut groups = WeightTree::new(ng);
        let mut occupied = 0u64;
        for g in 0..ng {
            let (start, end) = schema.group_range(g);
            let weights: Vec<u64> = schema.pairs[start..end]
                .iter()
                .map(|&(a, b)| pair_weight(counts, a, b))
                .collect();
            occupied += weights.iter().filter(|&&w| w > 0).count() as u64;
            let mut t = WeightTree::new(end - start);
            t.assign(&weights);
            groups.set(g, t.total());
            trees.push(t);
        }
        let mut partner_sum = vec![0u64; counts.len()];
        for &(a, b) in &schema.pairs {
            if a == b {
                partner_sum[a as usize] += 2 * (counts[a as usize] as u64).saturating_sub(1);
            } else {
                partner_sum[a as usize] += counts[b as usize] as u64;
                partner_sum[b as usize] += counts[a as usize] as u64;
            }
        }
        let mut state = SparseState {
            trees,
            groups,
            partner_sum,
            max_partner_bound: 1,
            max_pair_scale_bound: 1,
            occupied,
        };
        state.refresh_bounds(schema, counts);
        state
    }

    /// Sum of all pair weights.
    #[inline]
    pub fn total(&self) -> u64 {
        self.groups.total()
    }

    /// Number of positive-weight pairs.
    #[inline]
    pub fn occupied_pairs(&self) -> u64 {
        self.occupied
    }

    /// Number of groups.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.trees.len()
    }

    /// Current weight of group `g`.
    #[inline]
    pub fn group_total(&self, g: usize) -> u64 {
        self.groups.weight(g)
    }

    /// Batch drift scale of the sparse class: `W / scale / 8` draws keep
    /// (a) every pair's expected draws under `min(c_a, c_b)/8` (the
    /// per-pair cap, via `max_pair_scale_bound`) and (b) every state's
    /// expected gross sparse consumption under `c_s/4` (the per-state
    /// floor, via `max_partner_bound / 2` — a draw of pair `p` consumes an
    /// agent of `s` at relative rate `c_s·partner_sum[s]/W`). The bounds
    /// are stale-high between refreshes, so the scale never under-prices
    /// drift.
    #[inline]
    pub fn drift_scale(&self) -> u64 {
        self.max_pair_scale_bound
            .max(self.max_partner_bound / 2)
            .max(1)
    }

    /// Global pair index containing offset `target` of the concatenated
    /// prefix-sum order — identical to a flat [`WeightTree::sample`] over
    /// all pair weights.
    ///
    /// # Panics
    ///
    /// Panics if `target >= total()`, like [`WeightTree::sample`].
    #[inline]
    pub fn sample(&self, target: u64, schema: &CompiledSchema) -> usize {
        let (g, rem) = match self.groups.try_sample_with_offset(target) {
            Some(hit) => hit,
            None => panic!(
                "sample target {target} out of range (total weight {})",
                self.total()
            ),
        };
        schema.group_off[g] as usize + self.trees[g].sample(rem)
    }

    /// Multinomial split of `k` draws over group `g`'s pairs, appending
    /// `(local_index, draws)` pairs (add `group_off[g]` for global
    /// indices).
    pub fn split_group(
        &self,
        g: usize,
        k: u64,
        rng: &mut Xoshiro256,
        out: &mut Vec<(usize, u64)>,
    ) {
        self.trees[g].split(k, rng, out);
    }

    /// Account for state `s`'s occupancy changing `old → new`: re-weight
    /// every pair touching `s`, and maintain the partner sums, occupied
    /// count, and eager-grow bounds. `O(deg(s))` tree updates, with the
    /// top-level group leaf written once per touched group (touch lists
    /// are group-clustered).
    pub fn on_count_change(
        &mut self,
        schema: &CompiledSchema,
        counts: &[u32],
        s: usize,
        old: u64,
        new: u64,
    ) {
        let mut cur_group = usize::MAX;
        for &pi in schema.pair_touch(s) {
            let pi = pi as usize;
            let (a, b) = schema.pairs[pi];
            let g = schema.pair_group[pi] as usize;
            if g != cur_group {
                if cur_group != usize::MAX {
                    self.groups.set(cur_group, self.trees[cur_group].total());
                }
                cur_group = g;
            }
            let local = pi - schema.group_off[g] as usize;
            let old_w = self.trees[g].weight(local);
            let w = pair_weight(counts, a, b);
            if w != old_w {
                self.trees[g].set(local, w);
                if old_w == 0 {
                    self.occupied += 1;
                } else if w == 0 {
                    self.occupied -= 1;
                }
            }
            if a == b {
                // The diagonal pair at `s` is the only term of
                // `partner_sum[s]` that moves when `c_s` changes.
                let ps = &mut self.partner_sum[s];
                *ps = *ps + 2 * new.saturating_sub(1) - 2 * old.saturating_sub(1);
                if *ps > self.max_partner_bound {
                    self.max_partner_bound = *ps;
                }
            } else {
                let t = if a as usize == s { b } else { a } as usize;
                let ps = &mut self.partner_sum[t];
                *ps = *ps + new - old;
                if *ps > self.max_partner_bound {
                    self.max_partner_bound = *ps;
                }
            }
            if w > 0 {
                let sc = pair_scale(counts, a, b);
                if sc > self.max_pair_scale_bound {
                    self.max_pair_scale_bound = sc;
                }
            }
        }
        if cur_group != usize::MAX {
            self.groups.set(cur_group, self.trees[cur_group].total());
        }
    }

    /// Re-derive both lazy bounds exactly (they only grow between calls).
    /// `O(num_states + num_pairs)`.
    pub fn refresh_bounds(&mut self, schema: &CompiledSchema, counts: &[u32]) {
        let mut max_partner = 1u64;
        for &ps in &self.partner_sum {
            max_partner = max_partner.max(ps);
        }
        self.max_partner_bound = max_partner;
        let mut max_scale = 1u64;
        for &(a, b) in &schema.pairs {
            if pair_weight(counts, a, b) > 0 {
                max_scale = max_scale.max(pair_scale(counts, a, b));
            }
        }
        self.max_pair_scale_bound = max_scale;
    }
}

/// Live weight state for a compiled schema: occupancy counts plus every
/// per-class weight structure, kept consistent through
/// [`update_count`](Self::update_count).
#[derive(Debug, Clone)]
pub(crate) struct ClassState {
    pub schema: CompiledSchema,
    pub counts: Vec<u32>,
    pub num_ranks: usize,
    /// Block sums of the per-rank-state weights `c(c−1)` where an
    /// equal-rank rule exists; leaves are derived from `counts` on demand
    /// (empty when the class is not declared).
    pub eq: BlockTree,
    /// Block sums of the per-rank-state occupancy, for cross-pair sampling
    /// and splitting; leaves are the `counts` entries themselves (empty
    /// when no cross class is declared).
    pub rank_occ: BlockTree,
    /// Two-level sparse-pair hierarchy plus incremental drift statistics
    /// (empty without enumerated pairs).
    pub sparse: SparseState,
    pub rank_agents: u64,
    pub extra_agents: u64,
    /// Upper bound on the occupancy of any rank state with an equal-rank
    /// rule; grows eagerly on updates, shrinks only on
    /// [`refresh_max_eq`](Self::refresh_max_eq). Drives the count engine's
    /// equal-rank batch cap; harmless bookkeeping for the jump engine.
    pub max_eq_bound: u64,
}

impl ClassState {
    /// Build the weight state for `protocol` from per-state occupancy
    /// counts.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::WrongPopulation`] if the counts vector
    /// length differs from the state-space size or the counts do not sum
    /// to the population.
    pub fn new<P: InteractionSchema + ?Sized>(
        protocol: &P,
        counts: Vec<u32>,
    ) -> Result<Self, ConfigError> {
        let n = protocol.population_size();
        if counts.len() != protocol.num_states() {
            return Err(ConfigError::WrongPopulation {
                expected: protocol.num_states(),
                got: counts.len(),
            });
        }
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        if total != n as u64 {
            return Err(ConfigError::WrongPopulation {
                expected: n,
                got: total as usize,
            });
        }
        let schema = CompiledSchema::compile(protocol);
        let num_ranks = protocol.num_rank_states();
        let mut eq = BlockTree::new(if schema.eq { num_ranks } else { 0 });
        let mut rank_occ = BlockTree::new(if schema.cross.is_some() { num_ranks } else { 0 });
        let sparse = SparseState::new(&schema, &counts);
        let mut rank_agents = 0u64;
        let mut max_eq_bound = 1u64;
        for (s, &c) in counts.iter().take(num_ranks).enumerate() {
            let c = c as u64;
            rank_agents += c;
            if schema.eq_rule(s) {
                max_eq_bound = max_eq_bound.max(c);
            }
        }
        if schema.eq {
            eq.rebuild(|s| {
                if schema.eq_rule(s) {
                    eq_weight_of(counts[s] as u64)
                } else {
                    0
                }
            });
        }
        if !rank_occ.is_empty() {
            rank_occ.rebuild(|s| counts[s] as u64);
        }
        let extra_agents = n as u64 - rank_agents;
        Ok(ClassState {
            schema,
            counts,
            num_ranks,
            eq,
            rank_occ,
            sparse,
            rank_agents,
            extra_agents,
            max_eq_bound,
        })
    }

    /// A cheap zero-population placeholder, used by the count engine's
    /// worker pool to move the real state into a shared batch job (and
    /// back) without cloning it. Never sampled from.
    pub fn placeholder() -> Self {
        ClassState {
            schema: CompiledSchema {
                eq: false,
                eq_exchangeable: false,
                has_eq: Vec::new(),
                xx: false,
                xx_exchangeable: false,
                cross: None,
                cross_exchangeable: false,
                pairs: Vec::new(),
                pairs_exchangeable: false,
                pair_touch_off: Vec::new(),
                pair_touch: Vec::new(),
                group_off: Vec::new(),
                pair_group: Vec::new(),
            },
            counts: Vec::new(),
            num_ranks: 0,
            eq: BlockTree::new(0),
            rank_occ: BlockTree::new(0),
            sparse: SparseState::empty(),
            rank_agents: 0,
            extra_agents: 0,
            max_eq_bound: 0,
        }
    }

    /// Equal-rank leaf weight of rank state `s`, derived from the current
    /// occupancy.
    #[inline]
    pub fn eq_leaf(&self, s: usize) -> u64 {
        if self.schema.eq_rule(s) {
            eq_weight_of(self.counts[s] as u64)
        } else {
            0
        }
    }

    /// Occupancy leaf weight of rank state `s` (the cross class samples
    /// rank participants proportionally to occupancy).
    #[inline]
    pub fn rank_leaf(&self, s: usize) -> u64 {
        self.counts[s] as u64
    }

    /// Add `delta` to the occupancy of state `s`, updating every weight
    /// structure the schema declares.
    ///
    /// # Panics
    ///
    /// Panics if the occupancy would leave `0..=u32::MAX` — a transiently
    /// negative intermediate must never be silently wrapped into a huge
    /// weight, so out-of-order delta sequences are a hard error.
    #[inline]
    pub fn update_count(&mut self, s: State, delta: i64) {
        let su = s as usize;
        let old = self.counts[su] as u64;
        let new = match old.checked_add_signed(delta) {
            Some(v) if v <= u32::MAX as u64 => v,
            _ => panic!(
                "occupancy of state {s} left 0..=u32::MAX: {old} {delta:+} \
                 (out-of-order delta application?)"
            ),
        };
        self.counts[su] = new as u32;
        if su < self.num_ranks {
            self.rank_agents = self
                .rank_agents
                .checked_add_signed(delta)
                .expect("rank population went negative");
            if !self.rank_occ.is_empty() {
                self.rank_occ.update(su, old, new);
            }
            if self.schema.eq_rule(su) {
                self.eq.update(su, eq_weight_of(old), eq_weight_of(new));
                if new > self.max_eq_bound {
                    self.max_eq_bound = new;
                }
            }
        } else {
            self.extra_agents = self
                .extra_agents
                .checked_add_signed(delta)
                .expect("extra population went negative");
        }
        if !self.schema.pairs.is_empty() {
            self.sparse
                .on_count_change(&self.schema, &self.counts, su, old, new);
        }
    }

    /// Re-derive the exact maximum equal-rank occupancy (the tracked bound
    /// only grows between calls). `O(num_ranks)`.
    pub fn refresh_max_eq(&mut self) {
        let mut max = 1u64;
        for s in 0..self.num_ranks {
            if self.schema.eq_rule(s) {
                max = max.max(self.counts[s] as u64);
            }
        }
        self.max_eq_bound = max;
    }

    /// Re-derive the sparse class's lazy drift bounds exactly (they only
    /// grow between calls). `O(num_states + num_pairs)`.
    pub fn refresh_sparse(&mut self) {
        self.sparse.refresh_bounds(&self.schema, &self.counts);
    }

    /// Weight of the equal-rank class.
    #[inline]
    pub fn eq_weight(&self) -> u64 {
        self.eq.total()
    }

    /// Weight of the extra–extra class.
    #[inline]
    pub fn xx_weight(&self) -> u64 {
        if self.schema.xx {
            self.extra_agents * self.extra_agents.saturating_sub(1)
        } else {
            0
        }
    }

    /// Weight of the rank–extra cross class.
    #[inline]
    pub fn cross_weight(&self) -> u64 {
        match self.schema.cross {
            None => 0,
            Some(d) => d.multiplier() * self.rank_agents * self.extra_agents,
        }
    }

    /// Weight of the enumerated sparse-pair class.
    #[inline]
    pub fn sparse_weight(&self) -> u64 {
        self.sparse.total()
    }

    /// Total number of productive ordered pairs in the current
    /// configuration.
    #[inline]
    pub fn productive_pairs(&self) -> u64 {
        self.eq_weight() + self.xx_weight() + self.cross_weight() + self.sparse_weight()
    }

    /// Number of occupied extra states and the maximum extra-state
    /// occupancy. `O(num_extra_states)`.
    pub fn extra_occupancy(&self) -> (usize, u64) {
        let mut occupied = 0usize;
        let mut max = 0u64;
        for &c in &self.counts[self.num_ranks..] {
            if c > 0 {
                occupied += 1;
                max = max.max(c as u64);
            }
        }
        (occupied, max)
    }

    /// Sample the `idx`-th extra agent (0-based over all agents in extra
    /// states, grouped by state id) and return its state.
    pub fn extra_state_at(&self, mut idx: u64, skip_one_of: Option<State>) -> State {
        for s in self.num_ranks..self.counts.len() {
            let mut c = self.counts[s] as u64;
            if skip_one_of == Some(s as State) {
                c -= 1;
            }
            if idx < c {
                return s as State;
            }
            idx -= c;
        }
        unreachable!("extra agent index out of range");
    }

    /// Draw one productive ordered state pair with exactly one `below(W)`
    /// RNG draw, `W = ` [`productive_pairs`](Self::productive_pairs)
    /// (which the caller has verified to be positive). Class order is
    /// equal-rank, extra–extra, cross, sparse.
    pub fn sample_pair(&self, rng: &mut Xoshiro256) -> (State, State) {
        let w_eq = self.eq_weight();
        let w_xx = self.xx_weight();
        let w_cross = self.cross_weight();
        let w_sparse = self.sparse_weight();
        let mut u = rng.below(w_eq + w_xx + w_cross + w_sparse);
        if u < w_eq {
            let s = self.eq.sample(u, &|s| self.eq_leaf(s)) as State;
            return (s, s);
        }
        u -= w_eq;
        if u < w_xx {
            let e = self.extra_agents;
            let a = u / (e - 1);
            let b = u % (e - 1);
            let s1 = self.extra_state_at(a, None);
            let s2 = self.extra_state_at(b, Some(s1));
            return (s1, s2);
        }
        u -= w_xx;
        if u < w_cross {
            let re = self.rank_agents * self.extra_agents;
            let (extra_initiates, rem) = match self.schema.cross {
                Some(CrossDirection::RankInitiator) => (false, u),
                Some(CrossDirection::ExtraInitiator) => (true, u),
                Some(CrossDirection::Both) => (u >= re, u % re),
                None => unreachable!(),
            };
            let rank_idx = rem / self.extra_agents;
            let extra_idx = rem % self.extra_agents;
            let rank_state = self.rank_occ.sample(rank_idx, &|s| self.rank_leaf(s)) as State;
            let extra_state = self.extra_state_at(extra_idx, None);
            return if extra_initiates {
                (extra_state, rank_state)
            } else {
                (rank_state, extra_state)
            };
        }
        u -= w_cross;
        self.schema.pairs[self.sparse.sample(u, &self.schema)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fenwick::Fenwick;
    use crate::protocol::Protocol;
    use proptest::prelude::*;

    #[test]
    fn weight_tree_matches_reference() {
        let weights = [3u64, 0, 5, 1, 0, 0, 9, 2, 4, 0, 1];
        let mut t = WeightTree::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            t.set(i, w);
        }
        assert_eq!(t.total(), weights.iter().sum::<u64>());
        assert_eq!(t.weight(6), 9);
        let mut offset = 0u64;
        for (i, &w) in weights.iter().enumerate() {
            if w > 0 {
                assert_eq!(t.sample(offset), i, "slot start {i}");
                assert_eq!(t.sample(offset + w - 1), i, "slot end {i}");
                offset += w;
            }
        }
    }

    #[test]
    fn weight_tree_assign_matches_pointwise_sets() {
        let weights: Vec<u64> = (0..37).map(|i| (i * 7 % 11) as u64).collect();
        let mut bulk = WeightTree::new(weights.len());
        bulk.assign(&weights);
        let mut point = WeightTree::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            point.set(i, w);
        }
        assert_eq!(bulk.total(), point.total());
        for target in 0..bulk.total() {
            assert_eq!(bulk.sample(target), point.sample(target), "target {target}");
        }
    }

    #[test]
    fn weight_tree_sample_agrees_with_fenwick() {
        let mut t = WeightTree::new(37);
        let mut f = Fenwick::new(37);
        let mut rng = Xoshiro256::seed_from_u64(3);
        for i in 0..37 {
            let w = rng.below(9);
            t.set(i, w);
            f.set(i, w);
        }
        assert_eq!(t.total(), f.total());
        for target in 0..t.total() {
            assert_eq!(t.sample(target), f.sample(target), "target {target}");
        }
    }

    /// Regression: with trailing zero-weight slots, every in-range target
    /// must land on a positive-weight slot, and out-of-range targets are
    /// an error — never a silent descent into the zero tail.
    #[test]
    fn weight_tree_sample_safe_over_trailing_zeros() {
        let mut t = WeightTree::new(8);
        t.set(0, 2);
        t.set(3, 5);
        // Slots 4..8 stay zero; the last in-range target maps to slot 3.
        assert_eq!(t.total(), 7);
        assert_eq!(t.try_sample(0), Some(0));
        assert_eq!(t.try_sample(1), Some(0));
        assert_eq!(t.try_sample(2), Some(3));
        assert_eq!(t.try_sample(6), Some(3));
        assert_eq!(t.try_sample(7), None, "target == total is out of range");
        assert_eq!(t.try_sample(u64::MAX), None);
        assert_eq!(t.try_sample_with_offset(4), Some((3, 2)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn weight_tree_sample_out_of_range_is_a_hard_error() {
        let mut t = WeightTree::new(4);
        t.set(0, 3);
        t.set(1, 2);
        // Release builds used to descend to leaf 3 (weight zero) here.
        let _ = t.sample(5);
    }

    #[test]
    fn weight_tree_split_conserves_and_tracks_weights() {
        let mut t = WeightTree::new(16);
        for (i, w) in [(0usize, 100u64), (3, 300), (7, 500), (15, 100)] {
            t.set(i, w);
        }
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut totals = [0u64; 16];
        let b = 1000;
        let rounds = 200;
        for _ in 0..rounds {
            let mut out = Vec::new();
            t.split(b, &mut rng, &mut out);
            assert_eq!(out.iter().map(|&(_, k)| k).sum::<u64>(), b);
            for (i, k) in out {
                assert!(t.weight(i) > 0, "slot {i} drawn with zero weight");
                totals[i] += k;
            }
        }
        // Expected proportions 0.1 / 0.3 / 0.5 / 0.1 within a few percent.
        let grand = (b * rounds) as f64;
        for (i, expect) in [(0usize, 0.1), (3, 0.3), (7, 0.5), (15, 0.1)] {
            let got = totals[i] as f64 / grand;
            assert!(
                (got - expect).abs() < 0.02,
                "slot {i}: {got:.3} vs {expect}"
            );
        }
    }

    /// The derived-leaf block tree must reproduce the materialised
    /// weight tree's sampling map exactly and split with the same law.
    #[test]
    fn block_tree_matches_materialised_weight_tree() {
        // Spans three blocks, with zero runs inside and at the end.
        let weights: Vec<u64> = (0..150)
            .map(|i| match i % 7 {
                0 => (i as u64 % 13) + 1,
                3 => 2,
                _ => 0,
            })
            .collect();
        let leaf = |i: usize| weights[i];
        let mut bt = BlockTree::new(weights.len());
        bt.rebuild(leaf);
        let mut wt = WeightTree::new(weights.len());
        wt.assign(&weights);
        assert_eq!(bt.total(), wt.total());
        for target in 0..wt.total() {
            assert_eq!(bt.sample(target, &leaf), wt.sample(target), "target {target}");
        }
        // Point update keeps the map aligned.
        let mut weights2 = weights.clone();
        bt.update(70, weights2[70], 9);
        weights2[70] = 9;
        let leaf2 = |i: usize| weights2[i];
        wt.set(70, 9);
        assert_eq!(bt.total(), wt.total());
        for target in 0..wt.total() {
            assert_eq!(bt.sample(target, &leaf2), wt.sample(target), "target {target}");
        }
        // Split conserves the batch and only touches positive leaves.
        let mut rng = Xoshiro256::seed_from_u64(8);
        let mut out = Vec::new();
        bt.split(5000, &mut rng, &leaf2, &mut out);
        assert_eq!(out.iter().map(|&(_, k)| k).sum::<u64>(), 5000);
        for &(i, _) in &out {
            assert!(weights2[i] > 0, "leaf {i} drawn with zero weight");
        }
    }

    /// Pre-partitioned subtree tasks completed with independent RNG
    /// streams must realise the same multinomial as one sequential split.
    #[test]
    fn block_tree_partition_preserves_the_split_law() {
        let weights: Vec<u64> = (0..300).map(|i| (i as u64 * 31 % 17) + 1).collect();
        let leaf = |i: usize| weights[i];
        let mut bt = BlockTree::new(weights.len());
        bt.rebuild(leaf);
        let b = 20_000u64;
        let rounds = 60;
        let mut totals = vec![0u64; weights.len()];
        let mut coord = Xoshiro256::seed_from_u64(21);
        for round in 0..rounds {
            let mut parts = Vec::new();
            bt.partition(b, 1024, &mut coord, &mut parts);
            assert!(parts.len() > 1, "large batch must partition");
            assert_eq!(parts.iter().map(|&(_, k)| k).sum::<u64>(), b);
            for (t, &(node, k)) in parts.iter().enumerate() {
                let seed = crate::rng::derive_seed(round * 100 + t as u64, 1);
                let mut rng = Xoshiro256::seed_from_u64(seed);
                let mut out = Vec::new();
                bt.split_node(node, k, &mut rng, &leaf, &mut out);
                assert_eq!(out.iter().map(|&(_, c)| c).sum::<u64>(), k);
                for (i, c) in out {
                    totals[i] += c;
                }
            }
        }
        let grand = (b * rounds) as f64;
        let wsum = bt.total() as f64;
        for (i, &w) in weights.iter().enumerate() {
            let got = totals[i] as f64 / grand;
            let expect = w as f64 / wsum;
            assert!(
                (got - expect).abs() < 0.002,
                "leaf {i}: {got:.5} vs {expect:.5}"
            );
        }
    }

    /// A protocol exercising every class shape at once: equal-rank rules,
    /// a cross class, extra–extra — declared exactly.
    struct AllClasses;
    impl Protocol for AllClasses {
        fn name(&self) -> &str {
            "all-classes"
        }
        fn population_size(&self) -> usize {
            6
        }
        fn num_states(&self) -> usize {
            8
        }
        fn num_rank_states(&self) -> usize {
            6
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            let rank = |s: State| (s as usize) < 6;
            match (rank(i), rank(r)) {
                (true, true) => (i == r).then_some((i, (r + 1) % 6)),
                // Extras always fall back to rank 5 (never identity).
                (false, false) => Some((5, 5)),
                (true, false) => Some((i, 5)),
                (false, true) => Some((5, r)),
            }
        }
    }
    impl InteractionSchema for AllClasses {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![
                ClassSpec::equal_rank(),
                ClassSpec::extra_extra(),
                ClassSpec::rank_extra(CrossDirection::Both),
            ]
        }
    }

    #[test]
    fn class_state_weights_match_brute_force(){
        crate::protocol::validate_interaction_schema(&AllClasses).unwrap();
        // counts: ranks [2, 1, 0, 1, 0, 0], extras [1, 1]
        let counts = vec![2, 1, 0, 1, 0, 0, 1, 1];
        let st = ClassState::new(&AllClasses, counts.clone()).unwrap();
        // Brute force: count productive ordered agent pairs.
        let mut expect = 0u64;
        for a in 0..8u32 {
            for b in 0..8u32 {
                if AllClasses.transition(a, b).is_some() {
                    expect += pair_weight(&counts, a, b);
                }
            }
        }
        assert_eq!(st.productive_pairs(), expect);
        assert_eq!(st.eq_weight(), 2); // only state 0 has c(c−1) = 2
        assert_eq!(st.xx_weight(), 2); // E = 2
        assert_eq!(st.cross_weight(), 2 * 4 * 2); // both directions, R·E = 8
    }

    #[test]
    fn update_count_keeps_weights_consistent() {
        let counts = vec![2, 1, 0, 1, 0, 0, 1, 1];
        let mut st = ClassState::new(&AllClasses, counts).unwrap();
        st.update_count(0, -1);
        st.update_count(6, 1);
        let fresh = ClassState::new(&AllClasses, st.counts.clone()).unwrap();
        assert_eq!(st.productive_pairs(), fresh.productive_pairs());
        assert_eq!(st.eq_weight(), fresh.eq_weight());
        assert_eq!(st.rank_agents, fresh.rank_agents);
        assert_eq!(st.extra_agents, fresh.extra_agents);
        assert_eq!(st.extra_occupancy(), (2, 2));
    }

    /// Regression for the silent-wrap bug: a delta sequence applied out of
    /// order (the decrement of a later rewrite arriving before the
    /// increment that funds it) drove `(u64 as i64 + delta) as u64`
    /// through a negative intermediate and wrapped to a huge weight.
    /// It must be a hard error instead.
    #[test]
    #[should_panic(expected = "out-of-order delta application")]
    fn update_count_rejects_transiently_negative_occupancy() {
        let counts = vec![2, 1, 0, 1, 0, 0, 1, 1];
        let mut st = ClassState::new(&AllClasses, counts).unwrap();
        // Out-of-order sequence: state 2 is empty, so the -1 that should
        // have followed a +1 arrives first.
        st.update_count(2, -1);
    }

    #[test]
    #[should_panic(expected = "out-of-order delta application")]
    fn update_count_rejects_grouped_underflow() {
        let counts = vec![2, 1, 0, 1, 0, 0, 1, 1];
        let mut st = ClassState::new(&AllClasses, counts).unwrap();
        // A coalesced group delta larger than the occupancy it drains.
        st.update_count(0, -3);
    }

    /// Sparse-pair protocol: two rules on a 3-state space that fit no
    /// structured class.
    struct Sparse;
    impl Protocol for Sparse {
        fn name(&self) -> &str {
            "sparse"
        }
        fn population_size(&self) -> usize {
            4
        }
        fn num_states(&self) -> usize {
            3
        }
        fn num_rank_states(&self) -> usize {
            3
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            match (i, r) {
                (0, 1) => Some((0, 2)),
                (2, 2) => Some((1, 2)),
                _ => None,
            }
        }
    }
    impl InteractionSchema for Sparse {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::pair(0, 1), ClassSpec::pair(2, 2)]
        }
    }

    #[test]
    fn sparse_pair_weights_and_sampling() {
        crate::protocol::validate_interaction_schema(&Sparse).unwrap();
        let mut st = ClassState::new(&Sparse, vec![2, 1, 1]).unwrap();
        // (0,1): 2·1 = 2; (2,2): 1·0 = 0.
        assert_eq!(st.sparse_weight(), 2);
        assert_eq!(st.productive_pairs(), 2);
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..20 {
            assert_eq!(st.sample_pair(&mut rng), (0, 1));
        }
        // Move the state-1 agent to state 2: (0,1) dies, (2,2) lights up.
        st.update_count(1, -1);
        st.update_count(2, 1);
        assert_eq!(st.sparse_weight(), 2); // c_2(c_2−1) = 2·1
        for _ in 0..20 {
            assert_eq!(st.sample_pair(&mut rng), (2, 2));
        }
    }

    #[test]
    fn compile_merges_single_direction_crosses() {
        struct TwoDir;
        impl Protocol for TwoDir {
            fn name(&self) -> &str {
                "two-dir"
            }
            fn population_size(&self) -> usize {
                2
            }
            fn num_states(&self) -> usize {
                3
            }
            fn num_rank_states(&self) -> usize {
                2
            }
            fn transition(&self, i: State, r: State) -> Option<(State, State)> {
                let rank = |s: State| s < 2;
                (rank(i) != rank(r)).then_some(if rank(i) { (i, 0) } else { (0, r) })
            }
        }
        impl InteractionSchema for TwoDir {
            fn interaction_classes(&self) -> Vec<ClassSpec> {
                vec![
                    ClassSpec::rank_extra(CrossDirection::RankInitiator),
                    ClassSpec::rank_extra(CrossDirection::ExtraInitiator),
                ]
            }
        }
        crate::protocol::validate_interaction_schema(&TwoDir).unwrap();
        let schema = CompiledSchema::compile(&TwoDir);
        assert_eq!(schema.cross, Some(CrossDirection::Both));
    }

    #[test]
    fn compiled_eq_bitset_matches_protocol_rule() {
        // A rule set that straddles a 64-bit word boundary.
        struct Striped;
        impl Protocol for Striped {
            fn name(&self) -> &str {
                "striped"
            }
            fn population_size(&self) -> usize {
                100
            }
            fn num_states(&self) -> usize {
                100
            }
            fn num_rank_states(&self) -> usize {
                100
            }
            fn transition(&self, i: State, r: State) -> Option<(State, State)> {
                (i == r && i.is_multiple_of(3)).then(|| (i, (r + 1) % 100))
            }
        }
        impl InteractionSchema for Striped {
            fn interaction_classes(&self) -> Vec<ClassSpec> {
                vec![ClassSpec::equal_rank()]
            }
            fn equal_rank_rule(&self, s: State) -> bool {
                s.is_multiple_of(3)
            }
        }
        let schema = CompiledSchema::compile(&Striped);
        for s in 0..100u32 {
            assert_eq!(schema.eq_rule(s as usize), s.is_multiple_of(3), "state {s}");
        }
    }

    #[test]
    fn sample_pair_covers_every_class_in_proportion() {
        let counts = vec![1, 2, 0, 0, 0, 0, 2, 1];
        let st = ClassState::new(&AllClasses, counts.clone()).unwrap();
        let w = st.productive_pairs();
        let mut rng = Xoshiro256::seed_from_u64(17);
        let trials = 40_000u64;
        let mut per_pair = std::collections::HashMap::new();
        for _ in 0..trials {
            *per_pair.entry(st.sample_pair(&mut rng)).or_insert(0u64) += 1;
        }
        for (&(a, b), &hits) in &per_pair {
            assert!(AllClasses.transition(a, b).is_some(), "null pair ({a},{b}) sampled");
            let expect = pair_weight(&counts, a, b) as f64 / w as f64;
            let got = hits as f64 / trials as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "pair ({a},{b}): {got:.4} vs {expect:.4}"
            );
        }
        let covered: u64 = per_pair
            .keys()
            .map(|&(a, b)| pair_weight(&counts, a, b))
            .sum();
        assert_eq!(covered, w, "every positive-weight pair must be reachable");
    }

    /// Five states, pairs across several initiator groups (including a
    /// diagonal), declared deliberately out of group order — compile must
    /// reorder them group-contiguously.
    struct MultiGroup;
    impl Protocol for MultiGroup {
        fn name(&self) -> &str {
            "multi-group"
        }
        fn population_size(&self) -> usize {
            12
        }
        fn num_states(&self) -> usize {
            5
        }
        fn num_rank_states(&self) -> usize {
            5
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            match (i, r) {
                (3, 0) | (0, 2) | (2, 2) | (0, 4) | (2, 1) | (4, 0) => {
                    Some(((i + 1) % 5, r))
                }
                _ => None,
            }
        }
    }
    impl InteractionSchema for MultiGroup {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![
                ClassSpec::pair(3, 0),
                ClassSpec::pair(0, 2),
                ClassSpec::pair(2, 2),
                ClassSpec::pair(0, 4),
                ClassSpec::pair(2, 1),
                ClassSpec::pair(4, 0),
            ]
        }
    }

    #[test]
    fn compile_builds_contiguous_groups_and_sorted_touch_csr() {
        crate::protocol::validate_interaction_schema(&MultiGroup).unwrap();
        let schema = CompiledSchema::compile(&MultiGroup);
        // Stable sort by initiator: groups 0, 2, 3, 4 in order, with
        // declaration order preserved within each group.
        assert_eq!(
            schema.pairs,
            vec![(0, 2), (0, 4), (2, 2), (2, 1), (3, 0), (4, 0)]
        );
        assert_eq!(schema.group_off, vec![0, 2, 4, 5, 6]);
        assert_eq!(schema.num_groups(), 4);
        assert_eq!(schema.pair_group, vec![0, 0, 1, 1, 2, 3]);
        for (pi, &g) in schema.pair_group.iter().enumerate() {
            let (lo, hi) = schema.group_range(g as usize);
            assert!(lo <= pi && pi < hi, "pair {pi} outside its group range");
        }
        // Touch CSR: every pair appears under both of its states (once on
        // the diagonal), ascending within each state.
        for s in 0..5usize {
            let touch = schema.pair_touch(s);
            assert!(touch.windows(2).all(|w| w[0] < w[1]), "state {s} unsorted");
            for &pi in touch {
                let (a, b) = schema.pairs[pi as usize];
                assert!(a as usize == s || b as usize == s);
            }
        }
        let total_touches: usize = (0..5).map(|s| schema.pair_touch(s).len()).sum();
        // 5 off-diagonal pairs touch two states each, the diagonal one.
        assert_eq!(total_touches, 11);
    }

    #[test]
    fn sparse_two_level_sampling_matches_flat_tree() {
        let counts = vec![3u32, 2, 4, 1, 2];
        let st = ClassState::new(&MultiGroup, counts.clone()).unwrap();
        let mut flat = WeightTree::new(st.schema.pairs.len());
        for (i, &(a, b)) in st.schema.pairs.iter().enumerate() {
            flat.set(i, pair_weight(&counts, a, b));
        }
        assert_eq!(st.sparse.total(), flat.total());
        for u in 0..flat.total() {
            assert_eq!(
                st.sparse.sample(u, &st.schema),
                flat.sample(u),
                "offset {u}"
            );
        }
        // Group totals mirror the per-group trees.
        for g in 0..st.schema.num_groups() {
            let (lo, hi) = st.schema.group_range(g);
            let expect: u64 = (lo..hi).map(|i| flat.weight(i)).sum();
            assert_eq!(st.sparse.group_total(g), expect, "group {g}");
        }
    }

    /// From-scratch oracle for the incremental sparse drift statistics.
    fn sparse_oracle(schema: &CompiledSchema, counts: &[u32]) -> (Vec<u64>, u64, u64, u64, u64) {
        let mut partner = vec![0u64; counts.len()];
        let mut occupied = 0u64;
        let mut total = 0u64;
        let mut max_scale = 1u64;
        for &(a, b) in &schema.pairs {
            if a == b {
                partner[a as usize] += 2 * (counts[a as usize] as u64).saturating_sub(1);
            } else {
                partner[a as usize] += counts[b as usize] as u64;
                partner[b as usize] += counts[a as usize] as u64;
            }
            let w = pair_weight(counts, a, b);
            total += w;
            if w > 0 {
                occupied += 1;
                max_scale = max_scale.max(pair_scale(counts, a, b));
            }
        }
        let max_partner = partner.iter().copied().max().unwrap_or(0).max(1);
        (partner, max_partner, max_scale, occupied, total)
    }

    /// Sparse test protocol over a runtime-chosen pair set (the proptest
    /// vehicle below). The transition is never consulted by `ClassState`;
    /// it exists to satisfy the trait.
    struct RandPairs {
        n: usize,
        states: usize,
        pairs: Vec<(State, State)>,
    }
    impl Protocol for RandPairs {
        fn name(&self) -> &str {
            "rand-pairs"
        }
        fn population_size(&self) -> usize {
            self.n
        }
        fn num_states(&self) -> usize {
            self.states
        }
        fn num_rank_states(&self) -> usize {
            self.states
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            self.pairs
                .contains(&(i, r))
                .then(|| ((i + 1) % self.states as State, r))
        }
    }
    impl InteractionSchema for RandPairs {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            self.pairs
                .iter()
                .map(|&(a, b)| ClassSpec::pair(a, b))
                .collect()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// After an arbitrary random walk of `update_count` calls, the
        /// incrementally-maintained sparse statistics agree with the
        /// from-scratch oracle: partner sums, occupied-pair count, and
        /// total weight exactly at all times; the two lazy maxima
        /// stale-high (never below the truth) until `refresh_sparse`,
        /// exact after it. This is the invariant that lets `batch_params`
        /// drop the per-batch `O(Σ deg)` partner-scale rescan.
        #[test]
        fn incremental_drift_scales_match_from_scratch_oracle(
            seed in 0u64..5_000,
            states in 2usize..11,
            npairs in 1usize..22,
            ops in 1usize..70,
        ) {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let mut pairs: Vec<(State, State)> = Vec::new();
            for _ in 0..npairs {
                let a = rng.below(states as u64) as State;
                let b = rng.below(states as u64) as State;
                if !pairs.contains(&(a, b)) {
                    pairs.push((a, b));
                }
            }
            let mut counts: Vec<u32> =
                (0..states).map(|_| rng.below(20) as u32).collect();
            counts[0] += 1; // keep the walk feasible
            let n: u64 = counts.iter().map(|&c| c as u64).sum();
            let p = RandPairs { n: n as usize, states, pairs };
            let mut st = ClassState::new(&p, counts).unwrap();
            for _ in 0..ops {
                let donor = loop {
                    let s = rng.below(states as u64) as usize;
                    if st.counts[s] > 0 {
                        break s;
                    }
                };
                let recv = rng.below(states as u64) as State;
                st.update_count(donor as State, -1);
                st.update_count(recv, 1);
            }
            let (partner, max_partner, max_scale, occupied, total) =
                sparse_oracle(&st.schema, &st.counts);
            prop_assert_eq!(&st.sparse.partner_sum, &partner);
            prop_assert_eq!(st.sparse.occupied_pairs(), occupied);
            prop_assert_eq!(st.sparse.total(), total);
            for g in 0..st.schema.num_groups() {
                let (lo, hi) = st.schema.group_range(g);
                let expect: u64 = st.schema.pairs[lo..hi]
                    .iter()
                    .map(|&(a, b)| pair_weight(&st.counts, a, b))
                    .sum();
                prop_assert_eq!(st.sparse.group_total(g), expect, "group {}", g);
            }
            // Stale-high between refreshes: bounds dominate the truth...
            prop_assert!(st.sparse.max_partner_bound >= max_partner);
            prop_assert!(st.sparse.max_pair_scale_bound >= max_scale);
            prop_assert!(st.sparse.drift_scale() >= max_scale.max(max_partner / 2));
            // ...and collapse to it exactly on refresh.
            st.refresh_sparse();
            prop_assert_eq!(st.sparse.max_partner_bound, max_partner);
            prop_assert_eq!(st.sparse.max_pair_scale_bound, max_scale);
        }
    }
}
